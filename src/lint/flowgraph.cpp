#include "lint/flowgraph.hpp"

#include <algorithm>
#include <set>

namespace decos::lint {
namespace {

/// Repository names of the convertible elements an input message feeds
/// into gateway `model`: its own convertible elements plus the closure
/// of transfer-rule targets derivable from them.
std::set<std::string> produced_elements(const GatewayModel& model, int side,
                                        const spec::MessageSpec& message) {
  std::set<std::string> produced;
  for (const auto* e : message.convertible_elements())
    produced.insert(model.repo_name(side, e->name));
  // Transfer rules fire on arriving source instances; chained rules
  // (target of one feeding another) close under iteration.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int rule_side = 0; rule_side < 2; ++rule_side) {
      const spec::LinkSpec* link = model.links[rule_side];
      if (link == nullptr) continue;
      for (const auto& rule : link->transfer_rules()) {
        if (produced.count(model.repo_name(rule_side, rule.source)) == 0) continue;
        if (produced.insert(model.repo_name(rule_side, rule.target)).second) changed = true;
      }
    }
  }
  return produced;
}

/// VnId compatibility: connected only when neither side pins a VN or
/// both pin the same one.
bool vn_compatible(const std::optional<tt::VnId>& a, const std::optional<tt::VnId>& b) {
  return !a.has_value() || !b.has_value() || *a == *b;
}

void collect_hops(const ClusterModel& cluster, std::vector<FlowHop>& hops) {
  for (const GatewayModel* model : cluster.gateways) {
    if (model == nullptr || model->links[0] == nullptr || model->links[1] == nullptr) continue;
    for (int side = 0; side < 2; ++side) {
      const spec::LinkSpec& in_link = *model->links[side];
      const spec::LinkSpec& out_link = *model->links[1 - side];
      for (const auto& in_port : in_link.ports()) {
        if (in_port.direction != spec::DataDirection::kInput) continue;
        const spec::MessageSpec* in_message = in_link.message(in_port.message);
        if (in_message == nullptr) continue;
        const std::set<std::string> produced = produced_elements(*model, side, *in_message);
        if (produced.empty()) continue;
        for (const auto& out_port : out_link.ports()) {
          if (out_port.direction != spec::DataDirection::kOutput) continue;
          const spec::MessageSpec* out_message = out_link.message(out_port.message);
          if (out_message == nullptr) continue;
          FlowHop hop;
          for (const auto* e : out_message->convertible_elements()) {
            const std::string repo = model->repo_name(1 - side, e->name);
            if (produced.count(repo) != 0) hop.elements.push_back(repo);
          }
          if (hop.elements.empty()) continue;
          hop.gateway = model;
          hop.ingress_side = side;
          hop.in_port = &in_port;
          hop.in_message = in_message;
          hop.out_port = &out_port;
          hop.out_message = out_message;
          hops.push_back(std::move(hop));
        }
      }
    }
  }
}

bool connects(const FlowHop& from, const FlowHop& to) {
  if (from.out_message->name() != to.in_message->name()) return false;
  if (&from == &to) return false;
  return vn_compatible(from.gateway->link_vn[static_cast<std::size_t>(from.egress_side())],
                       to.gateway->link_vn[static_cast<std::size_t>(to.ingress_side)]);
}

constexpr std::size_t kMaxFlows = 4096;

/// Depth-first extension of `chain`; every maximal chain becomes a flow.
/// Hops already on the chain are not revisited (cycle guard).
void extend(const std::vector<FlowHop>& hops, std::vector<const FlowHop*>& chain,
            std::vector<Flow>& flows) {
  if (flows.size() >= kMaxFlows) return;
  const FlowHop& last = *chain.back();
  bool extended = false;
  for (const FlowHop& next : hops) {
    if (!connects(last, next)) continue;
    if (std::find(chain.begin(), chain.end(), &next) != chain.end()) continue;
    chain.push_back(&next);
    extend(hops, chain, flows);
    chain.pop_back();
    extended = true;
  }
  if (!extended) {
    Flow flow;
    for (const FlowHop* hop : chain) flow.hops.push_back(*hop);
    flows.push_back(std::move(flow));
  }
}

}  // namespace

std::string Flow::key() const {
  if (hops.empty()) return {};
  std::string key = hops.front().in_message->name();
  const std::string& out = hops.back().out_message->name();
  if (out != key) key += "->" + out;
  return key;
}

FlowGraph build_flow_graph(const ClusterModel& cluster) {
  FlowGraph graph;
  collect_hops(cluster, graph.hops);

  for (const FlowHop& root : graph.hops) {
    // Roots: input messages no gateway of the cluster emits -- flows
    // start at the environment (a DAS job), not mid-chain.
    const bool is_root = std::none_of(graph.hops.begin(), graph.hops.end(),
                                      [&](const FlowHop& other) { return connects(other, root); });
    if (!is_root) continue;
    std::vector<const FlowHop*> chain{&root};
    extend(graph.hops, chain, graph.flows);
  }
  return graph;
}

}  // namespace decos::lint
