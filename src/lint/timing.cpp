#include "lint/timing.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace decos::lint {
namespace {

std::int64_t ceil_div(Duration a, Duration b) {
  return (a.ns() + b.ns() - 1) / b.ns();
}

std::string hop_loc(const FlowHop& hop) {
  return "gateway '" + hop.gateway->name + "' " + hop.in_message->name() + " -> " +
         hop.out_message->name();
}

std::string path_hint(const Flow& flow) {
  std::string hint = "path:";
  for (const FlowHop& hop : flow.hops) hint += " " + hop.gateway->name;
  return hint;
}

/// Worst-case time for an instance that becomes ready on `side`'s
/// virtual network to fully cross it. Slot-exact when the TDMA schedule
/// and the VN binding are known; otherwise one TT ingress period
/// (`tt_fallback`), or zero.
Duration vn_wait(const GatewayModel& model, int side, const spec::PortSpec* tt_fallback) {
  const auto& vn = model.link_vn[static_cast<std::size_t>(side)];
  if (model.schedule != nullptr && vn.has_value()) {
    std::vector<std::size_t> indices = model.schedule->slots_of_vn(*vn);
    if (!indices.empty()) {
      std::vector<const tt::SlotSpec*> slots;
      for (std::size_t i : indices) slots.push_back(&model.schedule->slot(i));
      std::sort(slots.begin(), slots.end(), [](const tt::SlotSpec* a, const tt::SlotSpec* b) {
        return a->offset < b->offset;
      });
      const Duration round = model.schedule->round_length();
      Duration worst = Duration::zero();
      for (std::size_t i = 0; i < slots.size(); ++i) {
        // Miss slot i by epsilon, wait for the next one (wrapping at the
        // round boundary), then occupy it fully.
        const tt::SlotSpec& next = *slots[(i + 1) % slots.size()];
        Duration gap = next.offset - slots[i]->offset;
        if (i + 1 == slots.size()) gap += round;
        worst = std::max(worst, gap + next.duration);
      }
      return worst;
    }
  }
  if (tt_fallback != nullptr && tt_fallback->is_time_triggered()) return tt_fallback->period;
  return Duration::zero();
}

/// Worst-case latency contribution of one gateway traversal: cross the
/// ingress VN, wait out one dispatch period, and -- for time-triggered
/// egress -- wait for the output port's next dispatch point.
Duration hop_bound(const FlowHop& hop) {
  Duration bound = vn_wait(*hop.gateway, hop.ingress_side, hop.in_port);
  bound += hop.gateway->dispatch_period;
  if (hop.out_port->is_time_triggered()) bound += hop.out_port->period;
  return bound;
}

/// Tightest d_acc over the state elements the terminal hop delivers.
Duration terminal_horizon(const FlowHop& last, std::string* element) {
  Duration horizon = Duration::max();
  for (const std::string& repo : last.elements) {
    const ElementMeta meta = last.gateway->element_meta(repo, last.in_port->semantics);
    if (meta.semantics != spec::InfoSemantics::kState) continue;
    if (meta.d_acc < horizon) {
      horizon = meta.d_acc;
      if (element != nullptr) *element = repo;
    }
  }
  return horizon;
}

}  // namespace

void check_flow_latency(const FlowGraph& graph, Report& report, std::vector<FlowBound>* bounds) {
  for (const Flow& flow : graph.flows) {
    if (flow.hops.empty()) continue;
    Duration bound = Duration::zero();
    for (const FlowHop& hop : flow.hops) bound += hop_bound(hop);
    const FlowHop& last = flow.hops.back();
    bound += vn_wait(*last.gateway, last.egress_side(), nullptr);

    std::string tightest_element;
    const Duration horizon = terminal_horizon(last, &tightest_element);

    if (bounds != nullptr)
      bounds->push_back(FlowBound{flow.key(), bound, horizon, flow.hops.size()});

    if (horizon < Duration::max() && bound > horizon) {
      report.add(kRuleLatency, Severity::kError, last.out_port->loc,
                 "flow '" + flow.key() + "'",
                 "static worst-case end-to-end latency " + bound.to_string() +
                     " exceeds temporal accuracy " + horizon.to_string() + " of element '" +
                     tightest_element + "'",
                 path_hint(flow) + "; relax d_acc, shorten the dispatch period, or allocate "
                                   "denser VN slots");
    }
  }
}

void check_flow_occupancy(const FlowGraph& graph, Report& report) {
  // A port can sit on many flows; keep the worst demand per port so each
  // overflow is reported once, against its most hostile flow.
  struct PortDemand {
    std::int64_t need = 0;
    std::size_t capacity = 0;
    SourceLoc loc{};
    std::string flow_key;
    std::string hint;
  };
  std::map<std::string, PortDemand> demands;

  for (const Flow& flow : graph.flows) {
    std::int64_t burst = 1;  // instances arriving back-to-back at the hop
    for (const FlowHop& hop : flow.hops) {
      if (hop.in_port->semantics != spec::InfoSemantics::kEvent) {
        burst = 1;  // state ingress: update-in-place, bursts do not carry
        continue;
      }
      const Duration tmin = hop.in_port->min_interarrival;
      if (tmin <= Duration::zero()) break;  // unbounded arrivals; DL006's concern
      const Duration drain = hop.gateway->dispatch_period;
      const std::int64_t per_dispatch = ceil_div(drain, tmin);
      const std::int64_t need = burst - 1 + per_dispatch;

      PortDemand& d = demands[hop_loc(hop)];
      if (need > d.need) {
        d.need = need;
        d.capacity = hop.in_port->queue_capacity;
        d.loc = hop.in_port->loc;
        d.flow_key = flow.key();
        d.hint = path_hint(flow);
      }
      // Everything drained in one dispatch window can leave back-to-back.
      burst += per_dispatch;
    }
  }

  for (const auto& [loc_str, d] : demands) {
    if (d.need <= static_cast<std::int64_t>(d.capacity)) continue;
    report.add(kRuleOccupancy, Severity::kError, d.loc, loc_str,
               "worst-case queue occupancy " + std::to_string(d.need) + " on flow '" +
                   d.flow_key + "' exceeds capacity " + std::to_string(d.capacity) +
                   " (upstream dispatch bursts compound the local arrival rate)",
               d.hint + "; enlarge the queue or shorten the upstream dispatch period");
  }
}

}  // namespace decos::lint
