// Machine-readable renderings of declint reports.
//
// Two formats, both byte-deterministic (stable field order, no maps, no
// timestamps, LF line endings):
//
//   * JSON  -- declint's own schema. Carries every diagnostic with its
//     source position plus the per-flow static latency bounds (DL008),
//     so `decotrace --check-bounds <declint.json>` can replay a traced
//     run against the static bounds.
//   * SARIF -- minimal SARIF 2.1.0 for CI code-scanning upload; one run,
//     one result per diagnostic, physical locations when the XML
//     position is known.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/timing.hpp"

namespace decos::lint {

/// Per-input-file findings.
struct FileReport {
  std::string path;
  Report report;
};

/// Everything one declint invocation produced.
struct RenderInput {
  std::vector<FileReport> files;
  Report cluster;                // whole-cluster findings (DL008-DL010)
  std::vector<FlowBound> flows;  // static bounds, one per cluster flow
};

std::string render_json(const RenderInput& input);
std::string render_sarif(const RenderInput& input);

}  // namespace decos::lint
