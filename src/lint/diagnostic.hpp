// Structured diagnostics for the static deployment analyzer (declint).
//
// Every finding carries a stable rule id (documented in the README's
// "Static analysis" section), a severity, the location of the offending
// specification fragment and -- when a fix is obvious -- a hint. The
// analyzer never throws on a bad deployment: it accumulates findings in
// a Report so one run surfaces everything at once.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/source_loc.hpp"

namespace decos::lint {

enum class Severity { kError, kWarning, kNote };

const char* severity_name(Severity severity);

/// One finding of the analyzer.
struct Diagnostic {
  std::string rule;      // stable id, e.g. "DL001"
  Severity severity = Severity::kError;
  std::string location;  // e.g. "link[0] 'chassis': transfer rule 'movementstate'"
  std::string message;
  std::string hint;      // optional fix hint
  SourceLoc loc{};       // XML position of the offending element (0 = unknown)

  /// "error DL001 at link[0] 'chassis': ...  [hint: ...]"; with a valid
  /// source position the location gains a ":<line>:<col>" suffix.
  std::string to_string() const;
};

/// Accumulated result of a lint pass over a deployment.
class Report {
 public:
  void add(Diagnostic diagnostic);
  void add(std::string rule, Severity severity, std::string location, std::string message,
           std::string hint = {});
  void add(std::string rule, Severity severity, SourceLoc loc, std::string location,
           std::string message, std::string hint = {});
  void merge(Report other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t error_count() const;
  std::size_t warning_count() const;
  bool empty() const { return diagnostics_.empty(); }
  /// A deployment is deployable when the report carries no errors
  /// (warnings and notes do not block).
  bool clean() const { return error_count() == 0; }

  bool has(const std::string& rule) const;
  std::vector<const Diagnostic*> by_rule(const std::string& rule) const;

  /// Multi-line human-readable rendering, errors before warnings before
  /// notes (stable within a severity).
  std::string format() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace decos::lint
