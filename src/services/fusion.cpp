#include "services/fusion.hpp"

#include <cmath>
#include <map>

namespace decos::services {

std::optional<ta::Value> SensorFusion::fused(Instant now) const {
  switch (strategy_) {
    case Strategy::kMedian: {
      std::vector<double> values = fresh_numeric(now);
      if (values.empty()) return std::nullopt;
      std::sort(values.begin(), values.end());
      const std::size_t n = values.size();
      const double median =
          n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
      return ta::Value{median};
    }
    case Strategy::kFaultTolerantAverage: {
      std::vector<double> values = fresh_numeric(now);
      if (values.empty()) return std::nullopt;
      std::sort(values.begin(), values.end());
      std::size_t k = discard_extremes_;
      while (k > 0 && values.size() <= 2 * k) --k;  // degrade gracefully
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t i = k; i < values.size() - k; ++i) {
        sum += values[i];
        ++n;
      }
      return ta::Value{sum / static_cast<double>(n)};
    }
    case Strategy::kMajority: {
      std::map<std::string, std::pair<std::size_t, const ta::Value*>> votes;
      std::size_t fresh = 0;
      for (const Reading& r : readings_) {
        if (!r.valid || now >= r.at + validity_) continue;
        ++fresh;
        auto& slot = votes[r.value.to_string()];
        ++slot.first;
        slot.second = &r.value;
      }
      if (fresh == 0) return std::nullopt;
      for (const auto& [repr, vote] : votes) {
        if (vote.first * 2 > fresh) return *vote.second;
      }
      return std::nullopt;  // no strict majority
    }
  }
  return std::nullopt;
}

std::vector<std::size_t> SensorFusion::deviating_sources(Instant now, double tolerance) const {
  std::vector<std::size_t> out;
  const auto current = fused(now);
  if (!current) return out;
  const double reference = current->as_real();
  for (std::size_t i = 0; i < readings_.size(); ++i) {
    const Reading& r = readings_[i];
    if (!r.valid || now >= r.at + validity_) continue;
    if (std::abs(r.value.as_real() - reference) > tolerance) out.push_back(i);
  }
  return out;
}

}  // namespace decos::services
