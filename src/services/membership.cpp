#include "services/membership.hpp"

namespace decos::services {

Membership::Membership(tt::Controller& controller, MembershipConfig config,
                       sim::TraceRecorder* trace)
    : controller_{controller},
      config_{config},
      trace_{trace},
      changes_metric_{&controller.simulator().metrics().counter("services.membership.changes")},
      seen_this_round_(config.cluster_size, false),
      silent_rounds_(config.cluster_size, 0),
      alive_(config.cluster_size, true) {
  controller_.add_frame_listener(
      [this](const tt::Frame& frame, Instant, Duration) { on_frame(frame); });
  controller_.add_round_listener([this](std::uint64_t round) { on_round(round); });
}

std::size_t Membership::member_count() const {
  std::size_t n = 0;
  for (const bool a : alive_)
    if (a) ++n;
  return n;
}

void Membership::on_frame(const tt::Frame& frame) {
  if (frame.sender < config_.cluster_size) seen_this_round_[frame.sender] = true;
}

void Membership::on_round(std::uint64_t round) {
  // A node counts as alive this round if any of its frames arrived; its
  // own transmissions count for itself (a node that can still send is a
  // member by definition).
  if (controller_.id() < config_.cluster_size) seen_this_round_[controller_.id()] = true;
  for (tt::NodeId node = 0; node < config_.cluster_size; ++node) {
    const bool seen = seen_this_round_[node];
    if (seen) {
      silent_rounds_[node] = 0;
      if (!alive_[node]) {
        alive_[node] = true;  // re-integration
        changes_metric_->add();
        for (const auto& listener : listeners_) listener(node, true, round);
        if (trace_ != nullptr) {
          DECOS_TRACE(*trace_, controller_.simulator().now(), sim::TraceKind::kMembershipChange,
                      "node" + std::to_string(controller_.id()),
                      "node " + std::to_string(node) + " rejoined",
                      static_cast<std::int64_t>(round));
        }
      }
    } else {
      ++silent_rounds_[node];
      if (alive_[node] && silent_rounds_[node] >= config_.silence_threshold) {
        alive_[node] = false;
        changes_metric_->add();
        for (const auto& listener : listeners_) listener(node, false, round);
        if (trace_ != nullptr) {
          DECOS_TRACE(*trace_, controller_.simulator().now(), sim::TraceKind::kMembershipChange,
                      "node" + std::to_string(controller_.id()),
                      "node " + std::to_string(node) + " failed",
                      static_cast<std::int64_t>(round));
        }
      }
    }
  }
  seen_this_round_.assign(config_.cluster_size, false);
}

}  // namespace decos::services
