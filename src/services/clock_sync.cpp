#include "services/clock_sync.hpp"

#include <algorithm>
#include <vector>

namespace decos::services {

ClockSync::ClockSync(tt::Controller& controller, ClockSyncConfig config, sim::TraceRecorder* trace)
    : controller_{controller},
      config_{config},
      trace_{trace},
      corrections_metric_{&controller.simulator().metrics().counter("services.clock_sync.corrections")},
      correction_ns_{&controller.simulator().metrics().histogram("services.clock_sync.correction_ns")} {
  controller_.add_frame_listener(
      [this](const tt::Frame& frame, Instant local_arrival, Duration deviation) {
        on_frame(frame, local_arrival, deviation);
      });
  controller_.add_round_listener([this](std::uint64_t round) { on_round(round); });
}

void ClockSync::on_frame(const tt::Frame& frame, Instant, Duration deviation) {
  if (frame.sender == controller_.id()) return;  // own frames carry no information
  if (frame.sender >= deviation_of_.size()) {    // first frame of a new sender
    deviation_of_.resize(frame.sender + 1, Duration::zero());
    has_deviation_.resize(frame.sender + 1, false);
  }
  if (!has_deviation_[frame.sender]) {
    has_deviation_[frame.sender] = true;
    ++deviation_count_;
  }
  deviation_of_[frame.sender] = deviation;  // keep the freshest reading
}

void ClockSync::on_round(std::uint64_t round) {
  if ((round + 1) % config_.resync_rounds != 0) return;
  if (deviation_count_ == 0) return;

  readings_.clear();
  for (std::size_t node = 0; node < deviation_of_.size(); ++node)
    if (has_deviation_[node]) readings_.push_back(deviation_of_[node]);
  // The node's own clock participates in the fault-tolerant average with
  // deviation zero (Welch-Lynch), so a 3-node cluster with k=1 still has
  // the 2k+1 readings it needs.
  readings_.push_back(Duration::zero());
  has_deviation_.assign(has_deviation_.size(), false);
  deviation_count_ = 0;

  std::sort(readings_.begin(), readings_.end());
  const std::size_t k = config_.discard_extremes;
  if (readings_.size() <= 2 * k) return;  // not enough readings to tolerate k faults

  std::int64_t sum = 0;
  std::size_t n = 0;
  for (std::size_t i = k; i < readings_.size() - k; ++i) {
    sum += readings_[i].ns();
    ++n;
  }
  const Duration average = Duration::nanoseconds(sum / static_cast<std::int64_t>(n));

  // A positive average deviation means this clock runs ahead of the
  // ensemble; retard it by the average.
  last_correction_ = -average;
  controller_.clock().correct(last_correction_);
  ++corrections_;
  corrections_metric_->add();
  // Correction *magnitude*: the histogram bins are defined over
  // non-negative samples.
  correction_ns_->observe(last_correction_.abs().ns());
  if (trace_ != nullptr) {
    DECOS_TRACE(*trace_, controller_.simulator().now(), sim::TraceKind::kClockSync,
                "node" + std::to_string(controller_.id()), "correction", last_correction_.ns());
  }
}

}  // namespace decos::services
