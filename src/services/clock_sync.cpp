#include "services/clock_sync.hpp"

#include <algorithm>
#include <vector>

namespace decos::services {

ClockSync::ClockSync(tt::Controller& controller, ClockSyncConfig config, sim::TraceRecorder* trace)
    : controller_{controller},
      config_{config},
      trace_{trace},
      corrections_metric_{&controller.simulator().metrics().counter("services.clock_sync.corrections")},
      correction_ns_{&controller.simulator().metrics().histogram("services.clock_sync.correction_ns")} {
  controller_.add_frame_listener(
      [this](const tt::Frame& frame, Instant local_arrival, Duration deviation) {
        on_frame(frame, local_arrival, deviation);
      });
  controller_.add_round_listener([this](std::uint64_t round) { on_round(round); });
}

void ClockSync::on_frame(const tt::Frame& frame, Instant, Duration deviation) {
  if (frame.sender == controller_.id()) return;  // own frames carry no information
  deviations_[frame.sender] = deviation;         // keep the freshest reading
}

void ClockSync::on_round(std::uint64_t round) {
  if ((round + 1) % config_.resync_rounds != 0) return;
  if (deviations_.empty()) return;

  std::vector<Duration> readings;
  readings.reserve(deviations_.size() + 1);
  for (const auto& [node, deviation] : deviations_) readings.push_back(deviation);
  // The node's own clock participates in the fault-tolerant average with
  // deviation zero (Welch-Lynch), so a 3-node cluster with k=1 still has
  // the 2k+1 readings it needs.
  readings.push_back(Duration::zero());
  deviations_.clear();

  std::sort(readings.begin(), readings.end());
  const std::size_t k = config_.discard_extremes;
  if (readings.size() <= 2 * k) return;  // not enough readings to tolerate k faults

  std::int64_t sum = 0;
  std::size_t n = 0;
  for (std::size_t i = k; i < readings.size() - k; ++i) {
    sum += readings[i].ns();
    ++n;
  }
  const Duration average = Duration::nanoseconds(sum / static_cast<std::int64_t>(n));

  // A positive average deviation means this clock runs ahead of the
  // ensemble; retard it by the average.
  last_correction_ = -average;
  controller_.clock().correct(last_correction_);
  ++corrections_;
  corrections_metric_->add();
  // Correction *magnitude*: the histogram bins are defined over
  // non-negative samples.
  correction_ns_->observe(last_correction_.abs().ns());
  if (trace_ != nullptr) {
    DECOS_TRACE(*trace_, controller_.simulator().now(), sim::TraceKind::kClockSync,
                "node" + std::to_string(controller_.id()), "correction", last_correction_.ns());
  }
}

}  // namespace decos::services
