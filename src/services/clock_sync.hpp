// Core service C2: fault-tolerant clock synchronization.
//
// Classic fault-tolerant-average resynchronization (Welch/Lynch style, as
// used by the TTA): every received frame yields a deviation measurement
// between its actual arrival on the local clock and its nominal arrival
// per the TDMA schedule. At every resynchronization boundary the node
// takes the most recent deviation per remote node, discards the k largest
// and k smallest, averages the rest and applies the negated average as a
// state correction to its local clock. With at most k arbitrarily faulty
// clocks among >= 3k+1 nodes the achievable precision is bounded; bench
// E8 measures the bound empirically against drift rate and resync period.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/trace.hpp"
#include "tt/controller.hpp"

namespace decos::services {

struct ClockSyncConfig {
  /// Resynchronize every N rounds (>=1).
  std::uint64_t resync_rounds = 1;
  /// Number of extreme deviation readings to discard at each end
  /// (tolerated faulty clocks).
  std::size_t discard_extremes = 1;
};

class ClockSync {
 public:
  ClockSync(tt::Controller& controller, ClockSyncConfig config = {},
            sim::TraceRecorder* trace = nullptr);

  /// Corrections applied so far.
  std::uint64_t corrections() const { return corrections_; }
  /// Last applied correction term.
  Duration last_correction() const { return last_correction_; }

 private:
  void on_frame(const tt::Frame& frame, Instant local_arrival, Duration deviation);
  void on_round(std::uint64_t round);

  tt::Controller& controller_;
  ClockSyncConfig config_;
  sim::TraceRecorder* trace_;
  obs::Counter* corrections_metric_;  // services.clock_sync.corrections
  obs::Histogram* correction_ns_;     // services.clock_sync.correction_ns (|correction|)
  // Most recent deviation observed per remote node since the last resync,
  // in flat per-node slots reused across resync periods (S29: the
  // steady-state frame/round path must not touch the heap; the vectors
  // only grow when a new highest sender id first appears).
  std::vector<Duration> deviation_of_;
  std::vector<bool> has_deviation_;
  std::size_t deviation_count_ = 0;
  // Per-resync scratch for the fault-tolerant average (capacity reused).
  std::vector<Duration> readings_;
  std::uint64_t corrections_ = 0;
  Duration last_correction_ = Duration::zero();
};

}  // namespace decos::services
