// Core service C4: consistent diagnosis of failing nodes.
//
// Every node transmits a frame in each of its slots every round (the
// life-sign); a membership service instance on each node records from
// which peers frames arrived during the past round and publishes an
// updated membership vector at the round boundary. On a broadcast bus
// with symmetric faults all correct nodes observe the same receptions and
// therefore agree on the vector; bench E9 measures detection latency and
// cross-node consistency under injected crash/omission faults.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/trace.hpp"
#include "tt/controller.hpp"

namespace decos::services {

struct MembershipConfig {
  std::size_t cluster_size = 0;  // total number of nodes (ids 0..n-1)
  /// A node is declared failed after this many consecutive silent rounds.
  std::uint64_t silence_threshold = 1;
};

class Membership {
 public:
  /// change(node, alive, round): fired whenever a node joins/leaves the
  /// membership as observed at a round boundary.
  using ChangeListener = std::function<void(tt::NodeId node, bool alive, std::uint64_t round)>;

  Membership(tt::Controller& controller, MembershipConfig config,
             sim::TraceRecorder* trace = nullptr);

  bool is_member(tt::NodeId node) const { return alive_.at(node); }
  const std::vector<bool>& vector() const { return alive_; }
  std::size_t member_count() const;

  void add_change_listener(ChangeListener listener) { listeners_.push_back(std::move(listener)); }

 private:
  void on_frame(const tt::Frame& frame);
  void on_round(std::uint64_t round);

  tt::Controller& controller_;
  MembershipConfig config_;
  sim::TraceRecorder* trace_;
  obs::Counter* changes_metric_;  // services.membership.changes
  // Per-round seen flags, reused across rounds (S29: round boundaries in
  // the steady state must not touch the heap).
  std::vector<bool> seen_this_round_;
  std::vector<std::uint64_t> silent_rounds_;
  std::vector<bool> alive_;
  std::vector<ChangeListener> listeners_;
};

}  // namespace decos::services
