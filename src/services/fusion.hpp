// High-level service: fault-tolerant fusion of redundant sensor readings
// (paper Section I: importing another DAS's sensors "can be exploited to
// improve the reliability of the sensory information. Even sensory
// information from different physical entities can be exploited by
// sensor fusion [7]").
//
// A SensorFusion instance combines N redundant readings of the same
// real-time entity -- typically one local sensor plus replicas imported
// through virtual gateways -- into a single, more reliable image.
// Strategies:
//   kMedian               robust against < N/2 arbitrary value faults;
//   kFaultTolerantAverage drop k extremes, average the rest (smoother);
//   kMajority             exact-match voting for discrete values.
// Readings expire after the validity window, so a silent (crashed)
// source degrades availability but never corrupts the fused value.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "ta/value.hpp"
#include "util/time.hpp"

namespace decos::services {

class SensorFusion {
 public:
  enum class Strategy { kMedian, kFaultTolerantAverage, kMajority };

  /// `inputs`: number of redundant sources. `validity`: how long a
  /// reading stays usable (the temporal accuracy interval of the fused
  /// entity). `discard_extremes`: k for kFaultTolerantAverage.
  SensorFusion(Strategy strategy, std::size_t inputs, Duration validity,
               std::size_t discard_extremes = 1)
      : strategy_{strategy},
        validity_{validity},
        discard_extremes_{discard_extremes},
        readings_(inputs) {}

  std::size_t input_count() const { return readings_.size(); }

  /// Offer a fresh reading from source `input`.
  void offer(std::size_t input, ta::Value value, Instant now) {
    Reading& r = readings_.at(input);
    r.value = std::move(value);
    r.at = now;
    r.valid = true;
  }

  /// Number of sources with a currently valid (unexpired) reading.
  std::size_t fresh_count(Instant now) const {
    std::size_t n = 0;
    for (const Reading& r : readings_)
      if (r.valid && now < r.at + validity_) ++n;
    return n;
  }

  /// The fused value over all unexpired readings, or nullopt when no
  /// source is fresh (or, for kMajority, no strict majority exists).
  std::optional<ta::Value> fused(Instant now) const;

  /// Sources whose latest reading deviates from the current fused value
  /// by more than `tolerance` (diagnosis hook: a persistently deviating
  /// source is a candidate failed sensor).
  std::vector<std::size_t> deviating_sources(Instant now, double tolerance) const;

 private:
  struct Reading {
    ta::Value value;
    Instant at;
    bool valid = false;
  };

  std::vector<double> fresh_numeric(Instant now) const {
    std::vector<double> out;
    for (const Reading& r : readings_)
      if (r.valid && now < r.at + validity_) out.push_back(r.value.as_real());
    return out;
  }

  Strategy strategy_;
  Duration validity_;
  std::size_t discard_extremes_;
  std::vector<Reading> readings_;
};

}  // namespace decos::services
