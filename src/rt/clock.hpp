// Host-time clocks for the live gateway runtime (S30).
//
// The simulated stack advances decos::Instant through the event wheel;
// the live runtime advances it by sampling the host's monotonic clock.
// Both feed the same Instant-typed gateway entry points, so the compiled
// transfer path never knows which timeline is driving it. The clock is
// injected (not read ad hoc) so tests replace it with a ManualClock and
// replay a byte stream at exact instants -- the lever behind the
// runtime-vs-simulator equivalence property test.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/time.hpp"

namespace decos::rt {

/// Source of the runtime's notion of "now".
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Instant now() = 0;
};

/// CLOCK_MONOTONIC mapped onto Instant, zeroed at construction so early
/// instants stay small and window arithmetic never overflows.
class MonotonicClock final : public Clock {
 public:
  MonotonicClock() : epoch_{std::chrono::steady_clock::now()} {}

  Instant now() override {
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return Instant::from_ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Test clock: time moves only when the test says so.
class ManualClock final : public Clock {
 public:
  Instant now() override { return now_; }
  void set(Instant t) { now_ = t; }
  void advance(Duration d) { now_ = now_ + d; }

 private:
  Instant now_;
};

}  // namespace decos::rt
