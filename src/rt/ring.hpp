// Lock-free SPSC byte-frame ring: the runtime's shared-memory transport.
//
// One producer thread (or process) pushes length-prefixed frames; one
// consumer drains them. Cursors are free-running 64-bit byte offsets
// (head = consumer, tail = producer) reduced modulo the power-of-two
// capacity, so full/empty never needs a spare slot and wrap-around is a
// mask. Frames are 8-byte aligned and never split across the wrap: when
// the contiguous space at the end is too small the producer writes a
// wrap marker and continues at offset 0.
//
// Synchronisation is the classic SPSC pair: the producer publishes
// payload bytes with a release store of `tail`; the consumer claims the
// whole published run with one acquire load of `tail`, processes every
// frame in it without further atomics, and retires the run with one
// release store of `head` (the "run-length claim" the batched runtime
// drains ride on). The producer never blocks: a full ring counts a drop
// and returns false -- backpressure is visible, not silent.
//
// The cursor block lives at the start of the region, so the same layout
// works over private heap memory (in-process benches/tests) and over a
// shm_open mapping shared between processes (ShmRing below).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>

#include "util/result.hpp"

namespace decos::rt {

/// Control block at the head of every ring region. 64-byte alignment
/// keeps the producer- and consumer-written cursors on separate cache
/// lines (no false sharing between the two sides).
struct RingHeader {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t capacity = 0;  // data bytes, power of two
  alignas(64) std::atomic<std::uint64_t> tail{0};   // producer cursor
  alignas(64) std::atomic<std::uint64_t> head{0};   // consumer cursor
  alignas(64) std::atomic<std::uint64_t> drops{0};  // producer-side full/oversize rejections
};
static_assert(std::is_trivially_destructible_v<RingHeader>);

class SpscRing {
 public:
  static constexpr std::uint32_t kMagic = 0x44435247;  // "DCRG"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kFrameAlign = 8;
  static constexpr std::uint32_t kWrapMarker = 0xffffffffu;
  static constexpr std::size_t kMinCapacity = 4096;

  /// Bytes a frame of `payload` bytes occupies in the ring (length
  /// prefix + payload, rounded up to the frame alignment).
  static constexpr std::size_t framed_size(std::size_t payload) {
    return (sizeof(std::uint32_t) + payload + (kFrameAlign - 1)) & ~(kFrameAlign - 1);
  }

  /// Smallest valid capacity >= `bytes` (power of two, >= kMinCapacity).
  static std::size_t round_capacity(std::size_t bytes);

  /// Region bytes needed for a ring of `capacity` data bytes.
  static std::size_t region_size(std::size_t capacity) { return sizeof(RingHeader) + capacity; }

  /// In-process ring owning its storage. `capacity_bytes` is rounded up
  /// via round_capacity().
  explicit SpscRing(std::size_t capacity_bytes);

  /// Ring over an external region of `region_bytes` (e.g. a shared
  /// mapping). `init` formats the header (creator side); otherwise the
  /// header is validated against magic/version/capacity.
  SpscRing(void* region, std::size_t region_bytes, bool init);

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;
  SpscRing(SpscRing&& o) noexcept { move_from(o); }
  SpscRing& operator=(SpscRing&& o) noexcept {
    if (this != &o) move_from(o);
    return *this;
  }

  bool valid() const { return header_ != nullptr; }
  std::size_t capacity() const { return capacity_; }
  /// Largest single payload accepted (a frame must leave room for a
  /// wrap marker and must never be able to deadlock the ring).
  std::size_t max_payload() const { return capacity_ / 4; }

  /// Producer side. False = ring full or payload oversize; both count a
  /// drop (the caller applies its per-flow policy on top).
  bool try_push(std::span<const std::byte> payload);

  /// Consumer side: claim the currently published run (one acquire
  /// load), hand up to `max_frames` frames to `sink` as
  /// span<const byte>, retire them with one release store. Returns the
  /// number of frames delivered. The spans alias ring storage and are
  /// only valid inside the callback.
  template <typename Sink>
  std::size_t consume(std::size_t max_frames, Sink&& sink) {
    const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
    std::uint64_t head = header_->head.load(std::memory_order_relaxed);
    std::size_t delivered = 0;
    while (head != tail && delivered < max_frames) {
      const std::size_t offset = static_cast<std::size_t>(head & mask_);
      std::uint32_t len;
      std::memcpy(&len, data_ + offset, sizeof(len));
      if (len == kWrapMarker) {
        head += capacity_ - offset;  // skip the tail gap, continue at 0
        continue;
      }
      sink(std::span<const std::byte>(data_ + offset + sizeof(std::uint32_t), len));
      head += framed_size(len);
      ++delivered;
    }
    header_->head.store(head, std::memory_order_release);
    return delivered;
  }

  /// Published-but-unconsumed bytes (approximate across threads).
  std::size_t readable_bytes() const {
    return static_cast<std::size_t>(header_->tail.load(std::memory_order_acquire) -
                                    header_->head.load(std::memory_order_acquire));
  }
  bool empty() const { return readable_bytes() == 0; }
  std::uint64_t drops() const { return header_->drops.load(std::memory_order_relaxed); }

 private:
  void move_from(SpscRing& o) {
    owned_ = std::move(o.owned_);
    header_ = o.header_;
    data_ = o.data_;
    capacity_ = o.capacity_;
    mask_ = o.mask_;
    o.header_ = nullptr;
    o.data_ = nullptr;
  }

  std::unique_ptr<std::byte[]> owned_;  // in-process mode only
  RingHeader* header_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
};

/// A SpscRing living in a POSIX shared-memory object, so a producer in
/// another process can feed the runtime. The creator formats and later
/// unlinks the object; openers map an existing one and must agree on
/// the layout (magic/version/capacity are validated).
class ShmRing {
 public:
  static Result<ShmRing> create(const std::string& name, std::size_t capacity_bytes);
  static Result<ShmRing> open(const std::string& name);

  ShmRing(ShmRing&& o) noexcept { move_from(o); }
  ShmRing& operator=(ShmRing&& o) noexcept {
    if (this != &o) {
      release();
      move_from(o);
    }
    return *this;
  }
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;
  ~ShmRing() { release(); }

  SpscRing& ring() { return ring_; }
  const std::string& name() const { return name_; }

 private:
  ShmRing(std::string name, void* region, std::size_t region_bytes, bool creator);
  void move_from(ShmRing& o);
  void release();

  std::string name_;
  void* region_ = nullptr;
  std::size_t region_bytes_ = 0;
  bool creator_ = false;
  SpscRing ring_{nullptr, 0, false};
};

}  // namespace decos::rt
