#include "rt/gateway_runtime.hpp"

#include <thread>

#include "spec/message.hpp"

namespace decos::rt {

GatewayRuntime::GatewayRuntime(core::VirtualGateway& gateway, Clock& clock, RuntimeConfig config)
    : gateway_{&gateway}, clock_{&clock}, config_{config} {
  for (int side = 0; side < 2; ++side) {
    sides_[side].sink.runtime = this;
    sides_[side].sink.side = side;
  }
}

void GatewayRuntime::attach(int side, Endpoint& endpoint) {
  if (started_) throw SpecError("rt runtime: attach() after start()");
  sides_[static_cast<std::size_t>(side)].endpoint = &endpoint;
}

void GatewayRuntime::bind_observability(obs::MetricsRegistry& metrics) {
  const std::string prefix = "rt." + gateway_->name() + ".";
  rx_frames_metric_ = &metrics.counter(prefix + "rx_frames");
  rx_unknown_metric_ = &metrics.counter(prefix + "rx_unknown");
  rx_dropped_metric_ = &metrics.counter(prefix + "rx_dropped");
  tx_frames_metric_ = &metrics.counter(prefix + "tx_frames");
  tx_dropped_metric_ = &metrics.counter(prefix + "tx_dropped");
  backlog_metric_ = &metrics.gauge(prefix + "backlog");
  batch_frames_metric_ =
      &metrics.histogram(prefix + "batch_frames", obs::Determinism::kHostTime);
  service_ns_metric_ = &metrics.histogram(prefix + "service_ns", obs::Determinism::kHostTime);
}

void GatewayRuntime::set_telemetry(obs::WindowAggregator* aggregator) {
  telemetry_ = aggregator;
}

void GatewayRuntime::start() {
  if (started_) return;
  if (!gateway_->finalized())
    throw SpecError("rt runtime: gateway '" + gateway_->name() + "' not finalized");
  track_sym_ = intern_symbol("rt:" + gateway_->name());
  batch_sym_ = intern_symbol("rt.batch");

  for (int side = 0; side < 2; ++side) {
    Side& s = sides_[static_cast<std::size_t>(side)];
    if (s.endpoint == nullptr) continue;
    core::GatewayLink& link = gateway_->link(side);

    // Ingress table: one warmed scratch instance per input port, in
    // port order (the binding order the batched dispatch drains in).
    for (const core::GatewayLink::InputBinding& binding : link.input_bindings()) {
      if (binding.port_spec->direction != spec::DataDirection::kInput) continue;
      const spec::MessageSpec* message = link.spec().message(binding.port_spec->message);
      if (message == nullptr) continue;  // finalize() would have rejected this
      IngressEntry entry;
      entry.spec = message;
      entry.port = binding.port;
      entry.scratch = spec::make_instance(*message);
      entry.is_event = binding.port_spec->semantics == spec::InfoSemantics::kEvent;
      s.ingress.push_back(std::move(entry));
    }

    // Egress: encode the ConstructPlan scratch instance straight into
    // the side's transmit buffer, hand it to the endpoint. The buffer
    // is reused (encode_into retains capacity), so the steady state
    // performs no allocation and no instance copy.
    for (const auto& port_ptr : link.ports()) {
      if (port_ptr->spec().direction != spec::DataDirection::kOutput) continue;
      const spec::MessageSpec* message = link.spec().message(port_ptr->spec().message);
      if (message == nullptr) continue;
      Side* side_state = &s;
      link.set_emitter(port_ptr->spec().message,
                       [this, side_state, message](const spec::MessageInstance& instance) {
                         if (!spec::encode_into(*message, instance, side_state->tx_buf).ok()) {
                           ++stats_.tx_encode_errors;
                           return;
                         }
                         if (side_state->endpoint->send(side_state->tx_buf)) {
                           ++stats_.tx_frames;
                           if (tx_frames_metric_ != nullptr) tx_frames_metric_->add();
                         } else {
                           ++stats_.tx_dropped;
                           if (tx_dropped_metric_ != nullptr) tx_dropped_metric_->add();
                         }
                       });
    }
  }

  now_ = clock_->now();
  next_dispatch_ = now_ + gateway_->config().dispatch_period;
  started_ = true;
}

void GatewayRuntime::on_ingress_frame(int side, std::span<const std::byte> payload) {
  Side& s = sides_[static_cast<std::size_t>(side)];
  ++stats_.rx_frames;
  if (rx_frames_metric_ != nullptr) rx_frames_metric_->add();

  // Identify the message: last-hit entry first (streams are bursty per
  // flow), then the side's full table.
  std::size_t index = s.last_hit;
  if (index >= s.ingress.size() || !spec::matches_key(*s.ingress[index].spec, payload)) {
    index = s.ingress.size();
    for (std::size_t i = 0; i < s.ingress.size(); ++i) {
      if (spec::matches_key(*s.ingress[i].spec, payload)) {
        index = i;
        break;
      }
    }
    if (index == s.ingress.size()) {
      ++stats_.rx_unknown;
      if (rx_unknown_metric_ != nullptr) rx_unknown_metric_->add();
      return;
    }
    s.last_hit = index;
  }

  IngressEntry& entry = s.ingress[index];
  if (!spec::decode_into(*entry.spec, payload, entry.scratch).ok()) {
    ++entry.decode_errors;
    ++stats_.rx_decode_errors;
    return;
  }
  entry.scratch.set_send_time(now_);
  // Deposit applies the per-flow policy: state ports overwrite the
  // oldest image in place; event ports enqueue and report overflow
  // (drop-newest) when the bounded queue is full. Push ports process
  // synchronously through the notify closure -> batched drain.
  if (entry.port->deposit(entry.scratch, now_)) {
    ++entry.frames;
  } else {
    ++entry.drops;
    ++stats_.rx_dropped;
    if (rx_dropped_metric_ != nullptr) rx_dropped_metric_->add();
  }
}

std::size_t GatewayRuntime::poll_once(Instant now) {
  now_ = now;
  std::size_t processed = 0;
  for (Side& s : sides_) {
    if (s.endpoint == nullptr) continue;
    processed += s.endpoint->poll(s.sink, config_.max_batch);
  }
  if (processed > 0) {
    ++stats_.batches;
    if (batch_frames_metric_ != nullptr)
      batch_frames_metric_->observe(static_cast<std::int64_t>(processed));
  }
  // Dispatch on the exact period grid (catch-up if the loop fell
  // behind): pull-port drains, automaton timeout polls, TT outputs.
  while (next_dispatch_ <= now_) {
    gateway_->dispatch(next_dispatch_);
    ++stats_.dispatches;
    next_dispatch_ = next_dispatch_ + gateway_->config().dispatch_period;
  }
  if (backlog_metric_ != nullptr) {
    std::int64_t backlog = 0;
    for (const Side& s : sides_)
      if (s.endpoint != nullptr) backlog += static_cast<std::int64_t>(s.endpoint->backlog());
    backlog_metric_->set(backlog);
  }
  return processed;
}

void GatewayRuntime::note_batch(Instant start, Instant end, std::size_t frames) {
  if (service_ns_metric_ != nullptr && frames > 0)
    service_ns_metric_->observe((end - start).ns() / static_cast<std::int64_t>(frames));
  if (telemetry_ == nullptr) return;
  // One three-span trace per batch: root -> construct -> deliver. The
  // deliver finalizes the trace immediately (S27 trace landmarks), so
  // the aggregator folds batch service time into the current host-time
  // window with no open-trace residue.
  const std::uint64_t trace = next_trace_++;
  obs::Span span;
  span.trace_id = trace;
  span.span_id = trace;
  span.parent_id = 0;
  span.phase = obs::Phase::kSend;
  span.track = track_sym_;
  span.name = batch_sym_;
  span.start = start;
  span.end = start;
  telemetry_->on_span(span);
  span.parent_id = span.span_id;
  span.span_id = trace + (1ull << 32);
  span.phase = obs::Phase::kConstruct;
  span.end = end;
  telemetry_->on_span(span);
  span.parent_id = span.span_id;
  span.span_id = trace + (2ull << 32);
  span.phase = obs::Phase::kDeliver;
  span.start = end;
  span.value = static_cast<std::int64_t>(frames);
  telemetry_->on_span(span);
}

void GatewayRuntime::run() {
  if (!started_) start();
  running_.store(true, std::memory_order_relaxed);
  const bool sleep_when_idle = config_.idle_sleep > Duration::zero();
  while (running_.load(std::memory_order_relaxed)) {
    const Instant t0 = clock_->now();
    const std::size_t processed = poll_once(t0);
    if (processed > 0) {
      note_batch(t0, clock_->now(), processed);
    } else if (sleep_when_idle) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(config_.idle_sleep.ns()));
    }
  }
}

std::vector<FlowStats> GatewayRuntime::flow_stats() const {
  std::vector<FlowStats> flows;
  for (int side = 0; side < 2; ++side) {
    const Side& s = sides_[static_cast<std::size_t>(side)];
    for (const IngressEntry& entry : s.ingress) {
      FlowStats f;
      f.message = entry.spec->name();
      f.side = side;
      f.is_event = entry.is_event;
      f.frames = entry.frames;
      f.drops = entry.drops;
      f.decode_errors = entry.decode_errors;
      flows.push_back(std::move(f));
    }
  }
  return flows;
}

}  // namespace decos::rt
