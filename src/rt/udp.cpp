#include "rt/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace decos::rt {

namespace {

Result<sockaddr_in> make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Result<sockaddr_in>::failure("not an IPv4 address: " + host);
  return addr;
}

}  // namespace

UdpEndpoint::UdpEndpoint(int fd, sockaddr_in peer, bool has_peer)
    : fd_{fd}, peer_{peer}, has_peer_{has_peer} {
  burst_storage_.resize(kMaxBurst * kMaxDatagram);
  iovecs_.resize(kMaxBurst);
#ifdef __linux__
  headers_.resize(kMaxBurst);
#endif
  for (std::size_t i = 0; i < kMaxBurst; ++i) {
    iovecs_[i].iov_base = burst_storage_.data() + i * kMaxDatagram;
    iovecs_[i].iov_len = kMaxDatagram;
  }
}

UdpEndpoint::UdpEndpoint(UdpEndpoint&& o) noexcept { *this = std::move(o); }

UdpEndpoint& UdpEndpoint::operator=(UdpEndpoint&& o) noexcept {
  if (this == &o) return *this;
  if (fd_ >= 0) ::close(fd_);
  fd_ = o.fd_;
  peer_ = o.peer_;
  has_peer_ = o.has_peer_;
  stats_ = o.stats_;
  burst_storage_ = std::move(o.burst_storage_);
  iovecs_ = std::move(o.iovecs_);
#ifdef __linux__
  headers_ = std::move(o.headers_);
#endif
  // The iovecs point into burst_storage_, whose heap block moved with
  // the vector, so they stay valid.
  o.fd_ = -1;
  return *this;
}

UdpEndpoint::~UdpEndpoint() {
  if (fd_ >= 0) ::close(fd_);
}

Result<UdpEndpoint> UdpEndpoint::bind_loopback(std::uint16_t local_port, std::uint16_t peer_port) {
  return bind("127.0.0.1", local_port, peer_port != 0 ? "127.0.0.1" : "", peer_port);
}

Result<UdpEndpoint> UdpEndpoint::bind(const std::string& local_host, std::uint16_t local_port,
                                      const std::string& peer_host, std::uint16_t peer_port) {
  auto local = make_addr(local_host, local_port);
  if (!local.ok()) return local.error();
  sockaddr_in peer{};
  bool has_peer = false;
  if (!peer_host.empty()) {
    auto addr = make_addr(peer_host, peer_port);
    if (!addr.ok()) return addr.error();
    peer = addr.value();
    has_peer = true;
  }
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return Result<UdpEndpoint>::failure(std::string{"socket: "} + std::strerror(errno));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Result<UdpEndpoint>::failure("fcntl(O_NONBLOCK): " + err);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&local.value()), sizeof(sockaddr_in)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Result<UdpEndpoint>::failure("bind(" + local_host + ":" +
                                        std::to_string(local_port) + "): " + err);
  }
  return UdpEndpoint{fd, peer, has_peer};
}

std::uint16_t UdpEndpoint::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

std::size_t UdpEndpoint::poll(FrameSink& sink, std::size_t max_frames) {
  std::size_t burst = max_frames < kMaxBurst ? max_frames : kMaxBurst;
  if (burst == 0) return 0;
  std::size_t delivered = 0;
#ifdef __linux__
  for (std::size_t i = 0; i < burst; ++i) {
    std::memset(&headers_[i], 0, sizeof(headers_[i]));
    headers_[i].msg_hdr.msg_iov = &iovecs_[i];
    headers_[i].msg_hdr.msg_iovlen = 1;
    if (!has_peer_ && i == 0) {
      headers_[i].msg_hdr.msg_name = &peer_;
      headers_[i].msg_hdr.msg_namelen = sizeof(peer_);
    }
  }
  const int n = ::recvmmsg(fd_, headers_.data(), static_cast<unsigned>(burst), MSG_DONTWAIT,
                           nullptr);
  if (n <= 0) return 0;
  if (!has_peer_ && headers_[0].msg_hdr.msg_namelen >= sizeof(sockaddr_in)) has_peer_ = true;
  for (int i = 0; i < n; ++i) {
    const std::size_t len = headers_[i].msg_len;
    stats_.rx_bytes += len;
    sink.on_frame(std::span<const std::byte>(
        static_cast<const std::byte*>(iovecs_[i].iov_base), len));
  }
  delivered = static_cast<std::size_t>(n);
#else
  for (std::size_t i = 0; i < burst; ++i) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t len =
        ::recvfrom(fd_, iovecs_[0].iov_base, kMaxDatagram, MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (len < 0) break;
    if (!has_peer_) {
      peer_ = from;
      has_peer_ = true;
    }
    stats_.rx_bytes += static_cast<std::size_t>(len);
    sink.on_frame(std::span<const std::byte>(
        static_cast<const std::byte*>(iovecs_[0].iov_base), static_cast<std::size_t>(len)));
    ++delivered;
  }
#endif
  stats_.rx_frames += delivered;
  return delivered;
}

bool UdpEndpoint::send(std::span<const std::byte> payload) {
  if (!has_peer_) {
    ++stats_.tx_dropped;  // nowhere to send yet (peer not learned)
    return false;
  }
  const ssize_t sent =
      ::sendto(fd_, payload.data(), payload.size(), MSG_DONTWAIT,
               reinterpret_cast<const sockaddr*>(&peer_), sizeof(peer_));
  if (sent != static_cast<ssize_t>(payload.size())) {
    ++stats_.tx_dropped;
    return false;
  }
  ++stats_.tx_frames;
  stats_.tx_bytes += payload.size();
  return true;
}

}  // namespace decos::rt
