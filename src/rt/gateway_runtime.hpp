// The live gateway runtime (S30): host-time event loop feeding the
// compiled gateway path from real byte streams.
//
// GatewayRuntime owns no gateway logic. It drains each side's Endpoint
// in batches (one run-length ring claim / one recvmmsg burst), decodes
// every frame into a warmed per-message scratch instance
// (spec::decode_into) and deposits it into the gateway's input port --
// from there the push-notify closures installed by finalize() route the
// instance through the same batched dispatch, store-epoch caches and
// construct plans the simulated stack uses. Egress rides the
// GatewayLink emitter hook: construct_and_emit() hands the runtime the
// ConstructPlan's scratch instance, which is encoded straight into a
// warmed per-side transmit buffer and pushed to the endpoint -- the
// constructed message is never copied into a port.
//
// Backpressure is per-flow and follows the port's information
// semantics: state flows overwrite the oldest image in place (a stale
// state is replaced, never queued), event flows queue up to the port's
// capacity and drop the newest arrival beyond it, counting the drop.
// The standalone dispatch tick runs on an exact period grid anchored at
// start(), so replaying a byte schedule under a ManualClock reproduces
// the simulator's dispatch instants bit-for-bit (the equivalence
// property test pins this).
//
// In steady state the loop performs no heap allocation: scratch
// instances, transmit buffers and burst storage are warmed once, and
// the metric/telemetry hooks are the allocation-free S27 instruments.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/virtual_gateway.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "rt/clock.hpp"
#include "rt/endpoint.hpp"
#include "util/time.hpp"

namespace decos::rt {

struct RuntimeConfig {
  /// Frames drained from one endpoint per loop iteration (the ring
  /// claim / recvmmsg burst size).
  std::size_t max_batch = 64;
  /// Sleep applied when a loop iteration moved no frames (0 = spin).
  Duration idle_sleep = Duration::microseconds(50);
};

/// Per-flow ingress accounting (one entry per input port).
struct FlowStats {
  std::string message;
  int side = 0;
  bool is_event = false;
  std::uint64_t frames = 0;        // decoded + deposited
  std::uint64_t drops = 0;         // event queue full (drop-newest)
  std::uint64_t decode_errors = 0;
};

struct RuntimeStats {
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_unknown = 0;       // no message spec matched the payload key
  std::uint64_t rx_decode_errors = 0;
  std::uint64_t rx_dropped = 0;       // event-flow queue overflow
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_dropped = 0;       // endpoint backpressure
  std::uint64_t tx_encode_errors = 0;
  std::uint64_t batches = 0;
  std::uint64_t dispatches = 0;
};

class GatewayRuntime {
 public:
  /// `gateway` must outlive the runtime and be finalized before start().
  GatewayRuntime(core::VirtualGateway& gateway, Clock& clock, RuntimeConfig config = {});

  /// Attach the transport for one side (0/1). A side without an
  /// endpoint neither receives nor emits (its constructed messages fall
  /// back to the output port).
  void attach(int side, Endpoint& endpoint);

  /// Register the rt.<gateway>.* instruments (queue depth, batch size,
  /// drop counters, service latency). Host-time determinism class.
  void bind_observability(obs::MetricsRegistry& metrics);

  /// Stream per-batch service spans into an S27 window aggregator
  /// (TelemetryTimeline::kHost); metric deltas ride the same windows.
  void set_telemetry(obs::WindowAggregator* aggregator);

  /// Build the warmed ingress/egress tables and anchor the dispatch
  /// grid at clock.now(). Call once, after attach()/finalize().
  void start();
  bool started() const { return started_; }

  /// One loop iteration at instant `now`: drain every attached endpoint
  /// once (up to max_batch frames each), then run all dispatch ticks
  /// whose grid instant has passed. Returns frames processed. Exposed
  /// for tests and for single-threaded co-simulation.
  std::size_t poll_once(Instant now);

  /// Run until stop(): poll, sample service latency, idle-sleep when
  /// nothing moved.
  void run();
  /// Make run() return; callable from another thread or a signal
  /// handler context via a relaxed atomic.
  void stop() { running_.store(false, std::memory_order_relaxed); }

  const RuntimeStats& stats() const { return stats_; }
  /// Per-flow ingress accounting, all sides (stable order: side, port).
  std::vector<FlowStats> flow_stats() const;
  Instant next_dispatch() const { return next_dispatch_; }
  core::VirtualGateway& gateway() { return *gateway_; }

 private:
  struct IngressEntry {
    const spec::MessageSpec* spec = nullptr;
    vn::Port* port = nullptr;
    spec::MessageInstance scratch;
    bool is_event = false;
    std::uint64_t frames = 0;
    std::uint64_t drops = 0;
    std::uint64_t decode_errors = 0;
  };

  struct Side;

  /// FrameSink adapter routing endpoint frames into one side's table.
  struct SideSink final : FrameSink {
    GatewayRuntime* runtime = nullptr;
    int side = 0;
    void on_frame(std::span<const std::byte> payload) override {
      runtime->on_ingress_frame(side, payload);
    }
  };

  struct Side {
    Endpoint* endpoint = nullptr;
    std::vector<IngressEntry> ingress;
    std::size_t last_hit = 0;  // ingress index of the previous frame's match
    std::vector<std::byte> tx_buf;
    SideSink sink;
  };

  void on_ingress_frame(int side, std::span<const std::byte> payload);
  void note_batch(Instant start, Instant end, std::size_t frames);

  core::VirtualGateway* gateway_;
  Clock* clock_;
  RuntimeConfig config_;
  std::array<Side, 2> sides_;
  Instant now_;
  Instant next_dispatch_;
  bool started_ = false;
  std::atomic<bool> running_{false};
  RuntimeStats stats_;

  // Observability (optional; raw pointers into the registry's deque).
  obs::Counter* rx_frames_metric_ = nullptr;
  obs::Counter* rx_unknown_metric_ = nullptr;
  obs::Counter* rx_dropped_metric_ = nullptr;
  obs::Counter* tx_frames_metric_ = nullptr;
  obs::Counter* tx_dropped_metric_ = nullptr;
  obs::Gauge* backlog_metric_ = nullptr;
  obs::Histogram* batch_frames_metric_ = nullptr;
  obs::Histogram* service_ns_metric_ = nullptr;
  obs::WindowAggregator* telemetry_ = nullptr;
  Symbol track_sym_;
  Symbol batch_sym_;
  std::uint64_t next_trace_ = (1ull << 40);  // clear of gateway-collector ids
};

}  // namespace decos::rt
