#include "rt/ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

namespace decos::rt {

std::size_t SpscRing::round_capacity(std::size_t bytes) {
  std::size_t cap = kMinCapacity;
  while (cap < bytes) cap <<= 1;
  return cap;
}

SpscRing::SpscRing(std::size_t capacity_bytes) {
  const std::size_t capacity = round_capacity(capacity_bytes);
  owned_ = std::make_unique<std::byte[]>(region_size(capacity));
  header_ = new (owned_.get()) RingHeader{};
  header_->magic = kMagic;
  header_->version = kVersion;
  header_->capacity = capacity;
  data_ = owned_.get() + sizeof(RingHeader);
  capacity_ = capacity;
  mask_ = capacity - 1;
}

SpscRing::SpscRing(void* region, std::size_t region_bytes, bool init) {
  if (region == nullptr || region_bytes <= sizeof(RingHeader)) return;
  const std::size_t capacity = region_bytes - sizeof(RingHeader);
  if ((capacity & (capacity - 1)) != 0 || capacity < kMinCapacity) return;
  if (init) {
    header_ = new (region) RingHeader{};
    header_->magic = kMagic;
    header_->version = kVersion;
    header_->capacity = capacity;
  } else {
    auto* header = static_cast<RingHeader*>(region);
    if (header->magic != kMagic || header->version != kVersion || header->capacity != capacity)
      return;
    header_ = header;
  }
  data_ = static_cast<std::byte*>(region) + sizeof(RingHeader);
  capacity_ = capacity;
  mask_ = capacity - 1;
}

bool SpscRing::try_push(std::span<const std::byte> payload) {
  const std::size_t need = framed_size(payload.size());
  if (payload.size() > max_payload()) {
    header_->drops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  const std::size_t offset = static_cast<std::size_t>(tail & mask_);
  const std::size_t contiguous = capacity_ - offset;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());

  std::uint64_t end;
  std::byte* slot;
  if (need <= contiguous) {
    if (tail + need - head > capacity_) {
      header_->drops.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slot = data_ + offset;
    end = tail + need;
  } else {
    // Frame does not fit before the wrap: mark the gap, start at 0.
    // Offsets are frame-aligned, so `contiguous` >= kFrameAlign and the
    // 4-byte marker always fits.
    if (tail + contiguous + need - head > capacity_) {
      header_->drops.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const std::uint32_t marker = kWrapMarker;
    std::memcpy(data_ + offset, &marker, sizeof(marker));
    slot = data_;
    end = tail + contiguous + need;
  }
  std::memcpy(slot, &len, sizeof(len));
  if (!payload.empty()) std::memcpy(slot + sizeof(len), payload.data(), payload.size());
  header_->tail.store(end, std::memory_order_release);
  return true;
}

// -- ShmRing ----------------------------------------------------------------

ShmRing::ShmRing(std::string name, void* region, std::size_t region_bytes, bool creator)
    : name_{std::move(name)},
      region_{region},
      region_bytes_{region_bytes},
      creator_{creator},
      ring_{region, region_bytes, creator} {}

Result<ShmRing> ShmRing::create(const std::string& name, std::size_t capacity_bytes) {
  const std::size_t capacity = SpscRing::round_capacity(capacity_bytes);
  const std::size_t bytes = SpscRing::region_size(capacity);
  // A stale object from a crashed run must not leak its cursors into
  // this one: recreate from scratch.
  ::shm_unlink(name.c_str());
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0)
    return Result<ShmRing>::failure("shm_open(" + name + "): " + std::strerror(errno));
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::shm_unlink(name.c_str());
    return Result<ShmRing>::failure("ftruncate(" + name + "): " + err);
  }
  void* region = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (region == MAP_FAILED)
    return Result<ShmRing>::failure("mmap(" + name + "): " + std::strerror(errno));
  return ShmRing{name, region, bytes, /*creator=*/true};
}

Result<ShmRing> ShmRing::open(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0)
    return Result<ShmRing>::failure("shm_open(" + name + "): " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= static_cast<off_t>(sizeof(RingHeader))) {
    ::close(fd);
    return Result<ShmRing>::failure("shm object " + name + " has no ring layout");
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  void* region = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (region == MAP_FAILED)
    return Result<ShmRing>::failure("mmap(" + name + "): " + std::strerror(errno));
  ShmRing ring{name, region, bytes, /*creator=*/false};
  if (!ring.ring().valid())
    return Result<ShmRing>::failure("shm object " + name + " is not a decos ring (bad magic/size)");
  return ring;
}

void ShmRing::move_from(ShmRing& o) {
  name_ = std::move(o.name_);
  region_ = o.region_;
  region_bytes_ = o.region_bytes_;
  creator_ = o.creator_;
  ring_ = std::move(o.ring_);
  o.region_ = nullptr;
  o.region_bytes_ = 0;
  o.creator_ = false;
}

void ShmRing::release() {
  if (region_ != nullptr) ::munmap(region_, region_bytes_);
  if (creator_ && !name_.empty()) ::shm_unlink(name_.c_str());
  region_ = nullptr;
  creator_ = false;
}

}  // namespace decos::rt
