// Transport endpoints for the live gateway runtime (S30).
//
// An Endpoint is one side's byte-frame attachment point: the runtime
// drains ingress frames from it in batches and pushes egress frames into
// it. Two transports implement the interface -- SPSC shared-memory rings
// (RingEndpoint, in-process or cross-process via ShmRing) and
// non-blocking UDP sockets (UdpEndpoint, udp.hpp). Both are non-blocking
// on both directions; a transmit that cannot complete counts tx_dropped
// instead of stalling the gateway loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "rt/ring.hpp"

namespace decos::rt {

/// Receiver of drained ingress frames. A virtual interface (not
/// std::function) so per-frame delivery stays allocation-free.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  /// `payload` aliases transport storage; valid only during the call.
  virtual void on_frame(std::span<const std::byte> payload) = 0;
};

struct EndpointStats {
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t tx_dropped = 0;  // egress backpressure (ring full / EWOULDBLOCK)
};

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Drain up to `max_frames` pending ingress frames into `sink`.
  /// Returns the number delivered (0 = nothing pending).
  virtual std::size_t poll(FrameSink& sink, std::size_t max_frames) = 0;

  /// Transmit one egress frame. False = transport backpressure; the
  /// frame is dropped and counted (the runtime's egress policy).
  virtual bool send(std::span<const std::byte> payload) = 0;

  /// Ingress frames queued but not yet drained (best effort; rings
  /// report bytes-derived estimates, sockets report 0).
  virtual std::size_t backlog() const { return 0; }

  virtual const char* kind() const = 0;

  const EndpointStats& stats() const { return stats_; }

 protected:
  EndpointStats stats_;
};

/// Endpoint over a pair of SPSC rings: `rx` carries peer->gateway
/// frames (the runtime is the consumer), `tx` carries gateway->peer
/// frames (the runtime is the producer). The rings are borrowed -- the
/// bench owns in-process rings, decogw owns ShmRing mappings.
class RingEndpoint final : public Endpoint {
 public:
  RingEndpoint(SpscRing& rx, SpscRing& tx) : rx_{&rx}, tx_{&tx} {}

  std::size_t poll(FrameSink& sink, std::size_t max_frames) override {
    const std::size_t n = rx_->consume(max_frames, [&](std::span<const std::byte> payload) {
      stats_.rx_bytes += payload.size();
      sink.on_frame(payload);
    });
    stats_.rx_frames += n;
    return n;
  }

  bool send(std::span<const std::byte> payload) override {
    if (!tx_->try_push(payload)) {
      ++stats_.tx_dropped;
      return false;
    }
    ++stats_.tx_frames;
    stats_.tx_bytes += payload.size();
    return true;
  }

  std::size_t backlog() const override { return rx_->readable_bytes(); }
  const char* kind() const override { return "ring"; }

  SpscRing& rx() { return *rx_; }
  SpscRing& tx() { return *tx_; }

 private:
  SpscRing* rx_;
  SpscRing* tx_;
};

}  // namespace decos::rt
