// Non-blocking UDP transport endpoint (S30).
//
// One datagram carries one message frame. The socket is opened
// non-blocking; poll() drains a burst with a single recvmmsg() call on
// Linux (one syscall for up to the batch size, the socket-side analogue
// of the ring's run-length claim) and falls back to a recvfrom() loop
// elsewhere. send() never blocks: EWOULDBLOCK/ENOBUFS counts tx_dropped
// -- same backpressure contract as the ring endpoint.
//
// The peer address is either configured up front (connect-style) or
// learned from the first received datagram (reply-to-sender mode), so a
// loopback test needs no address plumbing.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rt/endpoint.hpp"
#include "util/result.hpp"

namespace decos::rt {

class UdpEndpoint final : public Endpoint {
 public:
  /// Datagrams larger than this are truncated by the kernel; generous
  /// for the fixed-layout message codec (frames are tens of bytes).
  static constexpr std::size_t kMaxDatagram = 2048;
  /// Upper bound on one recvmmsg burst; poll() clamps to it.
  static constexpr std::size_t kMaxBurst = 64;

  /// Bind to 127.0.0.1:`local_port` (0 = kernel-assigned). If
  /// `peer_port` != 0 the peer is fixed to 127.0.0.1:`peer_port`,
  /// otherwise it is learned from the first received datagram.
  static Result<UdpEndpoint> bind_loopback(std::uint16_t local_port, std::uint16_t peer_port = 0);

  /// General form: bind to `local_host`:`local_port`; optional fixed
  /// peer `peer_host`:`peer_port` (empty host = learn from traffic).
  static Result<UdpEndpoint> bind(const std::string& local_host, std::uint16_t local_port,
                                  const std::string& peer_host, std::uint16_t peer_port);

  UdpEndpoint(UdpEndpoint&& o) noexcept;
  UdpEndpoint& operator=(UdpEndpoint&& o) noexcept;
  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;
  ~UdpEndpoint() override;

  std::size_t poll(FrameSink& sink, std::size_t max_frames) override;
  bool send(std::span<const std::byte> payload) override;
  const char* kind() const override { return "udp"; }

  /// The locally bound port (resolves kernel-assigned port 0).
  std::uint16_t local_port() const;
  bool has_peer() const { return has_peer_; }

 private:
  UdpEndpoint(int fd, sockaddr_in peer, bool has_peer);

  int fd_ = -1;
  sockaddr_in peer_{};
  bool has_peer_ = false;
  // Warmed burst-receive scratch: one buffer + iovec + mmsghdr per
  // burst slot, allocated once at construction.
  std::vector<std::byte> burst_storage_;
  std::vector<iovec> iovecs_;
#ifdef __linux__
  std::vector<struct mmsghdr> headers_;
#endif
};

}  // namespace decos::rt
