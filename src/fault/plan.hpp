// Node-level fault injection (paper Section II-D fault hypothesis).
//
// Hardware fault containment regions are whole components; their failure
// mode is arbitrary. The plan schedules crash windows (permanent when
// open-ended, transient otherwise), send-omission episodes and
// babbling-idiot bursts against controllers, driven by simulator events.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "tt/controller.hpp"
#include "util/rng.hpp"

namespace decos::fault {

class FaultPlan {
 public:
  FaultPlan(sim::Simulator& simulator, sim::TraceRecorder* trace = nullptr)
      : simulator_{simulator}, trace_{trace} {}

  /// Crash `controller` at `at`; recover after `outage` (Duration::max()
  /// = permanent).
  void crash(tt::Controller& controller, Instant at, Duration outage = Duration::max());

  /// From `at` on, drop each of the node's transmissions with
  /// probability `rate` (send-omission failures).
  void omission(tt::Controller& controller, Instant at, double rate, std::uint64_t seed = 1);

  /// Babbling idiot: starting at `at`, the node attempts `count`
  /// transmissions into `slot_index` (claiming VN `vn`) spaced `gap`
  /// apart, regardless of slot ownership or timing.
  void babble(tt::Controller& controller, Instant at, std::size_t slot_index, tt::VnId vn,
              std::size_t count, Duration gap, std::size_t payload_bytes = 16);

  std::uint64_t injected() const { return injected_; }

 private:
  void note(Instant when, const std::string& subject, const std::string& detail);

  sim::Simulator& simulator_;
  sim::TraceRecorder* trace_;
  std::uint64_t injected_ = 0;
  // Periodic injection bursts (babble); each burst is one kernel task
  // that counts itself down and cancels. Owned here so destroying the
  // plan stops pending bursts.
  std::vector<sim::PeriodicTask> bursts_;
};

}  // namespace decos::fault
