#include "fault/message_faults.hpp"

namespace decos::fault {

Duration TimingFaultProfile::next_gap(Rng& rng, bool& is_fault) const {
  is_fault = false;
  const double u = rng.next_double();
  if (u < early_rate) {
    is_fault = true;
    return early_gap;
  }
  if (u < early_rate + omission_rate) {
    is_fault = true;  // the *silence* is the fault (tmax violation)
    return nominal_interarrival * 2 + (jitter.is_zero() ? Duration::zero()
                                                        : rng.normal_duration(jitter, jitter));
  }
  if (jitter.is_zero()) return nominal_interarrival;
  return rng.normal_duration(nominal_interarrival, jitter);
}

std::size_t corrupt_values(spec::MessageInstance& instance, const spec::MessageSpec& message_spec,
                           Rng& rng, double rate) {
  std::size_t corrupted = 0;
  for (const auto& es : message_spec.elements()) {
    spec::ElementValue* ev = instance.element(es.name);
    if (ev == nullptr) continue;
    for (std::size_t i = 0; i < es.fields.size() && i < ev->fields.size(); ++i) {
      const spec::FieldSpec& fs = es.fields[i];
      if (fs.is_static()) continue;  // keys stay intact: corrupt values, not names
      if (!rng.bernoulli(rate)) continue;
      ta::Value& v = ev->fields[i];
      if (v.is_int()) {
        v = ta::Value{v.as_int() ^ static_cast<std::int64_t>(rng.uniform_int(1, 0xFFFF))};
      } else if (v.is_real()) {
        v = ta::Value{v.as_real() * rng.uniform(-100.0, 100.0)};
      } else if (v.is_bool()) {
        v = ta::Value{!v.as_bool()};
      } else {
        continue;  // strings: skip (length constraints)
      }
      ++corrupted;
    }
  }
  return corrupted;
}

}  // namespace decos::fault
