#include "fault/plan.hpp"

namespace decos::fault {

void FaultPlan::note(Instant when, const std::string& subject, const std::string& detail) {
  ++injected_;
  if (trace_ != nullptr)
    DECOS_TRACE(*trace_, when, sim::TraceKind::kFaultInjected, subject, detail);
}

void FaultPlan::crash(tt::Controller& controller, Instant at, Duration outage) {
  simulator_.schedule_at(at, [this, &controller] {
    controller.set_crashed(true);
    note(simulator_.now(), "node" + std::to_string(controller.id()), "crash");
  });
  if (outage < Duration::max()) {
    simulator_.schedule_at(at + outage, [this, &controller] {
      controller.set_crashed(false);
      note(simulator_.now(), "node" + std::to_string(controller.id()), "recover");
    });
  }
}

void FaultPlan::omission(tt::Controller& controller, Instant at, double rate,
                         std::uint64_t seed) {
  simulator_.schedule_at(at, [this, &controller, rate, seed] {
    controller.set_send_omission_rate(rate, seed);
    note(simulator_.now(), "node" + std::to_string(controller.id()),
         "omission rate " + std::to_string(rate));
  });
}

void FaultPlan::babble(tt::Controller& controller, Instant at, std::size_t slot_index,
                       tt::VnId vn, std::size_t count, Duration gap,
                       std::size_t payload_bytes) {
  if (count == 0) return;
  if (gap <= Duration::zero()) {
    // Degenerate burst: all attempts at the same instant, FIFO.
    for (std::size_t i = 0; i < count; ++i) {
      simulator_.schedule_at(at, [this, &controller, slot_index, vn, payload_bytes] {
        std::vector<std::byte> junk(payload_bytes, std::byte{0xAB});
        controller.babble(slot_index, vn, std::move(junk));
        note(simulator_.now(), "node" + std::to_string(controller.id()), "babble");
      });
    }
    return;
  }
  const std::size_t burst = bursts_.size();
  bursts_.emplace_back();
  bursts_[burst] = simulator_.schedule_periodic(
      at, gap,
      [this, &controller, slot_index, vn, payload_bytes, burst, remaining = count]() mutable {
        std::vector<std::byte> junk(payload_bytes, std::byte{0xAB});
        controller.babble(slot_index, vn, std::move(junk));
        note(simulator_.now(), "node" + std::to_string(controller.id()), "babble");
        if (--remaining == 0) bursts_[burst].cancel();
      });
}

}  // namespace decos::fault
