// Job-level (software FCR) fault injection: violations of the port
// specification in the time or value domain (paper Section II-D).
//
// The timing-faulty sender transmits on an event-triggered VN with a
// configurable mixture of correct interarrivals, too-early bursts and
// omissions -- the traffic experiment E1 pushes through a gateway to
// measure containment. The value-corruption helper flips dynamic fields
// of an instance (key fields stay intact so the message still identifies,
// exercising value-domain filtering separately from naming).
#pragma once

#include <cstdint>

#include "spec/message.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace decos::fault {

/// Timing behaviour of a (possibly faulty) event sender.
struct TimingFaultProfile {
  Duration nominal_interarrival = Duration::milliseconds(10);
  Duration jitter = Duration::zero();      // stddev around the nominal gap
  double early_rate = 0.0;                 // P(next gap = early_gap)  -- violates tmin
  Duration early_gap = Duration::microseconds(100);
  double omission_rate = 0.0;              // P(skip a send entirely)  -- may violate tmax
  double burst_rate = 0.0;                 // P(burst of burst_len back-to-back sends)
  std::size_t burst_len = 5;

  /// Draw the next interarrival gap; `is_fault` reports whether the draw
  /// was a deliberate violation (for ground-truth accounting).
  Duration next_gap(Rng& rng, bool& is_fault) const;
};

/// Corrupt every dynamic (non-static) numeric field of `instance` with
/// probability `rate` each; returns the number of corrupted fields.
std::size_t corrupt_values(spec::MessageInstance& instance, const spec::MessageSpec& message_spec,
                           Rng& rng, double rate);

}  // namespace decos::fault
