#include "ta/interpreter.hpp"

#include <cassert>

#include "util/result.hpp"

namespace decos::ta {

namespace {

// Interned once per process; guard/assignment identifiers resolve against
// these before hitting the clock/variable maps.
Symbol t_now_sym() {
  static const Symbol s = intern_symbol("t_now");
  return s;
}
Symbol tnow_sym() {
  static const Symbol s = intern_symbol("tnow");
  return s;
}

}  // namespace

/// Environment adaptor: resolves identifiers against the interpreter's
/// clocks and variables, then the hooks; provides min/max/abs builtins and
/// delegates other calls (horizon, requ) to the gateway.
class Interpreter::Env final : public Environment {
 public:
  Env(Interpreter& interp, Instant now) : interp_{interp}, now_{now} {}

  Value get(Symbol sym, const std::string& name) const override {
    if (sym == t_now_sym() || sym == tnow_sym()) return Value{now_};
    if (const auto it = interp_.clocks_.find(sym); it != interp_.clocks_.end()) {
      return Value{it->second.base + (now_ - it->second.set_at)};
    }
    if (const auto it = interp_.variables_.find(sym); it != interp_.variables_.end()) {
      return it->second;
    }
    if (interp_.hooks_.resolve) return interp_.hooks_.resolve(name);
    throw SpecError("unknown identifier '" + name + "' in automaton '" +
                    interp_.spec_->name() + "'");
  }

  void set(Symbol sym, const std::string& name, const Value& value) override {
    (void)name;
    if (const auto it = interp_.clocks_.find(sym); it != interp_.clocks_.end()) {
      it->second.base = value.as_duration();
      it->second.set_at = now_;
      return;
    }
    // Assignments may introduce new state variables on first use.
    interp_.variables_[sym] = value;
  }

  Value get(const std::string& name) const override { return get(intern_symbol(name), name); }

  void set(const std::string& name, const Value& value) override {
    set(intern_symbol(name), name, value);
  }

  Value call(const std::string& fn, const std::vector<Value>& args) override {
    if (fn == "min" && args.size() == 2) {
      return args[0].as_real() <= args[1].as_real() ? args[0] : args[1];
    }
    if (fn == "max" && args.size() == 2) {
      return args[0].as_real() >= args[1].as_real() ? args[0] : args[1];
    }
    if (fn == "abs" && args.size() == 1) {
      if (args[0].is_real()) return Value{args[0].as_real() < 0 ? -args[0].as_real() : args[0].as_real()};
      return Value{args[0].as_int() < 0 ? -args[0].as_int() : args[0].as_int()};
    }
    if (interp_.hooks_.invoke) return interp_.hooks_.invoke(fn, args);
    throw SpecError("unknown function '" + fn + "' in automaton '" + interp_.spec_->name() + "'");
  }

 private:
  Interpreter& interp_;
  Instant now_;
};

Interpreter::Interpreter(const AutomatonSpec& spec, InterpreterHooks hooks)
    : spec_{&spec}, hooks_{std::move(hooks)}, error_{spec.error_sym()} {
  spec.validate().check();
  restart(Instant::origin());
}

void Interpreter::restart(Instant now) {
  location_ = spec_->initial_sym();
  clocks_.clear();
  for (const auto& c : spec_->clocks()) clocks_[intern_symbol(c)] = ClockState{Duration::zero(), now};
  variables_.clear();
  for (const auto& [name, initial] : spec_->variables()) variables_[intern_symbol(name)] = initial;
}

bool Interpreter::guard_holds(const Edge& edge, Instant now) {
  if (!edge.guard) return true;
  Env env{*this, now};
  return edge.guard->evaluate(env).as_bool();
}

void Interpreter::take_edge(const Edge& edge, Instant now) {
  Env env{*this, now};
  for (const auto& a : edge.assignments) a.apply(env);
  location_ = edge.target_sym;
  ++transitions_;
}

const Edge* Interpreter::unique_enabled(ActionKind action, Symbol message, Instant now) {
  const Edge* found = nullptr;
  for (const auto& e : spec_->edges()) {
    if (e.source_sym != location_ || e.action != action) continue;
    if (action != ActionKind::kInternal && e.message_sym != message) continue;
    if (!guard_holds(e, now)) continue;
    if (found != nullptr) {
      throw SpecError("automaton '" + spec_->name() + "' is nondeterministic at location '" +
                      symbol_name(location_) + "': edges '" + found->label() + "' and '" +
                      e.label() + "' both enabled");
    }
    found = &e;
  }
  return found;
}

FireResult Interpreter::on_receive(Symbol message, Instant now) {
  if (in_error()) return FireResult::kError;
  const Edge* edge = unique_enabled(ActionKind::kReceive, message, now);
  if (edge == nullptr) {
    // Does this automaton handle the message at all (any location)? If
    // yes, the arrival violated the temporal specification -- either its
    // guard failed or the protocol is in a state that does not expect the
    // message -- and the automaton moves to its error state (Section
    // IV-B.2). If the automaton never mentions the message, the arrival
    // is simply not its business.
    bool message_known = false;
    for (const auto& e : spec_->edges()) {
      if (e.action == ActionKind::kReceive && e.message_sym == message) {
        message_known = true;
        break;
      }
    }
    if (message_known && error_.valid()) {
      location_ = error_;
      ++transitions_;
      return FireResult::kError;
    }
    return FireResult::kNotEnabled;
  }
  take_edge(*edge, now);
  return in_error() ? FireResult::kError : FireResult::kFired;
}

FireResult Interpreter::try_send(Symbol message, Instant now) {
  if (in_error()) return FireResult::kError;
  const Edge* edge = unique_enabled(ActionKind::kSend, message, now);
  if (edge == nullptr) return FireResult::kNotEnabled;
  // The m! label is itself a guard: the message must be constructible from
  // the repository. If not, register the request variables and hold.
  if (hooks_.can_send && !hooks_.can_send(message)) {
    if (hooks_.request_missing) hooks_.request_missing(message);
    return FireResult::kNotEnabled;
  }
  take_edge(*edge, now);
  return in_error() ? FireResult::kError : FireResult::kFired;
}

int Interpreter::poll(Instant now) {
  int taken = 0;
  constexpr int kMaxChain = 16;  // bound on internal-edge chains per poll
  while (taken < kMaxChain) {
    if (in_error()) break;
    const Edge* edge = unique_enabled(ActionKind::kInternal, Symbol{}, now);
    if (edge == nullptr) break;
    take_edge(*edge, now);
    ++taken;
  }
  return taken;
}

Value Interpreter::read(const std::string& name, Instant now) const {
  Env env{const_cast<Interpreter&>(*this), now};
  return env.get(name);
}

}  // namespace decos::ta
