#include "ta/interval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace decos::ta {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// IEEE multiplication yields NaN for 0 * inf; in the interval domain
/// that product is exactly 0 (the zero endpoint annihilates).
double mul_bound(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}

}  // namespace

std::string Interval::to_string() const {
  if (is_bottom()) return "[]";
  char buf[64];
  std::snprintf(buf, sizeof buf, "[%g, %g]", lo, hi);
  return buf;
}

Interval join(const Interval& a, const Interval& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval meet(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  const Interval m{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  return m.lo > m.hi ? Interval::bottom() : m;
}

Interval add(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  return Interval{a.lo + b.lo, a.hi + b.hi};
}

Interval sub(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  return Interval{a.lo - b.hi, a.hi - b.lo};
}

Interval mul(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  const double p1 = mul_bound(a.lo, b.lo);
  const double p2 = mul_bound(a.lo, b.hi);
  const double p3 = mul_bound(a.hi, b.lo);
  const double p4 = mul_bound(a.hi, b.hi);
  return Interval{std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4})};
}

Interval div(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  // A divisor range touching zero makes the quotient unbounded (the
  // concrete evaluator throws on integer division by zero; the abstract
  // result must cover every non-throwing run).
  if (b.contains(0.0)) return Interval::top();
  const double p1 = a.lo / b.lo;
  const double p2 = a.lo / b.hi;
  const double p3 = a.hi / b.lo;
  const double p4 = a.hi / b.hi;
  return Interval{std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4})};
}

Interval mod(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  // |a mod b| < |b| and the sign follows the dividend.
  const double mag = std::max(std::abs(b.lo), std::abs(b.hi));
  if (!std::isfinite(mag)) return Interval::top();
  Interval out{-mag, mag};
  if (a.lo >= 0.0) out.lo = 0.0;
  if (a.hi <= 0.0) out.hi = 0.0;
  return out;
}

Interval negate(const Interval& a) {
  if (a.is_bottom()) return Interval::bottom();
  return Interval{-a.hi, -a.lo};
}

Interval cmp_lt(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.hi < b.lo) return Interval::of_bool(true);
  if (a.lo >= b.hi) return Interval::of_bool(false);
  return Interval::any_bool();
}

Interval cmp_le(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.hi <= b.lo) return Interval::of_bool(true);
  if (a.lo > b.hi) return Interval::of_bool(false);
  return Interval::any_bool();
}

Interval cmp_eq(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.is_constant() && b.is_constant()) return Interval::of_bool(a.lo == b.lo);
  if (meet(a, b).is_bottom()) return Interval::of_bool(false);
  return Interval::any_bool();
}

Interval logic_and(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.always_false() || b.always_false()) return Interval::of_bool(false);
  if (a.always_true() && b.always_true()) return Interval::of_bool(true);
  return Interval::any_bool();
}

Interval logic_or(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return Interval::bottom();
  if (a.always_true() || b.always_true()) return Interval::of_bool(true);
  if (a.always_false() && b.always_false()) return Interval::of_bool(false);
  return Interval::any_bool();
}

Interval logic_not(const Interval& a) {
  if (a.is_bottom()) return Interval::bottom();
  if (a.always_true()) return Interval::of_bool(false);
  if (a.always_false()) return Interval::of_bool(true);
  return Interval::any_bool();
}

Interval IntervalEnv::call(const std::string& fn, const std::vector<Interval>& args) const {
  if (fn == "abs" && args.size() == 1) {
    const Interval& a = args[0];
    if (a.is_bottom()) return Interval::bottom();
    if (a.lo >= 0.0) return a;
    if (a.hi <= 0.0) return negate(a);
    return Interval{0.0, std::max(-a.lo, a.hi)};
  }
  if (fn == "min" && args.size() == 2) {
    if (args[0].is_bottom() || args[1].is_bottom()) return Interval::bottom();
    return Interval{std::min(args[0].lo, args[1].lo), std::min(args[0].hi, args[1].hi)};
  }
  if (fn == "max" && args.size() == 2) {
    if (args[0].is_bottom() || args[1].is_bottom()) return Interval::bottom();
    return Interval{std::max(args[0].lo, args[1].lo), std::max(args[0].hi, args[1].hi)};
  }
  return Interval::top();
}

}  // namespace decos::ta
