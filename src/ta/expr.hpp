// Expression language for timed-automaton guards, assignments and
// transfer-semantics conversion rules (paper Section IV-B).
//
// Grammar (precedence climbing):
//   expr     := or
//   or       := and ( "||" and )*
//   and      := cmp ( ("&&" | ",") cmp )*          -- the paper's Fig. 6
//                                                     writes conjunction as ','
//   cmp      := add ( ("<"|"<="|">"|">="|"=="|"!=") add )?
//   add      := mul ( ("+"|"-") mul )*
//   mul      := unary ( ("*"|"/"|"%") unary )*
//   unary    := ("!"|"-")? primary
//   primary  := number | string | "true" | "false" | ident
//             | ident "(" args ")" | "(" expr ")"
//   number   := digits [ "." digits ] [ "ns"|"us"|"ms"|"s" ]
//
// Durations written with a unit suffix (e.g. `5ms`) become integer
// nanosecond values, matching the global time base.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ta/interval.hpp"
#include "ta/value.hpp"
#include "util/result.hpp"
#include "util/symbol.hpp"

namespace decos::ta {

/// Name-resolution and function-call interface an expression evaluates
/// against. The timed-automaton interpreter implements this over its
/// clock/state variables and delegates `horizon`/`requ` to the gateway.
///
/// Identifiers are interned at parse time; the Symbol overloads are the
/// hot path (integer-keyed resolution) and default to the string
/// versions so simple environments only implement those.
class Environment {
 public:
  virtual ~Environment() = default;
  /// Value of identifier `name`. Throws SpecError if unknown.
  virtual Value get(const std::string& name) const = 0;
  /// Assign `value` to `name`. Throws SpecError if not assignable.
  virtual void set(const std::string& name, const Value& value) = 0;
  /// Invoke function `name` (e.g. horizon, requ, min, max, abs).
  virtual Value call(const std::string& name, const std::vector<Value>& args) = 0;

  /// Symbol-keyed fast paths used by evaluate(); `sym` is the interned
  /// form of `name`.
  virtual Value get(Symbol sym, const std::string& name) const {
    (void)sym;
    return get(name);
  }
  virtual void set(Symbol sym, const std::string& name, const Value& value) {
    (void)sym;
    set(name, value);
  }
};

/// Static type lattice of the expression language. `kAny` is the top
/// element used when a binding's type cannot be pinned down statically;
/// it never produces a type error.
enum class StaticType { kInt, kReal, kBool, kString, kAny };

std::string static_type_name(StaticType type);

/// Static type of a concrete runtime value.
StaticType static_type_of(const Value& value);

/// Static counterpart of Environment: resolves identifier and call
/// *types* instead of values, so expression trees can be checked before
/// deployment (declint rule DL002).
class TypeEnv {
 public:
  virtual ~TypeEnv() = default;
  /// Type of identifier `name`; failure == unknown identifier.
  virtual Result<StaticType> type_of(const std::string& name) const = 0;
  /// Result type of calling `fn` on arguments of the given types;
  /// failure == unknown function / wrong arity / bad argument type.
  virtual Result<StaticType> type_of_call(const std::string& fn,
                                          const std::vector<StaticType>& args) const = 0;
};

/// Immutable expression AST node.
class Expr {
 public:
  enum class Kind { kLiteral, kIdentifier, kUnary, kBinary, kCall };

  virtual ~Expr() = default;
  virtual Kind kind() const = 0;
  virtual Value evaluate(Environment& env) const = 0;
  virtual std::string to_string() const = 0;

  /// Static type of this expression under `env`, or a type error (e.g.
  /// arithmetic on a string, mismatched call arity). Mirrors exactly the
  /// coercions evaluate() performs at runtime: whatever fails here would
  /// throw SpecError during semantic conversion.
  virtual Result<StaticType> infer_type(const TypeEnv& env) const = 0;

  /// Collect all identifiers referenced (used for validation: which
  /// clocks/parameters a guard depends on).
  virtual void collect_identifiers(std::vector<std::string>& out) const = 0;

  /// Abstract evaluation over value intervals (declint rule DL009): the
  /// concrete evaluate() result always lies inside the returned interval.
  /// Sound default for nodes without a tighter abstraction: top.
  virtual Interval evaluate_interval(const IntervalEnv& env) const;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// A parsed assignment `target := expr` (also accepts `=`).
struct Assignment {
  std::string target;
  ExprPtr value;
  /// Interned form of `target`; filled by the parser, lazily re-derived
  /// for hand-built assignments.
  mutable Symbol target_sym{};

  void apply(Environment& env) const {
    if (!target_sym.valid()) target_sym = intern_symbol(target);
    env.set(target_sym, target, value->evaluate(env));
  }
  std::string to_string() const;
};

/// Parse a single expression. Empty input is invalid.
Result<ExprPtr> parse_expression(std::string_view text);

/// Parse a ';'-separated list of assignments, e.g. "x:=0; n:=n+1".
/// An empty string yields an empty list.
Result<std::vector<Assignment>> parse_assignments(std::string_view text);

/// Assume `predicate` holds and narrow the identifier bindings in `env`
/// accordingly (comparison narrowing over top-level conjunctions, e.g.
/// `v >= 0 && v <= 100` pins v to [0, 100]). Only ever shrinks
/// intervals; shapes it cannot exploit are skipped, which stays sound.
void refine_by_predicate(const Expr& predicate, MapIntervalEnv& env);

}  // namespace decos::ta
