// Interval abstract domain for the expression language.
//
// declint's symbolic pass (rule DL009) evaluates filter predicates and
// transfer-rule updates over *value intervals* instead of concrete
// values: every field of a convertible element starts at the range its
// declared wire type admits, filters narrow the ranges, and a predicate
// whose abstract result is identically false can never admit an
// instance -- the rule or element behind it is statically dead.
//
// The domain is the classic numeric interval lattice over doubles with
// +/-infinity bounds; booleans embed as subsets of {0, 1} (false = [0,0],
// true = [1,1], unknown = [0,1]) which gives three-valued logic for
// free. Strings have no order and evaluate to top. All operations are
// conservative: the concrete result of evaluate() is always contained
// in the abstract result of evaluate_interval().
#pragma once

#include <limits>
#include <map>
#include <string>
#include <vector>

namespace decos::ta {

struct Interval {
  // lo > hi encodes bottom (the empty set -- unreachable code).
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  static Interval top() { return Interval{}; }
  static Interval bottom() { return Interval{1.0, -1.0}; }
  static Interval constant(double v) { return Interval{v, v}; }
  static Interval of_bool(bool b) { return b ? Interval{1.0, 1.0} : Interval{0.0, 0.0}; }
  static Interval any_bool() { return Interval{0.0, 1.0}; }

  bool is_bottom() const { return lo > hi; }
  bool is_top() const {
    return lo == -std::numeric_limits<double>::infinity() &&
           hi == std::numeric_limits<double>::infinity();
  }
  bool is_constant() const { return lo == hi; }
  bool contains(double v) const { return lo <= v && v <= hi; }

  /// Three-valued truth of this interval read as a boolean ({0} = false,
  /// anything excluding 0 = true, mixed = unknown).
  bool always_true() const { return !is_bottom() && !contains(0.0); }
  bool always_false() const { return !is_bottom() && lo == 0.0 && hi == 0.0; }

  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }

  std::string to_string() const;
};

// Lattice operations.
Interval join(const Interval& a, const Interval& b);   // union hull
Interval meet(const Interval& a, const Interval& b);   // intersection

// Conservative arithmetic. Division by an interval containing zero and
// any operation on bottom degrade to top/bottom respectively.
Interval add(const Interval& a, const Interval& b);
Interval sub(const Interval& a, const Interval& b);
Interval mul(const Interval& a, const Interval& b);
Interval div(const Interval& a, const Interval& b);
Interval mod(const Interval& a, const Interval& b);
Interval negate(const Interval& a);

// Comparisons yield boolean intervals ([1,1] when every pair of points
// satisfies the relation, [0,0] when none does, [0,1] otherwise).
Interval cmp_lt(const Interval& a, const Interval& b);
Interval cmp_le(const Interval& a, const Interval& b);
Interval cmp_eq(const Interval& a, const Interval& b);

// Three-valued logic over boolean intervals.
Interval logic_and(const Interval& a, const Interval& b);
Interval logic_or(const Interval& a, const Interval& b);
Interval logic_not(const Interval& a);

/// Name resolution for abstract evaluation: unknown identifiers and
/// functions are top (sound default). The base class implements
/// abs/min/max conservatively; everything else is top.
class IntervalEnv {
 public:
  virtual ~IntervalEnv() = default;
  virtual Interval get(const std::string& name) const = 0;
  virtual Interval call(const std::string& fn, const std::vector<Interval>& args) const;
};

/// Map-backed environment used by the lint passes.
class MapIntervalEnv final : public IntervalEnv {
 public:
  MapIntervalEnv() = default;
  explicit MapIntervalEnv(std::map<std::string, Interval> vars) : vars_{std::move(vars)} {}

  void bind(const std::string& name, Interval v) { vars_[name] = v; }
  bool has(const std::string& name) const { return vars_.count(name) != 0; }

  Interval get(const std::string& name) const override {
    const auto it = vars_.find(name);
    return it == vars_.end() ? Interval::top() : it->second;
  }

  std::map<std::string, Interval>& vars() { return vars_; }
  const std::map<std::string, Interval>& vars() const { return vars_; }

 private:
  std::map<std::string, Interval> vars_;
};

}  // namespace decos::ta
