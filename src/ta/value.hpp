// Dynamically typed values used by the timed-automata expression language
// and by the message model (field values are the same domain: the paper's
// syntactic specification builds messages from integers, floating point
// numbers, booleans, timestamps and strings).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/result.hpp"
#include "util/time.hpp"

namespace decos::ta {

/// A runtime value: integer (also used for timestamps, in ns), real,
/// boolean or string.
class Value {
 public:
  Value() : v_{std::int64_t{0}} {}
  Value(std::int64_t i) : v_{i} {}                    // NOLINT(google-explicit-constructor)
  Value(int i) : v_{std::int64_t{i}} {}               // NOLINT(google-explicit-constructor)
  Value(double d) : v_{d} {}                          // NOLINT(google-explicit-constructor)
  Value(bool b) : v_{b} {}                            // NOLINT(google-explicit-constructor)
  Value(std::string s) : v_{std::move(s)} {}          // NOLINT(google-explicit-constructor)
  Value(Instant t) : v_{t.ns()} {}                    // NOLINT(google-explicit-constructor)
  Value(Duration d) : v_{d.ns()} {}                   // NOLINT(google-explicit-constructor)

  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_real(); }

  /// Numeric coercions; throw SpecError on type mismatch (an expression
  /// type error in a link specification is a configuration fault).
  std::int64_t as_int() const {
    if (is_int()) return std::get<std::int64_t>(v_);
    if (is_real()) return static_cast<std::int64_t>(std::get<double>(v_));
    if (is_bool()) return std::get<bool>(v_) ? 1 : 0;
    throw SpecError("value is not numeric: " + to_string());
  }
  double as_real() const {
    if (is_real()) return std::get<double>(v_);
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
    if (is_bool()) return std::get<bool>(v_) ? 1.0 : 0.0;
    throw SpecError("value is not numeric: " + to_string());
  }
  bool as_bool() const {
    if (is_bool()) return std::get<bool>(v_);
    if (is_int()) return std::get<std::int64_t>(v_) != 0;
    if (is_real()) return std::get<double>(v_) != 0.0;
    throw SpecError("value is not boolean: " + to_string());
  }
  const std::string& as_string() const {
    if (!is_string()) throw SpecError("value is not a string: " + to_string());
    return std::get<std::string>(v_);
  }
  /// In-place mutable string access for zero-allocation decode paths: if
  /// the value already holds a string it is returned as-is (capacity
  /// retained); otherwise the alternative switches to an empty string.
  std::string& mutable_string() {
    if (!is_string()) v_ = std::string{};
    return std::get<std::string>(v_);
  }
  Instant as_instant() const { return Instant::from_ns(as_int()); }
  Duration as_duration() const { return Duration::nanoseconds(as_int()); }

  bool operator==(const Value& o) const {
    if (is_string() || o.is_string()) {
      return is_string() && o.is_string() && std::get<std::string>(v_) == std::get<std::string>(o.v_);
    }
    if (is_real() || o.is_real()) return as_real() == o.as_real();
    if (is_bool() && o.is_bool()) return std::get<bool>(v_) == std::get<bool>(o.v_);
    return as_int() == o.as_int();
  }

  std::string to_string() const;

 private:
  std::variant<std::int64_t, double, bool, std::string> v_;
};

}  // namespace decos::ta
