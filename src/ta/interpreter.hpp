// Runtime interpreter for deterministic timed automata.
//
// One interpreter instance animates one AutomatonSpec inside a gateway
// link (or a test harness). Clock variables advance with global time;
// state variables hold values between edges. The gateway supplies hooks:
//  * can_send(m)     -- Eq.-style m! guard: are all convertible elements
//                       of m available (temporally accurate state images /
//                       non-empty event queues)?
//  * request_missing -- sets the b_req request variables of missing
//                       convertible elements (paper Section IV-A).
//  * resolve/invoke  -- external identifiers (link parameters) and the
//                       horizon()/requ() functions evaluated on the
//                       gateway repository.
//
// All steady-state work is Symbol-keyed: port-interaction labels (m!/m?)
// are matched by interned id, locations are tracked as Symbols, and
// clock/variable resolution hashes a u32 instead of a string. The
// string-taking entry points intern and forward (compat/diagnostics).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ta/automaton.hpp"
#include "util/symbol.hpp"
#include "util/time.hpp"

namespace decos::ta {

/// Outcome of offering an event to the interpreter.
enum class FireResult {
  kFired,       // an edge was taken
  kNotEnabled,  // no matching edge was enabled; state unchanged
  kError,       // the automaton entered (or already was in) the error state
};

/// External hooks wired in by the owning gateway link. All optional; a
/// defaulted hook behaves permissively (can_send = true, unknown
/// identifier = SpecError). Message identities arrive pre-interned.
struct InterpreterHooks {
  std::function<bool(Symbol message)> can_send;
  std::function<void(Symbol message)> request_missing;
  std::function<Value(const std::string& name)> resolve;  // external identifiers
  std::function<Value(const std::string& fn, const std::vector<Value>& args)> invoke;
};

/// Deterministic interpreter over an AutomatonSpec.
class Interpreter {
 public:
  Interpreter(const AutomatonSpec& spec, InterpreterHooks hooks = {});

  const std::string& location() const { return symbol_name(location_); }
  Symbol location_sym() const { return location_; }
  bool in_error() const { return error_.valid() && location_ == error_; }
  const AutomatonSpec& spec() const { return *spec_; }

  /// Reset to the initial location, zero all clocks, restore variable
  /// initial values (the paper's "restart of the gateway service").
  void restart(Instant now);

  /// A message instance of `message` arrived at `now`. Takes the unique
  /// enabled receive edge. If the automaton has an error state and no
  /// receive edge for this message is enabled, the arrival violates the
  /// temporal specification: the automaton moves to the error state and
  /// kError is returned (the caller must then discard the message).
  FireResult on_receive(Symbol message, Instant now);
  FireResult on_receive(const std::string& message, Instant now) {
    return on_receive(intern_symbol(message), now);
  }

  /// Attempt to emit `message` at `now`: the unique send edge must have a
  /// true guard AND can_send(message) must hold. When the guard holds but
  /// the elements are missing, request_missing(message) is called and
  /// kNotEnabled returned.
  FireResult try_send(Symbol message, Instant now);
  FireResult try_send(const std::string& message, Instant now) {
    return try_send(intern_symbol(message), now);
  }

  /// Fire enabled internal (no-port-interaction) edges, e.g. timeout
  /// transitions into the error state. Returns the number of edges taken
  /// (bounded to avoid livelock on cyclic internal edges).
  int poll(Instant now);

  /// Read a variable or clock value as currently visible at `now`
  /// (exposed for tests and diagnostics).
  Value read(const std::string& name, Instant now) const;

  /// Number of edges taken since construction/restart.
  std::uint64_t transitions() const { return transitions_; }

 private:
  struct ClockState {
    Duration base = Duration::zero();  // value at last assignment
    Instant set_at;                    // when it was assigned
  };

  class Env;  // Environment adaptor bound to (this, now)

  bool guard_holds(const Edge& edge, Instant now);
  void take_edge(const Edge& edge, Instant now);
  const Edge* unique_enabled(ActionKind action, Symbol message, Instant now);

  const AutomatonSpec* spec_;
  InterpreterHooks hooks_;
  Symbol location_;
  Symbol error_;  // cached spec error location (invalid = none)
  std::unordered_map<Symbol, ClockState, SymbolHash> clocks_;
  std::unordered_map<Symbol, Value, SymbolHash> variables_;
  std::uint64_t transitions_ = 0;
};

}  // namespace decos::ta
