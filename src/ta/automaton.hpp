// Deterministic timed automata (paper Section IV-B.2).
//
// The temporal part of a link specification is a set of deterministic
// timed automata that express the protocol for interacting with the ports
// of a virtual network: control patterns, message-exchange sequences, and
// temporal constraints. Edges carry guard labels, assignment labels and
// port-interaction labels (`m!` transmission, `m?` reception). A special
// *error* location models violations of the temporal specification and
// gives the gateway the hook for error handling (blocking the offending
// message and optionally restarting the service).
#pragma once

#include <string>
#include <vector>

#include "ta/expr.hpp"
#include "util/result.hpp"
#include "util/symbol.hpp"

namespace decos::ta {

/// Port-interaction label on an edge.
enum class ActionKind {
  kInternal,  // no port interaction (time-/condition-triggered edge)
  kSend,      // m! -- construct message m from the repository and emit it
  kReceive,   // m? -- consume an incoming message m and dissect it
};

/// One edge of a timed automaton.
struct Edge {
  std::string source;
  std::string target;
  ActionKind action = ActionKind::kInternal;
  std::string message;        // for kSend / kReceive
  ExprPtr guard;              // nullptr == always enabled
  std::vector<Assignment> assignments;

  // Interned forms, filled by AutomatonSpec::add_edge. The interpreter
  // matches edges and tracks locations exclusively by these ids; the
  // strings above remain the authoring/diagnostic surface.
  Symbol source_sym{};
  Symbol target_sym{};
  Symbol message_sym{};

  std::string label() const;
};

/// Static description of a deterministic timed automaton. Built either
/// programmatically or from the XML link specification.
class AutomatonSpec {
 public:
  explicit AutomatonSpec(std::string name = {}) : name_{std::move(name)} {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Declare a location. The first declared location is the default
  /// initial location unless set_initial() is called.
  void add_location(const std::string& location);
  void set_initial(const std::string& location) { initial_ = location; }
  void set_error(const std::string& location) { error_ = location; }

  /// Declare a clock variable (advances with time, resettable).
  void add_clock(const std::string& clock) { clocks_.push_back(clock); }
  /// Declare a state variable with an initial value (does not advance).
  void add_variable(const std::string& name, Value initial) {
    variables_.emplace_back(name, std::move(initial));
  }

  void add_edge(Edge edge) {
    edge.source_sym = intern_symbol(edge.source);
    edge.target_sym = intern_symbol(edge.target);
    edge.message_sym = intern_symbol(edge.message);
    edges_.push_back(std::move(edge));
  }

  const std::vector<std::string>& locations() const { return locations_; }
  const std::string& initial() const { return initial_; }
  const std::string& error() const { return error_; }
  const std::vector<std::string>& clocks() const { return clocks_; }
  const std::vector<std::pair<std::string, Value>>& variables() const { return variables_; }
  const std::vector<Edge>& edges() const { return edges_; }

  bool has_location(const std::string& location) const;

  /// Interned initial/error locations (invalid Symbol when unset).
  Symbol initial_sym() const { return intern_symbol(initial_); }
  Symbol error_sym() const { return intern_symbol(error_); }

  /// Structural validation: initial/error locations exist, every edge
  /// endpoint exists, send/receive edges name a message.
  Status validate() const;

 private:
  std::string name_;
  std::vector<std::string> locations_;
  std::string initial_;
  std::string error_;
  std::vector<std::string> clocks_;
  std::vector<std::pair<std::string, Value>> variables_;
  std::vector<Edge> edges_;
};

/// Convenience: the degenerate automaton accepting message `m` at any
/// time (used when a port spec supplies period/interarrival constraints
/// directly instead of a hand-written automaton).
AutomatonSpec make_unconstrained_receive(const std::string& automaton_name,
                                         const std::string& message);

/// Automaton enforcing a minimum interarrival time `tmin` and maximum
/// interarrival `tmax` for receptions of `m` (the paper's Fig. 6 shape):
/// an early message (clock < tmin) or a silence longer than tmax drives
/// the automaton into the error state.
AutomatonSpec make_interarrival_receive(const std::string& automaton_name,
                                        const std::string& message, Duration tmin, Duration tmax);

/// Automaton emitting `m` periodically: the m! edge is enabled exactly at
/// multiples of `period` (phase-aligned by the interpreter's poll).
AutomatonSpec make_periodic_send(const std::string& automaton_name, const std::string& message,
                                 Duration period);

/// Automaton whose m! edge is always enabled (event-triggered outputs:
/// emit as soon as the constituting convertible elements are available).
AutomatonSpec make_unconstrained_send(const std::string& automaton_name,
                                      const std::string& message);

}  // namespace decos::ta
