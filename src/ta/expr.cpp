#include "ta/expr.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

namespace decos::ta {
namespace {

// ---------------------------------------------------------------------------
// AST nodes
// ---------------------------------------------------------------------------

class Literal final : public Expr {
 public:
  explicit Literal(Value v) : value_{std::move(v)} {}
  Kind kind() const override { return Kind::kLiteral; }
  Value evaluate(Environment&) const override { return value_; }
  std::string to_string() const override { return value_.to_string(); }
  Result<StaticType> infer_type(const TypeEnv&) const override { return static_type_of(value_); }
  void collect_identifiers(std::vector<std::string>&) const override {}
  Interval evaluate_interval(const IntervalEnv&) const override {
    if (value_.is_int()) return Interval::constant(static_cast<double>(value_.as_int()));
    if (value_.is_real()) return Interval::constant(value_.as_real());
    if (value_.is_bool()) return Interval::of_bool(value_.as_bool());
    return Interval::top();  // strings have no numeric abstraction
  }

 private:
  Value value_;
};

class Identifier final : public Expr {
 public:
  explicit Identifier(std::string name) : name_{std::move(name)}, sym_{intern_symbol(name_)} {}
  Kind kind() const override { return Kind::kIdentifier; }
  Value evaluate(Environment& env) const override { return env.get(sym_, name_); }
  std::string to_string() const override { return name_; }
  Result<StaticType> infer_type(const TypeEnv& env) const override { return env.type_of(name_); }
  void collect_identifiers(std::vector<std::string>& out) const override { out.push_back(name_); }
  Interval evaluate_interval(const IntervalEnv& env) const override { return env.get(name_); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Symbol sym_;  // interned once at parse time: evaluation is id-keyed
};

class Unary final : public Expr {
 public:
  Unary(char op, ExprPtr operand) : op_{op}, operand_{std::move(operand)} {}
  Kind kind() const override { return Kind::kUnary; }
  Value evaluate(Environment& env) const override {
    const Value v = operand_->evaluate(env);
    if (op_ == '!') return Value{!v.as_bool()};
    if (v.is_real()) return Value{-v.as_real()};
    return Value{-v.as_int()};
  }
  std::string to_string() const override { return std::string(1, op_) + operand_->to_string(); }
  Result<StaticType> infer_type(const TypeEnv& env) const override {
    auto t = operand_->infer_type(env);
    if (!t.ok()) return t;
    if (t.value() == StaticType::kString)
      return Result<StaticType>::failure(std::string{"operator '"} + op_ +
                                         "' applied to string operand " + operand_->to_string());
    if (op_ == '!') return StaticType::kBool;
    // Numeric negation; booleans coerce to int (as_int), kAny stays kAny.
    if (t.value() == StaticType::kReal || t.value() == StaticType::kAny) return t.value();
    return StaticType::kInt;
  }
  void collect_identifiers(std::vector<std::string>& out) const override {
    operand_->collect_identifiers(out);
  }
  Interval evaluate_interval(const IntervalEnv& env) const override {
    const Interval v = operand_->evaluate_interval(env);
    return op_ == '!' ? logic_not(v) : negate(v);
  }

 private:
  char op_;
  ExprPtr operand_;
};

enum class BinOp { kAdd, kSub, kMul, kDiv, kMod, kLt, kLe, kGt, kGe, kEq, kNe, kAnd, kOr };

const char* bin_op_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

class Binary final : public Expr {
 public:
  Binary(BinOp op, ExprPtr lhs, ExprPtr rhs) : op_{op}, lhs_{std::move(lhs)}, rhs_{std::move(rhs)} {}
  Kind kind() const override { return Kind::kBinary; }

  Value evaluate(Environment& env) const override {
    // Short-circuit logicals first.
    if (op_ == BinOp::kAnd) return Value{lhs_->evaluate(env).as_bool() && rhs_->evaluate(env).as_bool()};
    if (op_ == BinOp::kOr) return Value{lhs_->evaluate(env).as_bool() || rhs_->evaluate(env).as_bool()};

    const Value a = lhs_->evaluate(env);
    const Value b = rhs_->evaluate(env);
    switch (op_) {
      case BinOp::kEq: return Value{a == b};
      case BinOp::kNe: return Value{!(a == b)};
      default: break;
    }
    if (a.is_real() || b.is_real()) {
      const double x = a.as_real();
      const double y = b.as_real();
      switch (op_) {
        case BinOp::kAdd: return Value{x + y};
        case BinOp::kSub: return Value{x - y};
        case BinOp::kMul: return Value{x * y};
        case BinOp::kDiv: return Value{x / y};
        case BinOp::kMod: return Value{std::fmod(x, y)};
        case BinOp::kLt: return Value{x < y};
        case BinOp::kLe: return Value{x <= y};
        case BinOp::kGt: return Value{x > y};
        case BinOp::kGe: return Value{x >= y};
        default: break;
      }
    } else {
      const std::int64_t x = a.as_int();
      const std::int64_t y = b.as_int();
      switch (op_) {
        case BinOp::kAdd: return Value{x + y};
        case BinOp::kSub: return Value{x - y};
        case BinOp::kMul: return Value{x * y};
        case BinOp::kDiv:
          if (y == 0) throw SpecError("division by zero in expression");
          return Value{x / y};
        case BinOp::kMod:
          if (y == 0) throw SpecError("modulo by zero in expression");
          return Value{x % y};
        case BinOp::kLt: return Value{x < y};
        case BinOp::kLe: return Value{x <= y};
        case BinOp::kGt: return Value{x > y};
        case BinOp::kGe: return Value{x >= y};
        default: break;
      }
    }
    throw SpecError("unsupported binary operation");
  }

  std::string to_string() const override {
    return "(" + lhs_->to_string() + " " + bin_op_name(op_) + " " + rhs_->to_string() + ")";
  }
  Result<StaticType> infer_type(const TypeEnv& env) const override {
    auto lt = lhs_->infer_type(env);
    if (!lt.ok()) return lt;
    auto rt = rhs_->infer_type(env);
    if (!rt.ok()) return rt;
    const StaticType a = lt.value();
    const StaticType b = rt.value();
    const auto is_string = [](StaticType t) { return t == StaticType::kString; };
    const auto mismatch = [&](const char* what) {
      return Result<StaticType>::failure(std::string{what} + " in " + to_string() + " (" +
                                         static_type_name(a) + " " + bin_op_name(op_) + " " +
                                         static_type_name(b) + ")");
    };
    switch (op_) {
      case BinOp::kAnd:
      case BinOp::kOr:
        // as_bool() throws on strings at runtime.
        if (is_string(a) || is_string(b)) return mismatch("logical operator on string operand");
        return StaticType::kBool;
      case BinOp::kEq:
      case BinOp::kNe:
        // Value::operator== silently yields false for string/non-string
        // pairs -- statically that is always a specification mistake.
        if (is_string(a) != is_string(b) && a != StaticType::kAny && b != StaticType::kAny)
          return mismatch("comparison between string and non-string");
        return StaticType::kBool;
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
        // Ordered comparison goes through as_real(), which rejects strings.
        if (is_string(a) || is_string(b)) return mismatch("ordered comparison on string operand");
        return StaticType::kBool;
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kMod:
        if (is_string(a) || is_string(b)) return mismatch("arithmetic on string operand");
        if (a == StaticType::kReal || b == StaticType::kReal) return StaticType::kReal;
        if (a == StaticType::kAny || b == StaticType::kAny) return StaticType::kAny;
        return StaticType::kInt;
    }
    return StaticType::kAny;
  }
  void collect_identifiers(std::vector<std::string>& out) const override {
    lhs_->collect_identifiers(out);
    rhs_->collect_identifiers(out);
  }

  Interval evaluate_interval(const IntervalEnv& env) const override {
    const Interval a = lhs_->evaluate_interval(env);
    const Interval b = rhs_->evaluate_interval(env);
    switch (op_) {
      case BinOp::kAdd: return add(a, b);
      case BinOp::kSub: return sub(a, b);
      case BinOp::kMul: return mul(a, b);
      case BinOp::kDiv: return div(a, b);
      case BinOp::kMod: return mod(a, b);
      case BinOp::kLt: return cmp_lt(a, b);
      case BinOp::kLe: return cmp_le(a, b);
      case BinOp::kGt: return cmp_lt(b, a);
      case BinOp::kGe: return cmp_le(b, a);
      case BinOp::kEq: return cmp_eq(a, b);
      case BinOp::kNe: return logic_not(cmp_eq(a, b));
      case BinOp::kAnd: return logic_and(a, b);
      case BinOp::kOr: return logic_or(a, b);
    }
    return Interval::top();
  }

  BinOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  BinOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class Call final : public Expr {
 public:
  Call(std::string fn, std::vector<ExprPtr> args) : fn_{std::move(fn)}, args_{std::move(args)} {}
  Kind kind() const override { return Kind::kCall; }
  Value evaluate(Environment& env) const override {
    std::vector<Value> values;
    values.reserve(args_.size());
    for (const auto& a : args_) values.push_back(a->evaluate(env));
    return env.call(fn_, values);
  }
  std::string to_string() const override {
    std::string s = fn_ + "(";
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (i) s += ", ";
      s += args_[i]->to_string();
    }
    return s + ")";
  }
  Result<StaticType> infer_type(const TypeEnv& env) const override {
    std::vector<StaticType> types;
    types.reserve(args_.size());
    for (const auto& a : args_) {
      auto t = a->infer_type(env);
      if (!t.ok()) return t;
      types.push_back(t.value());
    }
    return env.type_of_call(fn_, types);
  }
  void collect_identifiers(std::vector<std::string>& out) const override {
    for (const auto& a : args_) a->collect_identifiers(out);
  }
  Interval evaluate_interval(const IntervalEnv& env) const override {
    std::vector<Interval> values;
    values.reserve(args_.size());
    for (const auto& a : args_) values.push_back(a->evaluate_interval(env));
    return env.call(fn_, values);
  }

 private:
  std::string fn_;
  std::vector<ExprPtr> args_;
};

// ---------------------------------------------------------------------------
// Lexer + parser (precedence climbing)
// ---------------------------------------------------------------------------

struct Token {
  enum class Type { kNumber, kString, kIdent, kOp, kEnd };
  Type type = Type::kEnd;
  std::string text;
  Value number;  // for kNumber
  int column = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view in) : in_{in} {}

  Result<Token> next() {
    skip_ws();
    Token t;
    t.column = static_cast<int>(pos_) + 1;
    if (pos_ >= in_.size()) return t;  // kEnd
    const char c = in_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < in_.size() && std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
      return lex_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      t.type = Token::Type::kIdent;
      while (pos_ < in_.size() &&
             (std::isalnum(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '_')) {
        t.text.push_back(in_[pos_++]);
      }
      return t;
    }
    if (c == '"' || c == '\'') {
      ++pos_;
      t.type = Token::Type::kString;
      while (pos_ < in_.size() && in_[pos_] != c) t.text.push_back(in_[pos_++]);
      if (pos_ >= in_.size()) return Error{"unterminated string literal", 0, t.column};
      ++pos_;
      return t;
    }
    // Operators (longest match first).
    static constexpr std::string_view kTwoChar[] = {"<=", ">=", "==", "!=", "&&", "||", ":="};
    for (auto op : kTwoChar) {
      if (in_.substr(pos_, 2) == op) {
        t.type = Token::Type::kOp;
        t.text = std::string{op};
        pos_ += 2;
        return t;
      }
    }
    if (std::string_view{"+-*/%<>!(),=;"}.find(c) != std::string_view::npos) {
      t.type = Token::Type::kOp;
      t.text = std::string(1, c);
      ++pos_;
      return t;
    }
    return Error{std::string{"unexpected character '"} + c + "' in expression", 0, t.column};
  }

 private:
  void skip_ws() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) ++pos_;
  }

  Result<Token> lex_number() {
    Token t;
    t.type = Token::Type::kNumber;
    t.column = static_cast<int>(pos_) + 1;
    std::string digits;
    bool real = false;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '.')) {
      if (in_[pos_] == '.') real = true;
      digits.push_back(in_[pos_++]);
    }
    // Optional time-unit suffix.
    std::string suffix;
    while (pos_ < in_.size() && std::isalpha(static_cast<unsigned char>(in_[pos_])) &&
           suffix.size() < 2) {
      suffix.push_back(in_[pos_]);
      ++pos_;
    }
    std::int64_t scale = 0;
    if (suffix == "ns") scale = 1;
    else if (suffix == "us") scale = 1'000;
    else if (suffix == "ms") scale = 1'000'000;
    else if (suffix == "s") scale = 1'000'000'000;
    else if (!suffix.empty()) {
      return Error{"unknown numeric suffix '" + suffix + "'", 0, t.column};
    }
    // std::stod/stoll throw on overflow-length digit runs; numeric junk
    // in a specification must surface as a parse error instead.
    try {
      if (scale != 0) {
        // The scaled double must be range-checked before the integer
        // cast: casting an out-of-range double to int64 is UB, and
        // std::stod("1e300") does not throw.
        const double scaled = std::stod(digits) * static_cast<double>(scale);
        if (!(scaled >= static_cast<double>(std::numeric_limits<std::int64_t>::min()) &&
              scaled < static_cast<double>(std::numeric_limits<std::int64_t>::max())))
          return Error{"duration literal out of range: '" + digits + suffix + "'", 0, t.column};
        t.number = Value{static_cast<std::int64_t>(scaled)};
      } else if (real) {
        t.number = Value{std::stod(digits)};
      } else {
        t.number = Value{static_cast<std::int64_t>(std::stoll(digits))};
      }
    } catch (const std::exception&) {
      return Error{"numeric literal out of range: '" + digits + "'", 0, t.column};
    }
    return t;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

class ExprParser {
 public:
  explicit ExprParser(std::string_view in) : lexer_{in} {}

  Result<ExprPtr> parse_full() {
    if (auto st = advance(); !st.ok()) return st.error();
    auto e = parse_or();
    if (!e.ok()) return e;
    if (cur_.type != Token::Type::kEnd)
      return fail("trailing input after expression: '" + cur_.text + "'");
    return e;
  }

  Result<std::vector<Assignment>> parse_assignment_list() {
    std::vector<Assignment> out;
    comma_as_and_ = false;  // ',' separates assignments here, not conjuncts
    if (auto st = advance(); !st.ok()) return st.error();
    while (cur_.type != Token::Type::kEnd) {
      if (cur_.type != Token::Type::kIdent) return fail("expected assignment target");
      Assignment a;
      a.target = cur_.text;
      a.target_sym = intern_symbol(a.target);
      if (auto st = advance(); !st.ok()) return st.error();
      if (!is_op(":=") && !is_op("=")) return fail("expected ':=' in assignment");
      if (auto st = advance(); !st.ok()) return st.error();
      auto e = parse_or();
      if (!e.ok()) return e.error();
      a.value = e.value();
      out.push_back(std::move(a));
      if (is_op(";") || is_op(",")) {
        if (auto st = advance(); !st.ok()) return st.error();
      } else if (cur_.type != Token::Type::kEnd) {
        return fail("expected ';' between assignments");
      }
    }
    return out;
  }

 private:
  Error fail(std::string msg) const { return Error{std::move(msg), 0, cur_.column}; }
  bool is_op(std::string_view op) const {
    return cur_.type == Token::Type::kOp && cur_.text == op;
  }

  Status advance() {
    auto t = lexer_.next();
    if (!t.ok()) return t.error();
    cur_ = t.value();
    return Status::success();
  }

  Result<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    ExprPtr node = lhs.value();
    while (is_op("||")) {
      if (auto st = advance(); !st.ok()) return st.error();
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      node = std::make_shared<Binary>(BinOp::kOr, node, rhs.value());
    }
    return node;
  }

  Result<ExprPtr> parse_and() {
    auto lhs = parse_cmp();
    if (!lhs.ok()) return lhs;
    ExprPtr node = lhs.value();
    // ',' is conjunction in the paper's guard notation (Fig. 6) -- but only
    // at guard top level, never inside parentheses or call arguments.
    while (is_op("&&") || (comma_as_and_ && paren_depth_ == 0 && is_op(","))) {
      if (auto st = advance(); !st.ok()) return st.error();
      auto rhs = parse_cmp();
      if (!rhs.ok()) return rhs;
      node = std::make_shared<Binary>(BinOp::kAnd, node, rhs.value());
    }
    return node;
  }

  Result<ExprPtr> parse_cmp() {
    auto lhs = parse_add();
    if (!lhs.ok()) return lhs;
    ExprPtr node = lhs.value();
    static const std::pair<std::string_view, BinOp> kOps[] = {
        {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"==", BinOp::kEq},
        {"!=", BinOp::kNe}, {"<", BinOp::kLt},  {">", BinOp::kGt},
        {"=", BinOp::kEq},  // single '=' as equality, per the paper's notation
    };
    for (const auto& [text, op] : kOps) {
      if (is_op(text)) {
        if (auto st = advance(); !st.ok()) return st.error();
        auto rhs = parse_add();
        if (!rhs.ok()) return rhs;
        return ExprPtr{std::make_shared<Binary>(op, node, rhs.value())};
      }
    }
    return node;
  }

  Result<ExprPtr> parse_add() {
    auto lhs = parse_mul();
    if (!lhs.ok()) return lhs;
    ExprPtr node = lhs.value();
    while (is_op("+") || is_op("-")) {
      const BinOp op = cur_.text == "+" ? BinOp::kAdd : BinOp::kSub;
      if (auto st = advance(); !st.ok()) return st.error();
      auto rhs = parse_mul();
      if (!rhs.ok()) return rhs;
      node = std::make_shared<Binary>(op, node, rhs.value());
    }
    return node;
  }

  Result<ExprPtr> parse_mul() {
    auto lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    ExprPtr node = lhs.value();
    while (is_op("*") || is_op("/") || is_op("%")) {
      const BinOp op = cur_.text == "*" ? BinOp::kMul : (cur_.text == "/" ? BinOp::kDiv : BinOp::kMod);
      if (auto st = advance(); !st.ok()) return st.error();
      auto rhs = parse_unary();
      if (!rhs.ok()) return rhs;
      node = std::make_shared<Binary>(op, node, rhs.value());
    }
    return node;
  }

  Result<ExprPtr> parse_unary() {
    if (is_op("!") || is_op("-")) {
      const char op = cur_.text[0];
      if (auto st = advance(); !st.ok()) return st.error();
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      return ExprPtr{std::make_shared<Unary>(op, operand.value())};
    }
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    if (cur_.type == Token::Type::kNumber) {
      auto node = std::make_shared<Literal>(cur_.number);
      if (auto st = advance(); !st.ok()) return st.error();
      return ExprPtr{node};
    }
    if (cur_.type == Token::Type::kString) {
      auto node = std::make_shared<Literal>(Value{cur_.text});
      if (auto st = advance(); !st.ok()) return st.error();
      return ExprPtr{node};
    }
    if (cur_.type == Token::Type::kIdent) {
      const std::string name = cur_.text;
      if (auto st = advance(); !st.ok()) return st.error();
      if (name == "true") return ExprPtr{std::make_shared<Literal>(Value{true})};
      if (name == "false") return ExprPtr{std::make_shared<Literal>(Value{false})};
      if (is_op("(")) {
        if (auto st = advance(); !st.ok()) return st.error();
        ++paren_depth_;
        std::vector<ExprPtr> args;
        if (!is_op(")")) {
          for (;;) {
            auto arg = parse_or();
            if (!arg.ok()) return arg;
            args.push_back(arg.value());
            if (is_op(",")) {
              if (auto st = advance(); !st.ok()) return st.error();
              continue;
            }
            break;
          }
        }
        if (!is_op(")")) return fail("expected ')' after call arguments");
        --paren_depth_;
        if (auto st = advance(); !st.ok()) return st.error();
        return ExprPtr{std::make_shared<Call>(name, std::move(args))};
      }
      return ExprPtr{std::make_shared<Identifier>(name)};
    }
    if (is_op("(")) {
      if (auto st = advance(); !st.ok()) return st.error();
      ++paren_depth_;
      auto inner = parse_or();
      if (!inner.ok()) return inner;
      if (!is_op(")")) return fail("expected ')'");
      --paren_depth_;
      if (auto st = advance(); !st.ok()) return st.error();
      return inner;
    }
    return fail("expected expression");
  }

  Lexer lexer_;
  Token cur_;
  int paren_depth_ = 0;
  bool comma_as_and_ = true;
};

// ---------------------------------------------------------------------------
// Comparison narrowing (refine_by_predicate)
// ---------------------------------------------------------------------------

constexpr double kInf = std::numeric_limits<double>::infinity();

void narrow(MapIntervalEnv& env, const std::string& name, const Interval& by) {
  env.bind(name, meet(env.get(name), by));
}

/// Narrow `ident op bound` assuming it holds. Strict bounds narrow like
/// their non-strict counterparts (sound: only the endpoint stays).
void refine_cmp(MapIntervalEnv& env, const std::string& name, BinOp op, const Interval& bound) {
  if (bound.is_bottom()) return;
  switch (op) {
    case BinOp::kLt:
    case BinOp::kLe: narrow(env, name, Interval{-kInf, bound.hi}); break;
    case BinOp::kGt:
    case BinOp::kGe: narrow(env, name, Interval{bound.lo, kInf}); break;
    case BinOp::kEq: narrow(env, name, bound); break;
    default: break;
  }
}

BinOp mirror_cmp(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;
  }
}

void refine_true(const Expr& e, MapIntervalEnv& env) {
  const auto* bin = dynamic_cast<const Binary*>(&e);
  if (bin == nullptr) return;
  if (bin->op() == BinOp::kAnd) {
    refine_true(*bin->lhs(), env);
    refine_true(*bin->rhs(), env);
    return;
  }
  // `x op rhs` / `lhs op x`: evaluate the non-identifier side under the
  // current bindings and narrow the identifier.
  const auto* lid = dynamic_cast<const Identifier*>(bin->lhs().get());
  const auto* rid = dynamic_cast<const Identifier*>(bin->rhs().get());
  if (lid != nullptr)
    refine_cmp(env, lid->name(), bin->op(), bin->rhs()->evaluate_interval(env));
  if (rid != nullptr)
    refine_cmp(env, rid->name(), mirror_cmp(bin->op()), bin->lhs()->evaluate_interval(env));
}

}  // namespace

Interval Expr::evaluate_interval(const IntervalEnv&) const { return Interval::top(); }

void refine_by_predicate(const Expr& predicate, MapIntervalEnv& env) {
  refine_true(predicate, env);
}

std::string Value::to_string() const {
  if (is_int()) return std::to_string(std::get<std::int64_t>(v_));
  if (is_real()) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%g", std::get<double>(v_));
    // Keep realness through a print/parse round trip: "4" would reparse
    // as an integer and change division semantics.
    std::string s{buf};
    if (s.find_first_of(".eE") == std::string::npos) s += ".0";
    return s;
  }
  if (is_bool()) return std::get<bool>(v_) ? "true" : "false";
  return "\"" + std::get<std::string>(v_) + "\"";
}

std::string Assignment::to_string() const { return target + " := " + value->to_string(); }

std::string static_type_name(StaticType type) {
  switch (type) {
    case StaticType::kInt: return "int";
    case StaticType::kReal: return "real";
    case StaticType::kBool: return "bool";
    case StaticType::kString: return "string";
    case StaticType::kAny: return "any";
  }
  return "?";
}

StaticType static_type_of(const Value& value) {
  if (value.is_real()) return StaticType::kReal;
  if (value.is_bool()) return StaticType::kBool;
  if (value.is_string()) return StaticType::kString;
  return StaticType::kInt;
}

Result<ExprPtr> parse_expression(std::string_view text) {
  return ExprParser{text}.parse_full();
}

Result<std::vector<Assignment>> parse_assignments(std::string_view text) {
  return ExprParser{text}.parse_assignment_list();
}

}  // namespace decos::ta
