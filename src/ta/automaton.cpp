#include "ta/automaton.hpp"

#include <algorithm>

namespace decos::ta {

std::string Edge::label() const {
  std::string s = source + " -> " + target;
  if (action == ActionKind::kSend) s += " [" + message + "!]";
  if (action == ActionKind::kReceive) s += " [" + message + "?]";
  if (guard) s += " guard(" + guard->to_string() + ")";
  return s;
}

void AutomatonSpec::add_location(const std::string& location) {
  if (!has_location(location)) locations_.push_back(location);
  if (initial_.empty()) initial_ = location;
}

bool AutomatonSpec::has_location(const std::string& location) const {
  return std::find(locations_.begin(), locations_.end(), location) != locations_.end();
}

Status AutomatonSpec::validate() const {
  if (locations_.empty()) return Status::failure("automaton '" + name_ + "' has no locations");
  if (!has_location(initial_))
    return Status::failure("automaton '" + name_ + "': unknown initial location '" + initial_ + "'");
  if (!error_.empty() && !has_location(error_))
    return Status::failure("automaton '" + name_ + "': unknown error location '" + error_ + "'");
  for (const auto& e : edges_) {
    if (!has_location(e.source))
      return Status::failure("automaton '" + name_ + "': unknown edge source '" + e.source + "'");
    if (!has_location(e.target))
      return Status::failure("automaton '" + name_ + "': unknown edge target '" + e.target + "'");
    if (e.action != ActionKind::kInternal && e.message.empty())
      return Status::failure("automaton '" + name_ + "': port-interaction edge without message");
  }
  return Status::success();
}

AutomatonSpec make_unconstrained_receive(const std::string& automaton_name,
                                         const std::string& message) {
  AutomatonSpec spec{automaton_name};
  spec.add_location("run");
  Edge e;
  e.source = "run";
  e.target = "run";
  e.action = ActionKind::kReceive;
  e.message = message;
  spec.add_edge(std::move(e));
  return spec;
}

AutomatonSpec make_interarrival_receive(const std::string& automaton_name,
                                        const std::string& message, Duration tmin, Duration tmax) {
  AutomatonSpec spec{automaton_name};
  spec.add_location("wait");
  spec.add_location("error");
  spec.set_error("error");
  spec.add_clock("x");
  spec.add_variable("n", Value{std::int64_t{0}});

  const std::string tmin_ns = std::to_string(tmin.ns());
  const std::string tmax_ns = std::to_string(tmax.ns());

  // Reception within the window (first message always accepted).
  Edge ok;
  ok.source = "wait";
  ok.target = "wait";
  ok.action = ActionKind::kReceive;
  ok.message = message;
  ok.guard = parse_expression("n == 0 || (x >= " + tmin_ns + " && x <= " + tmax_ns + ")").value();
  ok.assignments = parse_assignments("x := 0; n := n + 1").value();
  spec.add_edge(std::move(ok));

  // Early reception: explicit violation edge into the error state.
  Edge early;
  early.source = "wait";
  early.target = "error";
  early.action = ActionKind::kReceive;
  early.message = message;
  early.guard = parse_expression("n > 0 && x < " + tmin_ns).value();
  spec.add_edge(std::move(early));

  // Silence beyond tmax: time-triggered violation, detected by poll().
  Edge timeout;
  timeout.source = "wait";
  timeout.target = "error";
  timeout.action = ActionKind::kInternal;
  timeout.guard = parse_expression("n > 0 && x > " + tmax_ns).value();
  spec.add_edge(std::move(timeout));

  return spec;
}

AutomatonSpec make_unconstrained_send(const std::string& automaton_name,
                                      const std::string& message) {
  AutomatonSpec spec{automaton_name};
  spec.add_location("run");
  Edge e;
  e.source = "run";
  e.target = "run";
  e.action = ActionKind::kSend;
  e.message = message;
  spec.add_edge(std::move(e));
  return spec;
}

AutomatonSpec make_periodic_send(const std::string& automaton_name, const std::string& message,
                                 Duration period) {
  AutomatonSpec spec{automaton_name};
  spec.add_location("run");
  spec.add_clock("x");
  spec.add_variable("first", Value{true});

  Edge e;
  e.source = "run";
  e.target = "run";
  e.action = ActionKind::kSend;
  e.message = message;
  e.guard = parse_expression("first || x >= " + std::to_string(period.ns())).value();
  e.assignments = parse_assignments("x := 0; first := false").value();
  spec.add_edge(std::move(e));
  return spec;
}

}  // namespace decos::ta
