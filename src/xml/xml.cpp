#include "xml/xml.hpp"

#include <cctype>

namespace decos::xml {
namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' || c == '-' ||
         c == '.';
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string{s.substr(b, e - b)};
}

/// Recursive-descent XML parser over a string_view with position tracking.
class Parser {
 public:
  explicit Parser(std::string_view input) : in_{input} {}

  Result<Document> parse_document() {
    skip_prolog();
    if (at_end()) return fail("document has no root element");
    auto root = std::make_unique<Element>();
    if (auto st = parse_element(*root); !st.ok()) return st.error();
    skip_misc();
    if (!at_end()) return fail("trailing content after root element");
    return Document{std::move(root)};
  }

 private:
  bool at_end() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  char peek(std::size_t ahead) const {
    return pos_ + ahead < in_.size() ? in_[pos_ + ahead] : '\0';
  }
  bool looking_at(std::string_view s) const { return in_.substr(pos_, s.size()) == s; }

  void advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  void advance(std::size_t n) {
    for (std::size_t i = 0; i < n && !at_end(); ++i) advance();
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  Error fail(std::string message) const { return Error{std::move(message), line_, col_}; }

  /// Skip the XML declaration, comments, PIs and whitespace before/after
  /// the root element.
  void skip_prolog() { skip_misc(); }
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (looking_at("<?")) {
        while (!at_end() && !looking_at("?>")) advance();
        advance(2);
      } else if (looking_at("<!--")) {
        while (!at_end() && !looking_at("-->")) advance();
        advance(3);
      } else if (looking_at("<!")) {  // DOCTYPE etc. -- skip to '>'
        while (!at_end() && peek() != '>') advance();
        advance(1);
      } else {
        return;
      }
    }
  }

  Result<std::string> parse_name() {
    if (at_end() || !is_name_start(peek())) return fail("expected name");
    std::string name;
    while (!at_end() && is_name_char(peek())) {
      name.push_back(peek());
      advance();
    }
    return name;
  }

  Result<std::string> parse_entity() {
    // positioned at '&'
    std::string ref;
    advance();  // consume '&'
    while (!at_end() && peek() != ';' && ref.size() < 12) {
      ref.push_back(peek());
      advance();
    }
    if (at_end() || peek() != ';') return fail("unterminated entity reference");
    advance();  // consume ';'
    if (ref == "lt") return std::string{"<"};
    if (ref == "gt") return std::string{">"};
    if (ref == "amp") return std::string{"&"};
    if (ref == "quot") return std::string{"\""};
    if (ref == "apos") return std::string{"'"};
    if (!ref.empty() && ref[0] == '#') {
      const int base = (ref.size() > 1 && (ref[1] == 'x' || ref[1] == 'X')) ? 16 : 10;
      const std::string digits = base == 16 ? ref.substr(2) : ref.substr(1);
      char* end = nullptr;
      const long code = std::strtol(digits.c_str(), &end, base);
      if (end == digits.c_str() || *end != '\0' || code <= 0 || code > 0x10FFFF)
        return fail("bad character reference &" + ref + ";");
      // Encode as UTF-8.
      std::string out;
      const auto c = static_cast<unsigned long>(code);
      if (c < 0x80) {
        out.push_back(static_cast<char>(c));
      } else if (c < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (c >> 6)));
        out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
      } else if (c < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (c >> 12)));
        out.push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (c >> 18)));
        out.push_back(static_cast<char>(0x80 | ((c >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (c & 0x3F)));
      }
      return out;
    }
    return fail("unknown entity &" + ref + ";");
  }

  Result<std::string> parse_attribute_value() {
    if (at_end() || (peek() != '"' && peek() != '\'')) return fail("expected quoted value");
    const char quote = peek();
    advance();
    std::string value;
    while (!at_end() && peek() != quote) {
      if (peek() == '&') {
        auto ent = parse_entity();
        if (!ent.ok()) return ent.error();
        value += ent.value();
      } else if (peek() == '<') {
        return fail("'<' not allowed in attribute value");
      } else {
        value.push_back(peek());
        advance();
      }
    }
    if (at_end()) return fail("unterminated attribute value");
    advance();  // closing quote
    return value;
  }

  Status parse_element(Element& out) {
    if (at_end() || peek() != '<') return fail("expected '<'");
    out.set_location(line_, col_);
    advance();
    auto name = parse_name();
    if (!name.ok()) return name.error();
    out.set_name(name.value());

    // Attributes.
    for (;;) {
      skip_ws();
      if (at_end()) return fail("unterminated start tag <" + out.name());
      if (peek() == '>' || looking_at("/>")) break;
      auto key = parse_name();
      if (!key.ok()) return key.error();
      skip_ws();
      if (at_end() || peek() != '=') return fail("expected '=' after attribute " + key.value());
      advance();
      skip_ws();
      auto value = parse_attribute_value();
      if (!value.ok()) return value.error();
      if (out.has_attribute(key.value()))
        return fail("duplicate attribute " + key.value() + " on <" + out.name() + ">");
      out.set_attribute(key.value(), value.value());
    }

    if (looking_at("/>")) {
      advance(2);
      return Status::success();
    }
    advance();  // '>'

    // Content: text, child elements, comments.
    std::string text;
    for (;;) {
      if (at_end()) return fail("unterminated element <" + out.name() + ">");
      if (looking_at("<!--")) {
        while (!at_end() && !looking_at("-->")) advance();
        if (at_end()) return fail("unterminated comment");
        advance(3);
      } else if (looking_at("</")) {
        advance(2);
        auto close = parse_name();
        if (!close.ok()) return close.error();
        if (close.value() != out.name())
          return fail("mismatched end tag </" + close.value() + "> for <" + out.name() + ">");
        skip_ws();
        if (at_end() || peek() != '>') return fail("expected '>' in end tag");
        advance();
        out.set_text(trim(text));
        return Status::success();
      } else if (peek() == '<') {
        auto& child = out.add_child("");
        if (auto st = parse_element(child); !st.ok()) return st;
      } else if (peek() == '&') {
        auto ent = parse_entity();
        if (!ent.ok()) return ent.error();
        text += ent.value();
      } else {
        text.push_back(peek());
        advance();
      }
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

void write_element(const Element& e, std::string& out, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out += indent + "<" + e.name();
  for (const auto& [k, v] : e.attributes()) out += " " + k + "=\"" + escape(v) + "\"";
  const bool empty = e.children().empty() && e.text().empty();
  if (empty) {
    out += "/>\n";
    return;
  }
  out += ">";
  if (!e.text().empty()) out += escape(e.text());
  if (!e.children().empty()) {
    out += "\n";
    for (const auto& child : e.children()) write_element(*child, out, depth + 1);
    out += indent;
  }
  out += "</" + e.name() + ">\n";
}

}  // namespace

bool Element::has_attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_)
    if (k == key) return true;
  return false;
}

const std::string& Element::attribute(std::string_view key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : attributes_)
    if (k == key) return v;
  return kEmpty;
}

std::string Element::attribute_or(std::string_view key, std::string_view fallback) const {
  for (const auto& [k, v] : attributes_)
    if (k == key) return v;
  return std::string{fallback};
}

void Element::set_attribute(std::string key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(key), std::move(value));
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_)
    if (c->name() == name) return c.get();
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_)
    if (c->name() == name) out.push_back(c.get());
  return out;
}

std::string Element::child_text(std::string_view name) const {
  const Element* c = child(name);
  return c ? c->text() : std::string{};
}

Result<Document> parse(std::string_view input) { return Parser{input}.parse_document(); }

std::string write(const Element& root) {
  std::string out = "<?xml version=\"1.0\"?>\n";
  write_element(root, out, 0);
  return out;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace decos::xml
