// Minimal XML document model, parser and writer.
//
// The paper expresses link specifications in XML (Section IV-B, Fig. 6)
// "because of the wide use of XML and the availability of parsers"; the
// reproduction has no external dependencies, so we implement the subset
// the specification format needs: elements, attributes, character data,
// comments, processing instructions/declarations (skipped), and the five
// predefined entities. Namespaces, DTDs and CDATA are out of scope.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace decos::xml {

/// An XML element: name, attributes, child elements and concatenated
/// character data. Children are owned; the tree is move-only in practice
/// but copyable for test convenience.
class Element {
 public:
  Element() = default;
  explicit Element(std::string name) : name_{std::move(name)} {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Source position of this element's start tag ('<'), 1-based. Zero on
  /// elements built programmatically rather than parsed from text.
  int line() const { return line_; }
  int column() const { return column_; }
  void set_location(int line, int column) {
    line_ = line;
    column_ = column;
  }

  /// Concatenated character data directly inside this element (entity
  /// references resolved, surrounding whitespace trimmed).
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // -- attributes ---------------------------------------------------------
  bool has_attribute(std::string_view key) const;
  /// Returns the attribute value or "" if absent.
  const std::string& attribute(std::string_view key) const;
  /// Returns the attribute value or `fallback` if absent.
  std::string attribute_or(std::string_view key, std::string_view fallback) const;
  void set_attribute(std::string key, std::string value);
  const std::vector<std::pair<std::string, std::string>>& attributes() const { return attributes_; }

  // -- children -----------------------------------------------------------
  Element& add_child(std::string name);
  const std::vector<std::unique_ptr<Element>>& children() const { return children_; }

  /// First child with the given element name, or nullptr.
  const Element* child(std::string_view name) const;
  /// All children with the given element name.
  std::vector<const Element*> children_named(std::string_view name) const;

  /// Text of the first child with the given name, or "" if absent.
  std::string child_text(std::string_view name) const;

 private:
  std::string name_;
  int line_ = 0;
  int column_ = 0;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A parsed document owning its root element.
struct Document {
  std::unique_ptr<Element> root;
};

/// Parse a complete XML document from `input`. Errors carry line/column.
Result<Document> parse(std::string_view input);

/// Serialize an element tree back to XML text (stable attribute order,
/// two-space indentation). Round-trips everything parse() accepts.
std::string write(const Element& root);

/// Escape the five predefined entities in character data.
std::string escape(std::string_view raw);

}  // namespace decos::xml
