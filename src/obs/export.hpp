// Trace/metrics exporters and the matching loader.
//
// Two formats:
//  - JSONL dump: one self-describing JSON object per line (meta/span/
//    record/metric). Machine-readable source of truth; decotrace and the
//    CI dead-instrument detector consume it. A dump may contain several
//    cells (one per bench parameter combination), each introduced by a
//    meta line.
//  - Chrome trace-event JSON (catapult / Perfetto "traceEvents" array):
//    one track per emitting entity (node / VN / gateway), complete "X"
//    events per span, so a simulated run can be inspected visually in
//    ui.perfetto.dev or chrome://tracing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/result.hpp"

namespace decos::obs {

/// Streaming JSONL writer. Usage per cell: begin_cell() then any number
/// of add_* calls; everything is written immediately.
class DumpWriter {
 public:
  explicit DumpWriter(std::ostream& out) : out_{out} {}

  void begin_cell(const std::string& label);
  void add_spans(const TraceCollector& collector);
  void add_records(const std::string& source, const TraceRecorder& recorder);
  void add_metrics(const MetricsSnapshot& snapshot);

 private:
  std::ostream& out_;
};

/// One parsed dump cell (spans/records/metrics between two meta lines).
struct DumpCell {
  std::string label;
  std::vector<Span> spans;
  // (source, record) pairs; source names the recorder ("bus", "gw:e6").
  std::vector<std::pair<std::string, TraceRecord>> records;
  MetricsSnapshot metrics;
};

struct Dump {
  std::vector<DumpCell> cells;

  /// All spans across cells (cells are independent runs; trace ids are
  /// made unique by offsetting per cell at load time).
  std::vector<Span> all_spans() const;
  std::vector<std::pair<std::string, TraceRecord>> all_records() const;
  /// Metric union across cells: counters/histograms summed, gauges take
  /// the high-water maximum; `updates` summed (dead-instrument check).
  MetricsSnapshot merged_metrics() const;
};

/// Parse a JSONL dump. Unknown line types are skipped (forward compat).
Result<Dump> load_jsonl(std::istream& in);

/// Write spans in Chrome trace-event format. `records` become instant
/// events on their source's track. Output is byte-deterministic for a
/// given input (golden-file tested).
void write_chrome_trace(std::ostream& out, const std::vector<Span>& spans,
                        const std::vector<std::pair<std::string, TraceRecord>>& records = {});

}  // namespace decos::obs
