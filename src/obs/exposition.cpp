#include "obs/exposition.hpp"

#include <ostream>

namespace decos::obs {

namespace {

void write_label_value(std::ostream& out, std::string_view v) {
  out << '"';
  for (const char c : v) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void write_flow_sample(std::ostream& out, std::string_view family, std::string_view flow,
                       std::int64_t value) {
  out << family << "{flow=";
  write_label_value(out, flow);
  out << "} " << value << "\n";
}

}  // namespace

std::string exposition_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void write_exposition(std::ostream& out, const MetricsSnapshot& metrics,
                      const std::vector<FlowHealth>& flows) {
  for (const MetricValue& v : metrics.entries) {
    const std::string name = "decos_" + exposition_name(v.name);
    switch (v.kind) {
      case InstrumentKind::kCounter:
        out << "# TYPE " << name << "_total counter\n";
        out << name << "_total " << v.value << "\n";
        break;
      case InstrumentKind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << v.value << "\n";
        out << "# TYPE " << name << "_high_water gauge\n";
        out << name << "_high_water " << v.high_water << "\n";
        break;
      case InstrumentKind::kHistogram:
        out << "# TYPE " << name << " summary\n";
        out << name << "{quantile=\"0.5\"} " << v.p50 << "\n";
        out << name << "{quantile=\"0.99\"} " << v.p99 << "\n";
        out << name << "_count " << v.count << "\n";
        out << name << "_sum " << v.sum << "\n";
        if (v.sample_period != 1) {
          // Sampled instrument: 1 in sample_period events is observed.
          // Rates derived from _count must scale; _estimated_count is
          // the pre-scaled figure.
          out << "# TYPE " << name << "_sample_period gauge\n";
          out << name << "_sample_period " << v.sample_period << "\n";
          out << "# TYPE " << name << "_estimated_count gauge\n";
          out << name << "_estimated_count "
              << v.count * static_cast<std::uint64_t>(v.sample_period) << "\n";
        }
        break;
    }
  }

  if (flows.empty()) return;
  out << "# TYPE decos_flow_traces_total counter\n";
  for (const FlowHealth& f : flows)
    write_flow_sample(out, "decos_flow_traces_total", f.flow,
                      static_cast<std::int64_t>(f.traces));
  out << "# TYPE decos_flow_deadline_ns gauge\n";
  for (const FlowHealth& f : flows)
    if (f.deadline_ns >= 0) write_flow_sample(out, "decos_flow_deadline_ns", f.flow, f.deadline_ns);
  out << "# TYPE decos_flow_deadline_miss_total counter\n";
  for (const FlowHealth& f : flows)
    if (f.deadline_ns >= 0)
      write_flow_sample(out, "decos_flow_deadline_miss_total", f.flow,
                        static_cast<std::int64_t>(f.deadline_miss));
  out << "# TYPE decos_flow_bound_ns gauge\n";
  for (const FlowHealth& f : flows)
    if (f.bound_ns >= 0) write_flow_sample(out, "decos_flow_bound_ns", f.flow, f.bound_ns);
  out << "# TYPE decos_flow_bound_miss_total counter\n";
  for (const FlowHealth& f : flows)
    if (f.bound_ns >= 0)
      write_flow_sample(out, "decos_flow_bound_miss_total", f.flow,
                        static_cast<std::int64_t>(f.bound_miss));
  out << "# TYPE decos_flow_latency_ns summary\n";
  for (const FlowHealth& f : flows) {
    for (const auto& [phase, agg] : f.phases) {
      const auto sample = [&](std::string_view quantile, std::int64_t value) {
        out << "decos_flow_latency_ns{flow=";
        write_label_value(out, f.flow);
        out << ",phase=\"" << phase << "\",quantile=\"" << quantile << "\"} " << value << "\n";
      };
      sample("0.5", agg.percentile(0.50));
      sample("0.99", agg.percentile(0.99));
      out << "decos_flow_latency_ns_count{flow=";
      write_label_value(out, f.flow);
      out << ",phase=\"" << phase << "\"} " << agg.n << "\n";
      out << "decos_flow_latency_ns_sum{flow=";
      write_label_value(out, f.flow);
      out << ",phase=\"" << phase << "\"} " << agg.sum_ns << "\n";
    }
  }
}

}  // namespace decos::obs
