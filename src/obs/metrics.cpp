#include "obs/metrics.hpp"

#include <algorithm>

#include "util/result.hpp"

namespace decos::obs {

std::int64_t Histogram::percentile_of(const std::uint64_t* bins, std::uint64_t count,
                                      std::int64_t lo, std::int64_t hi, double p) {
  if (count == 0) return 0;
  if (p <= 0.0) return lo;
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.5);
  std::uint64_t cumulative = 0;
  for (int bin = 0; bin < kBins; ++bin) {
    cumulative += bins[bin];
    if (cumulative >= rank && bins[bin] != 0) {
      // Upper bound of bin i is 2^i - 1; clamp to the observed extremes.
      const std::int64_t upper =
          bin >= 63 ? hi : static_cast<std::int64_t>((std::uint64_t{1} << bin) - 1);
      return std::clamp(upper, lo, hi);
    }
  }
  return hi;
}

std::int64_t Histogram::percentile(double p) const {
  std::uint64_t bins[kBins];
  snapshot_bins(bins);
  return percentile_of(bins, count(), min(), max(), p);
}

MetricsRegistry::Entry& MetricsRegistry::registered(std::string_view name, InstrumentKind kind,
                                                    Determinism determinism) {
  const auto it = index_.find(std::string{name});
  if (it != index_.end()) {
    if (it->second->kind != kind)
      throw SpecError("metric '" + std::string{name} + "' re-registered with a different kind");
    return *it->second;
  }
  entries_.push_back(Entry{std::string{name}, kind, determinism});
  Entry& entry = entries_.back();
  index_[entry.name] = &entry;
  return entry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock{register_mutex_};
  Entry& entry = registered(name, InstrumentKind::kCounter, Determinism::kDeterministic);
  if (entry.counter == nullptr) {
    counters_.emplace_back();
    entry.counter = &counters_.back();
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock{register_mutex_};
  Entry& entry = registered(name, InstrumentKind::kGauge, Determinism::kDeterministic);
  if (entry.gauge == nullptr) {
    gauges_.emplace_back();
    entry.gauge = &gauges_.back();
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Determinism determinism,
                                      std::uint32_t sample_period) {
  std::lock_guard<std::mutex> lock{register_mutex_};
  Entry& entry = registered(name, InstrumentKind::kHistogram, determinism);
  if (entry.histogram == nullptr) {
    histograms_.emplace_back();
    entry.histogram = &histograms_.back();
    entry.sample_period = sample_period == 0 ? 1 : sample_period;
  }
  return *entry.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricValue v;
    v.name = entry.name;
    v.kind = entry.kind;
    v.deterministic = entry.determinism == Determinism::kDeterministic;
    v.sample_period = entry.sample_period;
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        v.value = static_cast<std::int64_t>(entry.counter->value());
        v.updates = entry.counter->value();
        break;
      case InstrumentKind::kGauge:
        v.value = entry.gauge->value();
        v.high_water = entry.gauge->high_water();
        v.updates = entry.gauge->updates();
        break;
      case InstrumentKind::kHistogram:
        v.count = entry.histogram->count();
        v.sum = entry.histogram->sum();
        v.min = entry.histogram->min();
        v.max = entry.histogram->max();
        v.p50 = entry.histogram->percentile(0.50);
        v.p90 = entry.histogram->percentile(0.90);
        v.p99 = entry.histogram->percentile(0.99);
        v.updates = entry.histogram->count();
        break;
    }
    snap.entries.push_back(std::move(v));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& v : entries)
    if (v.name == name) return &v;
  return nullptr;
}

std::vector<std::string> MetricsSnapshot::dead_instruments() const {
  std::vector<std::string> dead;
  for (const MetricValue& v : entries)
    if (v.updates == 0) dead.push_back(v.name);
  return dead;
}

std::string MetricsSnapshot::deterministic_fingerprint() const {
  std::string out;
  for (const MetricValue& v : entries) {
    if (!v.deterministic) continue;
    out += v.name;
    out += '=';
    switch (v.kind) {
      case InstrumentKind::kCounter:
        out += std::to_string(v.value);
        break;
      case InstrumentKind::kGauge:
        out += std::to_string(v.value) + "/hw" + std::to_string(v.high_water);
        break;
      case InstrumentKind::kHistogram:
        out += "n" + std::to_string(v.count) + ",sum" + std::to_string(v.sum) + ",min" +
               std::to_string(v.min) + ",max" + std::to_string(v.max);
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace decos::obs
