// Structured trace recording. Modules emit typed trace records; tests,
// benches and the decotrace CLI query them to measure latencies and
// verify orderings without string parsing.
//
// Lived in sim/trace.hpp before the observability layer existed;
// sim/trace.hpp remains as a compatibility shim. Compared to the
// original flat vector this recorder keeps per-kind indices (count() and
// for_each() no longer scan every record) and supports a bounded
// ring-buffer mode for long runs: set_capacity(n) retains the n newest
// records, per-kind count() stays cumulative, and dropped() reports how
// many records fell out of the window.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace decos::obs {

/// Categories of traced occurrences across the stack.
enum class TraceKind {
  kFrameSent,        // a frame entered the physical bus
  kFrameDelivered,   // a frame was delivered to receivers
  kFrameBlocked,     // bus guardian blocked an out-of-slot transmission
  kMessageSent,      // a job/gateway handed a message to a port
  kMessageReceived,  // a message reached an input port
  kGatewayForwarded, // gateway constructed and emitted a message
  kGatewayBlocked,   // gateway suppressed a message (filter/error)
  kAutomatonError,   // a timed automaton entered its error state
  kFaultInjected,    // fault injector acted
  kClockSync,        // resynchronization applied
  kMembershipChange, // membership vector changed
};

inline constexpr std::size_t kTraceKindCount = 11;

/// Stable lower-case identifier used by the exporters ("frame_sent", ...).
const char* trace_kind_name(TraceKind kind);

/// One trace record. `subject` identifies the entity (message or node
/// name); `detail` carries a kind-specific annotation.
struct TraceRecord {
  Instant when;
  TraceKind kind;
  std::string subject;
  std::string detail;
  std::int64_t value = 0;  // kind-specific numeric payload (e.g. bytes)
  std::uint64_t seq = 0;   // global emission order, survives ring eviction
};

/// Append-only trace sink with per-kind indices and an optional bounded
/// retention window.
class TraceRecorder {
 public:
  void record(Instant when, TraceKind kind, std::string subject, std::string detail = {},
              std::int64_t value = 0) {
    if (!enabled_) return;
    const std::uint64_t seq = next_seq_++;
    records_.push_back(TraceRecord{when, kind, std::move(subject), std::move(detail), value, seq});
    kind_index_[static_cast<std::size_t>(kind)].push_back(seq);
    ++kind_count_[static_cast<std::size_t>(kind)];
    if (capacity_ != 0 && records_.size() > capacity_) {
      records_.pop_front();
      ++dropped_;
    }
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Bound the retention window to the `capacity` newest records
  /// (0 = unbounded). Shrinks immediately if over the new bound.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }
  /// Records evicted from the window so far.
  std::uint64_t dropped() const { return dropped_; }
  /// Records ever emitted (retained + dropped + cleared).
  std::uint64_t total_recorded() const { return next_seq_; }

  /// Retained records, oldest first.
  const std::deque<TraceRecord>& records() const { return records_; }
  void clear();

  /// Cumulative count over the whole run (O(1); unaffected by eviction).
  std::size_t count(TraceKind kind) const {
    return kind_count_[static_cast<std::size_t>(kind)];
  }

  /// Count of *retained* records of `kind` with the given subject.
  std::size_t count(TraceKind kind, const std::string& subject) const {
    std::size_t n = 0;
    for_each(kind, [&](const TraceRecord& r) {
      if (r.subject == subject) ++n;
    });
    return n;
  }

  /// Invoke `fn` for every retained record of the given kind, in order.
  void for_each(TraceKind kind, const std::function<void(const TraceRecord&)>& fn) const;

 private:
  const TraceRecord* by_seq(std::uint64_t seq) const {
    if (records_.empty() || seq < records_.front().seq) return nullptr;
    return &records_[static_cast<std::size_t>(seq - records_.front().seq)];
  }

  bool enabled_ = true;
  std::size_t capacity_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::deque<TraceRecord> records_;
  // Per-kind seq lists; stale entries (evicted/cleared) are skipped on
  // traversal and pruned lazily.
  mutable std::array<std::vector<std::uint64_t>, kTraceKindCount> kind_index_;
  std::array<std::size_t, kTraceKindCount> kind_count_ = {};
};

}  // namespace decos::obs

/// Emit a trace record only when the recorder is enabled. record() itself
/// checks enabled(), but by then the subject/detail std::string arguments
/// have already been constructed (and often formatted); this guard skips
/// argument evaluation entirely on the disabled path. Usage:
///   DECOS_TRACE(trace_, now, TraceKind::kFrameSent, frame.sender, detail, n);
#define DECOS_TRACE(recorder, ...)          \
  do {                                      \
    if ((recorder).enabled()) {             \
      (recorder).record(__VA_ARGS__);       \
    }                                       \
  } while (false)
