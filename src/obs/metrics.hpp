// Metrics registry: counters, gauges and fixed-bin latency histograms
// with zero-allocation hot paths.
//
// Instruments are registered once (allocation happens here, at setup
// time) and cached by reference at the call site; update operations are
// plain integer arithmetic on pre-allocated storage. Defining
// DECOS_OBS_OFF (cmake -DDECOS_OBS_OFF=ON) compiles every update out;
// registration and snapshots keep working so code paths do not fork.
//
// Instruments carry a determinism class: kDeterministic values depend
// only on the simulated run (identical across identical seeded runs,
// enforced by a test); kHostTime values measure wall-clock cost of the
// simulation itself and legitimately differ run to run.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace decos::obs {

#ifdef DECOS_OBS_OFF
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if constexpr (kMetricsEnabled) value_ += n;
  }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge with a high-water mark (e.g. queue depths). Besides
/// the run-wide high water it tracks a resettable per-window high water
/// for the streaming telemetry aggregator (one extra compare per set).
class Gauge {
 public:
  void set(std::int64_t v) {
    if constexpr (kMetricsEnabled) {
      value_ = v;
      if (v > high_water_) high_water_ = v;
      if (v > window_high_) window_high_ = v;
      ++updates_;
    }
  }
  std::int64_t value() const { return value_; }
  std::int64_t high_water() const { return high_water_; }
  /// High water since the last begin_window() (>= value()).
  std::int64_t window_high_water() const { return window_high_; }
  /// Start a new telemetry window: the window high water restarts from
  /// the current value.
  void begin_window() { window_high_ = value_; }
  std::uint64_t updates() const { return updates_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
  std::int64_t window_high_ = 0;
  std::uint64_t updates_ = 0;
};

/// Fixed-bin histogram over non-negative integer samples (latencies in
/// ns, depths, ...). Bin i counts samples whose bit width is i, i.e.
/// sample 0 -> bin 0, [2^(i-1), 2^i) -> bin i: 64 bins cover the full
/// int64 range with ~2x resolution, and observe() is branch-light and
/// allocation-free.
class Histogram {
 public:
  static constexpr int kBins = 64;

  void observe(std::int64_t sample) {
    if constexpr (kMetricsEnabled) {
      const std::uint64_t v = sample < 0 ? 0 : static_cast<std::uint64_t>(sample);
      ++bins_[bit_width(v)];
      ++count_;
      sum_ += static_cast<std::int64_t>(v);
      if (count_ == 1 || static_cast<std::int64_t>(v) < min_) min_ = static_cast<std::int64_t>(v);
      if (static_cast<std::int64_t>(v) > max_) max_ = static_cast<std::int64_t>(v);
    }
  }

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_); }

  /// Upper bound of the bin holding the p-quantile (p in [0,1]), clamped
  /// to the exact observed maximum. 0 when empty.
  std::int64_t percentile(double p) const;

  /// Raw bin counts (kBins entries). The telemetry aggregator keeps a
  /// previous-bins copy per histogram and computes per-window percentiles
  /// from the deltas.
  const std::uint64_t* bins() const { return bins_; }

  /// Percentile over an arbitrary bin array (e.g. a per-window delta):
  /// same arithmetic as percentile(), clamped into [lo, hi].
  static std::int64_t percentile_of(const std::uint64_t* bins, std::uint64_t count,
                                    std::int64_t lo, std::int64_t hi, double p);

 private:
  static int bit_width(std::uint64_t v) {
    int w = 0;
    while (v != 0) {
      v >>= 1;
      ++w;
    }
    return w;
  }

  std::uint64_t bins_[kBins] = {};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Runs-vary-legitimately marker for host-clock instruments.
enum class Determinism { kDeterministic, kHostTime };

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One instrument's values at snapshot time.
struct MetricValue {
  std::string name;
  InstrumentKind kind = InstrumentKind::kCounter;
  bool deterministic = true;
  /// Sampling factor of a sampled instrument (histograms only): one in
  /// `sample_period` events is observed, so rates derived from `count`
  /// must be scaled by it (1 = unsampled).
  std::uint32_t sample_period = 1;
  std::uint64_t updates = 0;    // update count; 0 = dead instrument
  std::int64_t value = 0;       // counter value / gauge value
  std::int64_t high_water = 0;  // gauge only
  // Histogram only:
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
};

/// Point-in-time view over a registry, sorted by instrument name.
struct MetricsSnapshot {
  std::vector<MetricValue> entries;

  const MetricValue* find(std::string_view name) const;
  /// Names of instruments never updated during the run.
  std::vector<std::string> dead_instruments() const;
  /// Canonical "name=value" lines over deterministic instruments only;
  /// equal across identical seeded runs.
  std::string deterministic_fingerprint() const;
};

/// Owns instrument storage (stable addresses; modules cache references).
/// Requesting an existing name of the same kind returns the same
/// instrument; a kind clash throws.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `sample_period` declares a sampled instrument: one in N events is
  /// observed (surfaced in snapshots/exports so readers scale rates).
  Histogram& histogram(std::string_view name, Determinism determinism = Determinism::kDeterministic,
                       std::uint32_t sample_period = 1);

  MetricsSnapshot snapshot() const;
  std::size_t instrument_count() const { return index_.size(); }

  /// Allocation-free read-only view of one registered instrument, in
  /// registration order (the telemetry aggregator folds windows without
  /// building a snapshot). Exactly one instrument pointer is non-null.
  struct InstrumentRef {
    const std::string& name;
    InstrumentKind kind;
    Determinism determinism;
    std::uint32_t sample_period;
    const Counter* counter;
    Gauge* gauge;  // mutable: the aggregator resets per-window high water
    const Histogram* histogram;
  };

  /// Visit instruments in registration order without allocating.
  template <typename F>
  void for_each(F&& fn) {
    for (Entry& e : entries_)
      fn(InstrumentRef{e.name, e.kind, e.determinism, e.sample_period, e.counter, e.gauge,
                       e.histogram});
  }

 private:
  struct Entry {
    std::string name;
    InstrumentKind kind;
    Determinism determinism;
    std::uint32_t sample_period = 1;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  Entry& registered(std::string_view name, InstrumentKind kind, Determinism determinism);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::deque<Entry> entries_;
  std::unordered_map<std::string, Entry*> index_;
};

/// Host-clock scope timer feeding a histogram in nanoseconds; a no-op
/// (not even a clock read) when metrics are compiled out.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) : histogram_{&histogram} {
    if constexpr (kMetricsEnabled) start_ = std::chrono::steady_clock::now();
  }
  /// Pointer form for optionally-bound instruments: null = no-op.
  explicit ScopedTimer(Histogram* histogram) : histogram_{histogram} {
    if constexpr (kMetricsEnabled) {
      if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if constexpr (kMetricsEnabled) {
      if (histogram_ == nullptr) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->observe(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace decos::obs
