// Metrics registry: counters, gauges and fixed-bin latency histograms
// with zero-allocation hot paths.
//
// Instruments are registered once (allocation happens here, at setup
// time) and cached by reference at the call site; update operations are
// plain integer arithmetic on pre-allocated storage. Defining
// DECOS_OBS_OFF (cmake -DDECOS_OBS_OFF=ON) compiles every update out;
// registration and snapshots keep working so code paths do not fork.
//
// Instruments carry a determinism class: kDeterministic values depend
// only on the simulated run (identical across identical seeded runs,
// enforced by a test); kHostTime values measure wall-clock cost of the
// simulation itself and legitimately differ run to run.
//
// Updates are relaxed atomics: the partitioned kernel (S28) fires events
// on TaskPool workers between barriers, and instruments shared across
// partitions (services counters, the dispatch counter) take commutative
// updates from several threads inside one parallel phase. Every shared
// update commutes (add / observe / monotone max), so totals are
// independent of thread interleaving; reads used for deterministic
// artifacts happen only between phases, after the barrier's
// happens-before edge.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace decos::obs {

/// Monotone max over an atomic slot (relaxed CAS loop); the building
/// block for gauge high waters and histogram extremes under concurrent
/// commutative updates.
inline void atomic_raise(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_lower(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

#ifdef DECOS_OBS_OFF
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if constexpr (kMetricsEnabled) value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Single-writer publish of a precomputed total: a plain store, no
  /// RMW. For hot paths that keep their own tally and are never updated
  /// concurrently (the event kernel publishes per-wheel dispatch counts
  /// between parallel phases; see simulator.cpp).
  void publish(std::uint64_t total) {
    if constexpr (kMetricsEnabled) value_.store(total, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge with a high-water mark (e.g. queue depths). Besides
/// the run-wide high water it tracks a resettable per-window high water
/// for the streaming telemetry aggregator (one extra compare per set).
class Gauge {
 public:
  void set(std::int64_t v) {
    if constexpr (kMetricsEnabled) {
      value_.store(v, std::memory_order_relaxed);
      atomic_raise(high_water_, v);
      atomic_raise(window_high_, v);
      updates_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  /// Single-writer set(): same observable state, but plain loads and
  /// stores only -- no RMW on the hot path. Callers guarantee no
  /// concurrent updates (the kernel's queue-depth gauge only moves
  /// between parallel phases).
  void publish(std::int64_t v) {
    if constexpr (kMetricsEnabled) {
      value_.store(v, std::memory_order_relaxed);
      if (v > high_water_.load(std::memory_order_relaxed))
        high_water_.store(v, std::memory_order_relaxed);
      if (v > window_high_.load(std::memory_order_relaxed))
        window_high_.store(v, std::memory_order_relaxed);
      updates_.store(updates_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t high_water() const { return high_water_.load(std::memory_order_relaxed); }
  /// High water since the last begin_window() (>= value()).
  std::int64_t window_high_water() const { return window_high_.load(std::memory_order_relaxed); }
  /// Start a new telemetry window: the window high water restarts from
  /// the current value.
  void begin_window() { window_high_.store(value(), std::memory_order_relaxed); }
  std::uint64_t updates() const { return updates_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
  std::atomic<std::int64_t> window_high_{0};
  std::atomic<std::uint64_t> updates_{0};
};

/// Fixed-bin histogram over non-negative integer samples (latencies in
/// ns, depths, ...). Bin i counts samples whose bit width is i, i.e.
/// sample 0 -> bin 0, [2^(i-1), 2^i) -> bin i: 64 bins cover the full
/// int64 range with ~2x resolution, and observe() is branch-light and
/// allocation-free.
class Histogram {
 public:
  static constexpr int kBins = 64;

  void observe(std::int64_t sample) {
    if constexpr (kMetricsEnabled) {
      const std::uint64_t v = sample < 0 ? 0 : static_cast<std::uint64_t>(sample);
      bins_[bit_width(v)].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(static_cast<std::int64_t>(v), std::memory_order_relaxed);
      atomic_lower(min_, static_cast<std::int64_t>(v));
      atomic_raise(max_, static_cast<std::int64_t>(v));
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    return count() == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(count());
  }

  /// Upper bound of the bin holding the p-quantile (p in [0,1]), clamped
  /// to the exact observed maximum. 0 when empty.
  std::int64_t percentile(double p) const;

  /// Copy the raw bin counts (kBins entries) into `out`. The telemetry
  /// aggregator keeps a previous-bins copy per histogram and computes
  /// per-window percentiles from the deltas.
  void snapshot_bins(std::uint64_t out[kBins]) const {
    for (int i = 0; i < kBins; ++i) out[i] = bins_[i].load(std::memory_order_relaxed);
  }

  /// Percentile over an arbitrary bin array (e.g. a per-window delta):
  /// same arithmetic as percentile(), clamped into [lo, hi].
  static std::int64_t percentile_of(const std::uint64_t* bins, std::uint64_t count,
                                    std::int64_t lo, std::int64_t hi, double p);

 private:
  static int bit_width(std::uint64_t v) {
    int w = 0;
    while (v != 0) {
      v >>= 1;
      ++w;
    }
    return w;
  }

  std::atomic<std::uint64_t> bins_[kBins] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{0};
};

/// Runs-vary-legitimately marker for host-clock instruments.
enum class Determinism { kDeterministic, kHostTime };

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One instrument's values at snapshot time.
struct MetricValue {
  std::string name;
  InstrumentKind kind = InstrumentKind::kCounter;
  bool deterministic = true;
  /// Sampling factor of a sampled instrument (histograms only): one in
  /// `sample_period` events is observed, so rates derived from `count`
  /// must be scaled by it (1 = unsampled).
  std::uint32_t sample_period = 1;
  std::uint64_t updates = 0;    // update count; 0 = dead instrument
  std::int64_t value = 0;       // counter value / gauge value
  std::int64_t high_water = 0;  // gauge only
  // Histogram only:
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
};

/// Point-in-time view over a registry, sorted by instrument name.
struct MetricsSnapshot {
  std::vector<MetricValue> entries;

  const MetricValue* find(std::string_view name) const;
  /// Names of instruments never updated during the run.
  std::vector<std::string> dead_instruments() const;
  /// Canonical "name=value" lines over deterministic instruments only;
  /// equal across identical seeded runs.
  std::string deterministic_fingerprint() const;
};

/// Owns instrument storage (stable addresses; modules cache references).
/// Requesting an existing name of the same kind returns the same
/// instrument; a kind clash throws.
///
/// Registration is mutex-guarded so lazily-registered instruments (first
/// overflow, first clamp) stay memory-safe when the partitioned kernel
/// fires events on several workers. Snapshots and for_each stay
/// unguarded: they run between phases (barrier-ordered), never
/// concurrently with a parallel phase. Note the determinism caveat:
/// registration *order* feeds the telemetry fold, so partitioned setups
/// must pre-register any instrument a parallel phase could create lazily
/// (see Simulator::configure_partitions and VirtualNetwork::
/// preregister_metrics).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `sample_period` declares a sampled instrument: one in N events is
  /// observed (surfaced in snapshots/exports so readers scale rates).
  Histogram& histogram(std::string_view name, Determinism determinism = Determinism::kDeterministic,
                       std::uint32_t sample_period = 1);

  MetricsSnapshot snapshot() const;
  std::size_t instrument_count() const { return index_.size(); }

  /// Allocation-free read-only view of one registered instrument, in
  /// registration order (the telemetry aggregator folds windows without
  /// building a snapshot). Exactly one instrument pointer is non-null.
  struct InstrumentRef {
    const std::string& name;
    InstrumentKind kind;
    Determinism determinism;
    std::uint32_t sample_period;
    const Counter* counter;
    Gauge* gauge;  // mutable: the aggregator resets per-window high water
    const Histogram* histogram;
  };

  /// Visit instruments in registration order without allocating.
  template <typename F>
  void for_each(F&& fn) {
    for (Entry& e : entries_)
      fn(InstrumentRef{e.name, e.kind, e.determinism, e.sample_period, e.counter, e.gauge,
                       e.histogram});
  }

 private:
  struct Entry {
    std::string name;
    InstrumentKind kind;
    Determinism determinism;
    std::uint32_t sample_period = 1;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  Entry& registered(std::string_view name, InstrumentKind kind, Determinism determinism);

  mutable std::mutex register_mutex_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::deque<Entry> entries_;
  std::unordered_map<std::string, Entry*> index_;
};

/// Host-clock scope timer feeding a histogram in nanoseconds; a no-op
/// (not even a clock read) when metrics are compiled out.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) : histogram_{&histogram} {
    if constexpr (kMetricsEnabled) start_ = std::chrono::steady_clock::now();
  }
  /// Pointer form for optionally-bound instruments: null = no-op.
  explicit ScopedTimer(Histogram* histogram) : histogram_{histogram} {
    if constexpr (kMetricsEnabled) {
      if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if constexpr (kMetricsEnabled) {
      if (histogram_ == nullptr) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->observe(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace decos::obs
