#include "obs/telemetry.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <istream>
#include <ostream>

#include "obs/analysis.hpp"
#include "obs/json.hpp"

namespace decos::obs {

namespace {

// Allocation-free append helpers: serialization reuses one std::string
// per aggregator, so the steady state never touches the heap.

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::int64_t host_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void OstreamTelemetrySink::write_line(std::string_view line) {
  out_->write(line.data(), static_cast<std::streamsize>(line.size()));
  out_->put('\n');
}

// ---------------------------------------------------------------------
// WindowAggregator

WindowAggregator::WindowAggregator(MetricsRegistry* metrics, const TraceCollector* collector,
                                   TelemetryConfig config)
    : metrics_{metrics},
      collector_{collector},
      config_{config},
      window_ns_{config.window.ns() > 0 ? config.window.ns() : 1} {
  table_.resize(config_.max_open_traces == 0 ? 1 : config_.max_open_traces);
  flush_order_.reserve(table_.size());
  flows_.reserve(64);
  line_.reserve(8192);
  host_line_.reserve(2048);
  if (collector_ != nullptr) prev_spans_dropped_ = collector_->dropped();
  if (config_.timeline == TelemetryTimeline::kHost) host_epoch_ns_ = host_now_ns();
}

WindowAggregator::~WindowAggregator() {
  if (!flushed_ && sink_ != nullptr) flush();
}

void WindowAggregator::begin_stream(std::string_view label) {
  started_ = true;
  if (sink_ == nullptr) return;
  line_.clear();
  line_ += "{\"type\":\"tmeta\",\"format\":\"decos-telemetry\",\"version\":1,\"label\":";
  append_escaped(line_, label);
  line_ += ",\"window_ns\":";
  append_int(line_, window_ns_);
  line_ += config_.timeline == TelemetryTimeline::kSim ? ",\"timeline\":\"sim\"}"
                                                       : ",\"timeline\":\"host\"}";
  sink_->write_line(line_);
}

WindowAggregator::SloEntry& WindowAggregator::upsert_slo(std::string_view key) {
  for (SloEntry& e : slo_)
    if (e.key == key) return e;
  SloEntry entry;
  entry.key = std::string{key};
  entry.root = entry.key.substr(0, entry.key.find("->"));
  slo_.push_back(std::move(entry));
  return slo_.back();
}

void WindowAggregator::set_deadline(std::string_view flow_key, Duration d_acc) {
  SloEntry& e = upsert_slo(flow_key);
  const std::int64_t ns = d_acc.ns();
  // Several consumers of the same flow: the tightest deadline governs.
  if (e.deadline_ns < 0 || ns < e.deadline_ns) e.deadline_ns = ns;
  for (FlowState& f : flows_) apply_slo(f);
}

void WindowAggregator::set_bound(std::string_view flow_key, std::int64_t bound_ns) {
  upsert_slo(flow_key).bound_ns = bound_ns;
  for (FlowState& f : flows_) apply_slo(f);
}

void WindowAggregator::apply_slo(FlowState& flow) {
  const std::string_view root{flow.key.data(), flow.key.find("->") == std::string::npos
                                                   ? flow.key.size()
                                                   : flow.key.find("->")};
  for (int pass = 0; pass < 2; ++pass) {
    const SloEntry* match = nullptr;
    bool unique = true;
    for (const SloEntry& e : slo_) {
      if (pass == 0 ? e.key != flow.key : e.root != root) continue;
      if (match == nullptr)
        match = &e;
      else
        unique = false;
    }
    if (match == nullptr) continue;
    if (pass == 1 && !unique) return;  // ambiguous root fallback: no SLO
    if (match->deadline_ns >= 0 &&
        (flow.deadline_ns < 0 || match->deadline_ns < flow.deadline_ns))
      flow.deadline_ns = match->deadline_ns;
    if (match->bound_ns >= 0 && flow.bound_ns < 0) flow.bound_ns = match->bound_ns;
    return;  // exact match wins outright; fallback only when none exists
  }
}

WindowAggregator::FlowState& WindowAggregator::flow_for(Symbol root, Symbol last) {
  const std::uint64_t key = (std::uint64_t{root.id()} << 32) | last.id();
  const auto it = flow_index_.find(key);
  if (it != flow_index_.end()) return flows_[it->second];
  FlowState flow;
  flow.key = symbol_name(root);
  if (last != root) {
    flow.key += "->";
    flow.key += symbol_name(last);
  }
  apply_slo(flow);
  flows_.push_back(std::move(flow));
  flow_index_.emplace(key, flows_.size() - 1);
  return flows_.back();
}

void WindowAggregator::PhaseWindow::add(std::int64_t v) {
  if (n == 0) {
    min = max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++n;
  sum += v;
  // Insert into the sorted run-length list (binary search, then shift).
  std::uint32_t lo = 0;
  std::uint32_t hi = distinct;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (value[mid] < v)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo < distinct && value[lo] == v) {
    ++count[lo];
    return;
  }
  if (distinct == kWindowValueCap) {
    ++trunc;  // list full: the sample still widened min/max/sum above
    return;
  }
  for (std::uint32_t i = distinct; i > lo; --i) {
    value[i] = value[i - 1];
    count[i] = count[i - 1];
  }
  value[lo] = v;
  count[lo] = 1;
  ++distinct;
}

void WindowAggregator::on_span(const Span& s) {
  if (flushed_) return;  // stream already closed
  advance_to(config_.timeline == TelemetryTimeline::kSim
                 ? s.end
                 : Instant::from_ns(host_now_ns() - host_epoch_ns_));
  if (s.trace_id == 0) return;

  OpenTrace& slot = table_[s.trace_id % table_.size()];
  OpenTrace* t = nullptr;
  if (slot.trace_id == s.trace_id) {
    t = &slot;
  } else {
    // Only a root span opens a trace; a non-root span without a slot is
    // the tail of a trace already finalized (or evicted) and is dropped.
    if (s.parent_id != 0) return;
    if (slot.trace_id != 0) {
      // Direct-mapped collision: finalize the previous occupant now.
      if (slot.has_pending_deliver)
        finalize(slot, slot.pending_deliver_end, slot.pending_deliver_name, true);
      else
        finalize(slot, slot.last_end, slot.last_name, false);
      ++evicted_total_;
      ++win_evicted_;
    }
    slot = OpenTrace{};
    slot.trace_id = s.trace_id;
    slot.root_name = s.name;
    slot.root_start = s.start;
    ++open_traces_;
    t = &slot;
  }

  t->last_end = s.end;
  t->last_name = s.name;
  // Landmarks mirror analysis.cpp's phase_breakdown: first bus, first
  // dissect, longest repo_wait before the first construct, first
  // construct, and the first deliver after it. A deliver seen before
  // any construct is held pending -- it is the terminal span only if no
  // construct ever arrives (local multicast delivery of a message that
  // a gateway later reconstructs must not end the trace early).
  switch (s.phase) {
    case Phase::kSend:
      break;
    case Phase::kBus:
      if (!t->has_bus) {
        t->has_bus = true;
        t->first_bus_end = s.end;
      }
      break;
    case Phase::kDissect:
      if (!t->has_dissect) {
        t->has_dissect = true;
        t->dissect_end = s.end;
      }
      break;
    case Phase::kRepoWait:
      if (!t->has_construct && (!t->has_repo || s.duration() > t->repo_longest)) {
        t->has_repo = true;
        t->repo_longest = s.duration();
        t->repo_longest_end = s.end;
      }
      break;
    case Phase::kConstruct:
      if (!t->has_construct) {
        t->has_construct = true;
        t->construct_end = s.end;
        t->has_pending_deliver = false;
      }
      break;
    case Phase::kDeliver:
      if (t->has_construct) {
        finalize(*t, s.end, s.name, true);
      } else if (!t->has_pending_deliver) {
        t->has_pending_deliver = true;
        t->pending_deliver_end = s.end;
        t->pending_deliver_name = s.name;
        t->snap_first_bus_end = t->first_bus_end;
        t->snap_dissect_end = t->dissect_end;
        t->snap_repo_longest = t->repo_longest;
        t->snap_repo_longest_end = t->repo_longest_end;
        t->snap_has_bus = t->has_bus;
        t->snap_has_dissect = t->has_dissect;
        t->snap_has_repo = t->has_repo;
      }
      break;
  }
}

void WindowAggregator::finalize(OpenTrace& t, Instant terminal_end, Symbol terminal_name,
                                bool delivered) {
  if (t.has_pending_deliver && !t.has_construct) {
    // The pending deliver is the terminal span: no construct ever
    // arrived, so landmarks folded after it must not count (the
    // post-hoc scan in analysis.cpp breaks at this deliver).
    t.first_bus_end = t.snap_first_bus_end;
    t.dissect_end = t.snap_dissect_end;
    t.repo_longest = t.snap_repo_longest;
    t.repo_longest_end = t.snap_repo_longest_end;
    t.has_bus = t.snap_has_bus;
    t.has_dissect = t.snap_has_dissect;
    t.has_repo = t.snap_has_repo;
  }
  FlowState& flow = flow_for(t.root_name, terminal_name);
  flow.touched = true;
  ++flow.traces;
  ++flow.win_traces;

  const std::int64_t total = (terminal_end - t.root_start).ns();
  flow.phase[5].add(total);  // "total"
  if (t.has_bus) flow.phase[0].add((t.first_bus_end - t.root_start).ns());
  if (t.has_dissect && t.has_bus) flow.phase[1].add((t.dissect_end - t.first_bus_end).ns());
  if (t.has_repo) flow.phase[2].add(t.repo_longest.ns());
  if (t.has_construct && t.has_repo)
    flow.phase[3].add((t.construct_end - t.repo_longest_end).ns());
  if (delivered) {
    if (t.has_construct)
      flow.phase[4].add((terminal_end - t.construct_end).ns());
    else if (t.has_bus)
      flow.phase[4].add((terminal_end - t.first_bus_end).ns());
  }

  // A value is temporally accurate while t < t_update + d_acc, so an
  // end-to-end latency equal to the deadline is already a miss.
  if (flow.deadline_ns >= 0 && total >= flow.deadline_ns) {
    ++flow.deadline_miss;
    ++flow.win_deadline_miss;
  }
  if (flow.bound_ns >= 0 && total > flow.bound_ns) {
    ++flow.bound_miss;
    ++flow.win_bound_miss;
  }
  if (config_.timeline == TelemetryTimeline::kSim &&
      terminal_end.ns() < current_window_ * window_ns_)
    ++win_late_, ++late_total_;

  t.trace_id = 0;
  --open_traces_;
}

void WindowAggregator::advance_to(Instant now) {
  if (now.ns() > watermark_.ns()) watermark_ = now;
  const std::int64_t target = watermark_.ns() < 0 ? 0 : watermark_.ns() / window_ns_;
  while (current_window_ < target) {
    close_window();
    ++current_window_;
  }
}

void WindowAggregator::close_window() {
  const std::int64_t start_ns = current_window_ * window_ns_;
  line_.clear();
  host_line_.clear();
  line_ += "{\"type\":\"window\",\"seq\":";
  append_int(line_, current_window_);
  if (config_.timeline == TelemetryTimeline::kHost) line_ += ",\"deterministic\":false";
  line_ += ",\"start_ns\":";
  append_int(line_, start_ns);
  line_ += ",\"end_ns\":";
  append_int(line_, start_ns + window_ns_);
  line_ += ",\"flows\":[";
  bool first = true;
  for (const FlowState& f : flows_) {
    if (!f.touched) continue;
    if (!first) line_ += ',';
    first = false;
    append_flow(f);
  }
  line_ += "],\"metrics\":[";
  fold_metrics();
  line_ += "],\"drops\":{\"spans\":";
  const std::uint64_t dropped = collector_ != nullptr ? collector_->dropped() : 0;
  append_uint(line_, dropped - prev_spans_dropped_);
  prev_spans_dropped_ = dropped;
  line_ += ",\"evicted\":";
  append_uint(line_, win_evicted_);
  line_ += ",\"late\":";
  append_uint(line_, win_late_);
  line_ += "},\"open\":";
  append_uint(line_, open_traces_);
  line_ += '}';

  if (sink_ != nullptr) {
    sink_->write_line(line_);
    if (!host_line_.empty()) {
      // Host-clock instruments ride on their own line so determinism
      // checks can filter them wholesale.
      line_.clear();
      line_ += "{\"type\":\"hostm\",\"seq\":";
      append_int(line_, current_window_);
      line_ += ",\"deterministic\":false,\"metrics\":[";
      line_ += host_line_;
      line_ += "]}";
      sink_->write_line(line_);
    }
  }
  ++windows_emitted_;

  for (FlowState& f : flows_) {
    if (!f.touched) continue;
    f.touched = false;
    f.win_traces = f.win_deadline_miss = f.win_bound_miss = 0;
    for (PhaseWindow& p : f.phase) p.reset();
  }
  win_evicted_ = 0;
  win_late_ = 0;
}

void WindowAggregator::append_flow(const FlowState& f) {
  line_ += "{\"flow\":";
  append_escaped(line_, f.key);
  line_ += ",\"n\":";
  append_uint(line_, f.win_traces);
  if (f.deadline_ns >= 0) {
    line_ += ",\"deadline_ns\":";
    append_int(line_, f.deadline_ns);
    line_ += ",\"deadline_miss\":";
    append_uint(line_, f.win_deadline_miss);
  }
  if (f.bound_ns >= 0) {
    line_ += ",\"bound_ns\":";
    append_int(line_, f.bound_ns);
    line_ += ",\"bound_miss\":";
    append_uint(line_, f.win_bound_miss);
  }
  line_ += ",\"phases\":{";
  bool first = true;
  for (std::size_t i = 0; i < kPhaseSlots; ++i) {
    const PhaseWindow& p = f.phase[i];
    if (p.n == 0) continue;
    if (!first) line_ += ',';
    first = false;
    append_escaped(line_, kBreakdownPhases[i]);
    line_ += ":{\"n\":";
    append_uint(line_, p.n);
    line_ += ",\"min_ns\":";
    append_int(line_, p.min);
    line_ += ",\"max_ns\":";
    append_int(line_, p.max);
    line_ += ",\"sum_ns\":";
    append_int(line_, p.sum);
    if (p.trunc != 0) {
      line_ += ",\"trunc\":";
      append_uint(line_, p.trunc);
    }
    line_ += ",\"values\":[";
    for (std::uint32_t j = 0; j < p.distinct; ++j) {
      if (j != 0) line_ += ',';
      line_ += '[';
      append_int(line_, p.value[j]);
      line_ += ',';
      append_uint(line_, p.count[j]);
      line_ += ']';
    }
    line_ += "]}";
  }
  line_ += "}}";
}

void WindowAggregator::fold_metrics() {
  if (metrics_ == nullptr) return;
  if (prev_.size() < metrics_->instrument_count()) prev_.resize(metrics_->instrument_count());
  std::size_t i = 0;
  bool first_det = true;
  bool first_host = true;
  metrics_->for_each([&](const MetricsRegistry::InstrumentRef& ref) {
    MetricPrev& prev = prev_[i++];
    const bool det = ref.determinism == Determinism::kDeterministic &&
                     config_.timeline == TelemetryTimeline::kSim;
    std::string& out = det ? line_ : host_line_;
    bool& first = det ? first_det : first_host;
    switch (ref.kind) {
      case InstrumentKind::kCounter: {
        const std::uint64_t v = ref.counter->value();
        if (v != prev.counter) {
          if (!first) out += ',';
          first = false;
          out += "{\"name\":";
          append_escaped(out, ref.name);
          out += ",\"kind\":\"counter\",\"delta\":";
          append_uint(out, v - prev.counter);
          out += '}';
          prev.counter = v;
        }
        break;
      }
      case InstrumentKind::kGauge: {
        const std::uint64_t u = ref.gauge->updates();
        if (u != prev.updates) {
          if (!first) out += ',';
          first = false;
          out += "{\"name\":";
          append_escaped(out, ref.name);
          out += ",\"kind\":\"gauge\",\"value\":";
          append_int(out, ref.gauge->value());
          out += ",\"high\":";
          append_int(out, ref.gauge->window_high_water());
          out += '}';
          prev.updates = u;
        }
        ref.gauge->begin_window();
        break;
      }
      case InstrumentKind::kHistogram: {
        const std::uint64_t c = ref.histogram->count();
        if (c != prev.hist_count) {
          std::uint64_t delta[Histogram::kBins];
          std::uint64_t bins[Histogram::kBins];
          ref.histogram->snapshot_bins(bins);
          for (int b = 0; b < Histogram::kBins; ++b) delta[b] = bins[b] - prev.bins[b];
          const std::uint64_t dn = c - prev.hist_count;
          if (!first) out += ',';
          first = false;
          out += "{\"name\":";
          append_escaped(out, ref.name);
          out += ",\"kind\":\"histogram\",\"n\":";
          append_uint(out, dn);
          out += ",\"sum\":";
          append_int(out, ref.histogram->sum() - prev.hist_sum);
          // Delta-bin percentiles, clamped into the cumulative
          // min/max envelope (per-window extremes are not tracked).
          out += ",\"p50\":";
          append_int(out, Histogram::percentile_of(delta, dn, ref.histogram->min(),
                                                   ref.histogram->max(), 0.50));
          out += ",\"p99\":";
          append_int(out, Histogram::percentile_of(delta, dn, ref.histogram->min(),
                                                   ref.histogram->max(), 0.99));
          if (ref.sample_period != 1) {
            out += ",\"sample_period\":";
            append_uint(out, ref.sample_period);
          }
          out += '}';
          for (int b = 0; b < Histogram::kBins; ++b) prev.bins[b] = bins[b];
          prev.hist_count = c;
          prev.hist_sum = ref.histogram->sum();
        }
        break;
      }
    }
  });
}

void WindowAggregator::flush() {
  if (flushed_) return;
  flushed_ = true;
  flush_order_.clear();
  for (std::size_t i = 0; i < table_.size(); ++i)
    if (table_[i].trace_id != 0) flush_order_.push_back(i);
  // Finalize in trace-id order (table order depends on capacity).
  std::sort(flush_order_.begin(), flush_order_.end(), [this](std::size_t a, std::size_t b) {
    return table_[a].trace_id < table_[b].trace_id;
  });
  for (const std::size_t idx : flush_order_) {
    OpenTrace& t = table_[idx];
    if (t.has_pending_deliver)
      finalize(t, t.pending_deliver_end, t.pending_deliver_name, true);
    else
      finalize(t, t.last_end, t.last_name, false);
  }
  close_window();
}

std::vector<WindowAggregator::FlowTotals> WindowAggregator::totals() const {
  std::vector<FlowTotals> out;
  out.reserve(flows_.size());
  for (const FlowState& f : flows_)
    out.push_back(
        FlowTotals{f.key, f.traces, f.deadline_ns, f.bound_ns, f.deadline_miss, f.bound_miss});
  std::sort(out.begin(), out.end(),
            [](const FlowTotals& a, const FlowTotals& b) { return a.flow < b.flow; });
  return out;
}

// ---------------------------------------------------------------------
// Stream reader

namespace {

InstrumentKind kind_from(const std::string& s) {
  if (s == "gauge") return InstrumentKind::kGauge;
  if (s == "histogram") return InstrumentKind::kHistogram;
  return InstrumentKind::kCounter;
}

TelemetryMetric read_metric(const json::Value& m, bool deterministic) {
  TelemetryMetric out;
  out.name = m.get_string("name");
  out.kind = kind_from(m.get_string("kind", "counter"));
  out.deterministic = deterministic;
  out.sample_period = static_cast<std::uint32_t>(m.get_int("sample_period", 1));
  out.delta = m.get_int("delta");
  out.value = m.get_int("value");
  out.high = m.get_int("high");
  out.n = static_cast<std::uint64_t>(m.get_int("n"));
  out.sum = m.get_int("sum");
  out.p50 = m.get_int("p50");
  out.p99 = m.get_int("p99");
  return out;
}

}  // namespace

Result<std::vector<TelemetryStream>> load_telemetry(std::istream& in) {
  std::vector<TelemetryStream> streams;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = json::parse(line);
    if (!parsed.ok())
      return Error{"telemetry line " + std::to_string(line_no) + ": " + parsed.error().message};
    const json::Value& v = parsed.value();
    const std::string type = v.get_string("type");
    if (type == "tmeta") {
      TelemetryStream s;
      s.label = v.get_string("label");
      s.window_ns = v.get_int("window_ns");
      streams.push_back(std::move(s));
      continue;
    }
    if (streams.empty()) {
      // Stream without a tmeta header (truncated tail pickup): start an
      // anonymous stream rather than failing.
      streams.push_back(TelemetryStream{});
    }
    TelemetryStream& stream = streams.back();
    if (type == "window") {
      TelemetryWindow w;
      w.seq = static_cast<std::uint64_t>(v.get_int("seq"));
      w.start_ns = v.get_int("start_ns");
      w.end_ns = v.get_int("end_ns");
      if (const json::Value* flows = v.find("flows"); flows != nullptr && flows->is_array()) {
        for (const json::Value& fv : flows->as_array()) {
          TelemetryFlow f;
          f.flow = fv.get_string("flow");
          f.traces = static_cast<std::uint64_t>(fv.get_int("n"));
          f.deadline_ns = fv.get_int("deadline_ns", -1);
          f.bound_ns = fv.get_int("bound_ns", -1);
          f.deadline_miss = static_cast<std::uint64_t>(fv.get_int("deadline_miss"));
          f.bound_miss = static_cast<std::uint64_t>(fv.get_int("bound_miss"));
          if (const json::Value* phases = fv.find("phases");
              phases != nullptr && phases->is_object()) {
            for (const auto& [name, pv] : phases->as_object()) {
              TelemetryPhase p;
              p.n = static_cast<std::uint64_t>(pv.get_int("n"));
              p.trunc = static_cast<std::uint64_t>(pv.get_int("trunc"));
              p.min_ns = pv.get_int("min_ns");
              p.max_ns = pv.get_int("max_ns");
              p.sum_ns = pv.get_int("sum_ns");
              if (const json::Value* vals = pv.find("values");
                  vals != nullptr && vals->is_array()) {
                for (const json::Value& pair : vals->as_array()) {
                  if (!pair.is_array() || pair.as_array().size() != 2) continue;
                  p.values.emplace_back(pair.as_array()[0].as_int(),
                                        static_cast<std::uint64_t>(pair.as_array()[1].as_int()));
                }
              }
              f.phases.emplace(name, std::move(p));
            }
          }
          w.flows.push_back(std::move(f));
        }
      }
      if (const json::Value* metrics = v.find("metrics");
          metrics != nullptr && metrics->is_array()) {
        const json::Value* d = v.find("deterministic");
        const bool det = d == nullptr || !d->is_bool() || d->as_bool();
        for (const json::Value& m : metrics->as_array()) w.metrics.push_back(read_metric(m, det));
      }
      if (const json::Value* drops = v.find("drops"); drops != nullptr) {
        w.spans_dropped = static_cast<std::uint64_t>(drops->get_int("spans"));
        w.evicted = static_cast<std::uint64_t>(drops->get_int("evicted"));
        w.late = static_cast<std::uint64_t>(drops->get_int("late"));
      }
      w.open = static_cast<std::uint64_t>(v.get_int("open"));
      stream.windows.push_back(std::move(w));
      continue;
    }
    if (type == "hostm") {
      const std::uint64_t seq = static_cast<std::uint64_t>(v.get_int("seq"));
      if (stream.windows.empty() || stream.windows.back().seq != seq) continue;
      if (const json::Value* metrics = v.find("metrics");
          metrics != nullptr && metrics->is_array()) {
        for (const json::Value& m : metrics->as_array())
          stream.windows.back().metrics.push_back(read_metric(m, false));
      }
      continue;
    }
    // Unknown line types are skipped so the format can grow.
  }
  return streams;
}

std::int64_t FlowHealth::PhaseAgg::percentile(double p) const {
  if (n == 0) return 0;
  if (p <= 0.0) return min_ns;
  if (p >= 1.0) return max_ns;
  // Nearest-rank over the merged run-length samples: the same formula
  // as LatencySet::percentile (rank = p*n + 0.999999), so exact()
  // aggregates reproduce decotrace's numbers bit for bit.
  std::uint64_t total = 0;
  for (const auto& [value, count] : values) {
    (void)value;
    total += count;
  }
  if (total == 0) return max_ns;
  auto rank =
      static_cast<std::uint64_t>(p * static_cast<double>(total) + 0.999999);
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (const auto& [value, count] : values) {
    cumulative += count;
    if (cumulative >= rank) return value;
  }
  return max_ns;
}

std::vector<FlowHealth> flow_health(const std::vector<TelemetryStream>& streams) {
  std::map<std::string, FlowHealth> by_key;
  for (const TelemetryStream& stream : streams) {
    for (const TelemetryWindow& w : stream.windows) {
      for (const TelemetryFlow& f : w.flows) {
        FlowHealth& h = by_key[f.flow];
        h.flow = f.flow;
        h.traces += f.traces;
        // Different cells may publish different SLOs for the same flow
        // (e.g. E6's d_acc sweep); the tightest consumer governs.
        if (f.deadline_ns >= 0 && (h.deadline_ns < 0 || f.deadline_ns < h.deadline_ns))
          h.deadline_ns = f.deadline_ns;
        if (f.bound_ns >= 0 && (h.bound_ns < 0 || f.bound_ns < h.bound_ns)) h.bound_ns = f.bound_ns;
        h.deadline_miss += f.deadline_miss;
        h.bound_miss += f.bound_miss;
        for (const auto& [phase, p] : f.phases) {
          FlowHealth::PhaseAgg& agg = h.phases[phase];
          if (agg.n == 0) {
            agg.min_ns = p.min_ns;
            agg.max_ns = p.max_ns;
          } else {
            if (p.min_ns < agg.min_ns) agg.min_ns = p.min_ns;
            if (p.max_ns > agg.max_ns) agg.max_ns = p.max_ns;
          }
          agg.n += p.n;
          agg.trunc += p.trunc;
          agg.sum_ns += p.sum_ns;
          for (const auto& [value, count] : p.values) agg.values[value] += count;
        }
      }
    }
  }
  std::vector<FlowHealth> out;
  out.reserve(by_key.size());
  for (auto& [key, h] : by_key) out.push_back(std::move(h));
  return out;
}

MetricsSnapshot accumulate_metrics(const std::vector<TelemetryStream>& streams) {
  struct Acc {
    MetricValue value;
    std::uint64_t largest_window = 0;
  };
  std::map<std::string, Acc> by_name;
  for (const TelemetryStream& stream : streams) {
    for (const TelemetryWindow& w : stream.windows) {
      for (const TelemetryMetric& m : w.metrics) {
        Acc& acc = by_name[m.name];
        MetricValue& v = acc.value;
        v.name = m.name;
        v.kind = m.kind;
        v.deterministic = m.deterministic;
        v.sample_period = m.sample_period;
        switch (m.kind) {
          case InstrumentKind::kCounter:
            v.value += m.delta;
            v.updates += static_cast<std::uint64_t>(m.delta);
            break;
          case InstrumentKind::kGauge:
            v.value = m.value;  // last wins
            if (m.high > v.high_water) v.high_water = m.high;
            ++v.updates;
            break;
          case InstrumentKind::kHistogram:
            v.count += m.n;
            v.sum += m.sum;
            v.updates += m.n;
            // Bin deltas are not recoverable from the stream; keep the
            // percentiles of the busiest window as representative.
            if (m.n >= acc.largest_window) {
              acc.largest_window = m.n;
              v.p50 = m.p50;
              v.p99 = m.p99;
            }
            break;
        }
      }
    }
  }
  MetricsSnapshot snap;
  snap.entries.reserve(by_name.size());
  for (auto& [name, acc] : by_name) snap.entries.push_back(std::move(acc.value));
  return snap;
}

Result<std::vector<std::pair<std::string, std::int64_t>>> load_flow_bounds(std::istream& in) {
  std::string text{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  auto parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  std::vector<std::pair<std::string, std::int64_t>> out;
  const json::Value* cluster = parsed.value().find("cluster");
  const json::Value* flows =
      cluster != nullptr ? cluster->find("flows") : parsed.value().find("flows");
  if (flows == nullptr || !flows->is_array())
    return Error{"bounds file: no cluster.flows array"};
  for (const json::Value& f : flows->as_array()) {
    const std::string key = f.get_string("key");
    if (key.empty()) continue;
    out.emplace_back(key, f.get_int("bound_ns"));
  }
  return out;
}

}  // namespace decos::obs
