// Causal trace spans: per-message-instance timing across the whole
// forwarding pipeline.
//
// Every message instance is tagged with a trace id where it first enters
// a port; the id (and the id of the last causal span) rides along
// through bus frames, the gateway repository and reconstructed messages,
// so end-to-end and per-phase latency are queryable per instance instead
// of reconstructed by string matching:
//
//   send (root, producer port deposit)
//     -> bus (transmission start .. delivery)
//       -> dissect (gateway admitted + stored the instance)
//         -> repo_wait (repository store .. fetch at construction)
//           -> construct (outgoing message built)
//             -> bus -> deliver (consumer port deposit)
//
// Spans are recorded complete (start and end known at emission). A
// bounded ring-buffer mode keeps long runs at a fixed memory footprint.
//
// Partitioned emission (S28): when the simulator runs its event load on
// several partition wheels between barriers, each worker thread emits
// into a private per-partition buffer (begin_partition routes the
// calling thread). Buffered spans carry *provisional* ids; at every
// barrier commit_partitions() merges the buffers in the canonical order
// (end instant, then partition index, then per-partition emission
// order), assigns final dense span ids from the shared counter, and
// feeds the sink -- so the published span stream is byte-identical at
// any worker count. Trace ids are strided by partition (stream s of P
// allocates 1+s, 1+s+(P+1), ...) so a trace id handed out inside a
// parallel phase is already final and never needs translation.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/symbol.hpp"
#include "util/time.hpp"

namespace decos::obs {

/// Pipeline phase of a span. Kept closed (not free-form strings) so
/// analysis code can aggregate without configuration.
enum class Phase : std::uint8_t {
  kSend,       // producer handed the instance to an output port (root)
  kBus,        // physical transmission: tx start .. delivery
  kDissect,    // gateway admitted the instance and dissected it
  kRepoWait,   // element buffered in the gateway repository
  kConstruct,  // outgoing message constructed from repository elements
  kDeliver,    // instance deposited into a consumer input port
};

inline constexpr std::size_t kPhaseCount = 6;
const char* phase_name(Phase phase);

struct Span {
  std::uint64_t trace_id = 0;   // one end-to-end message journey
  std::uint64_t span_id = 0;    // unique per span, monotone
  std::uint64_t parent_id = 0;  // 0 = root
  Phase phase = Phase::kSend;
  // Emitting entity ("node2", "vn-a", "gw:e6") and message/element name,
  // as interned Symbols: emission on the forwarding hot path records two
  // u32s; spellings are resolved through the global table only at
  // export/analysis time. Compare against plain strings via the Symbol
  // string equality helpers (span.track == "node2").
  Symbol track;
  Symbol name;
  Instant start;
  Instant end;
  std::int64_t value = 0;  // phase-specific payload (bytes, ...)

  Duration duration() const { return end - start; }
};

/// Streaming observer of span emissions. A sink sees every span at
/// emission time, in span-id order, independent of the collector's
/// retention policy -- a bounded ring may drop old spans, the sink
/// already folded them. The windowed telemetry aggregator is the one
/// production sink.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const Span& span) = 0;
};

/// Owns all spans of one simulated system (one collector per simulator).
/// Trace and span ids are allocated from monotone counters, so identical
/// seeded runs produce identical id sequences.
class TraceCollector {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Bound retention to the `capacity` newest spans (0 = unbounded).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_emitted() const { return next_span_ - 1; }

  /// Allocate a fresh trace id (0 is never returned; 0 marks "untraced").
  /// Inside a partition batch the id comes from the partition's strided
  /// sequence; ids are unique and deterministic at any worker count.
  std::uint64_t new_trace();

  // -- Partitioned emission (S28) ------------------------------------
  /// Allocate `count` partition streams (idempotent only before use).
  void configure_partitions(std::size_t count);
  std::size_t partition_count() const { return streams_.size(); }
  /// Route the calling thread's emissions into partition `index`'s
  /// buffer (1-based; engine-only, one thread per stream at a time).
  void begin_partition(std::size_t index);
  void end_partition();
  /// Merge every buffered partition span in canonical order -- (end,
  /// partition index, per-partition emission order) -- assign final span
  /// ids, translate provisional parents, and publish through the normal
  /// sink/ring path. Runs single-threaded at a barrier.
  void commit_partitions();
  /// Final id behind a possibly-provisional span id. Provisional ids
  /// resolve only after the batch that emitted them has committed.
  std::uint64_t resolve_span_id(std::uint64_t id) const;

  /// Record a complete span; returns its span id (0 when disabled).
  /// The Symbol form is the hot path (no string handling at all); the
  /// string form interns and forwards (call sites that format labels).
  std::uint64_t emit(std::uint64_t trace_id, std::uint64_t parent_id, Phase phase, Symbol track,
                     Symbol name, Instant start, Instant end, std::int64_t value = 0);
  std::uint64_t emit(std::uint64_t trace_id, std::uint64_t parent_id, Phase phase,
                     std::string_view track, std::string_view name, Instant start, Instant end,
                     std::int64_t value = 0) {
    if (!enabled_) return 0;  // do not intern labels nobody records
    return emit(trace_id, parent_id, phase, intern_symbol(track), intern_symbol(name), start, end,
                value);
  }

  /// Retained spans, oldest first.
  const std::deque<Span>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  /// Retained spans of one trace, in emission order.
  std::vector<const Span*> trace(std::uint64_t trace_id) const;
  const Span* by_span_id(std::uint64_t span_id) const;

  /// Install a streaming observer (nullptr detaches). The sink is called
  /// from emit() after the span is assigned its id, before any ring
  /// eviction, so it observes the complete emission sequence.
  void set_sink(SpanSink* sink) { sink_ = sink; }
  SpanSink* sink() const { return sink_; }

 private:
  /// Provisional span ids: bit 63 | stream index (1-based) | local seq.
  static constexpr std::uint64_t kProvisionalBit = 1ull << 63;
  static constexpr unsigned kStreamShift = 48;

  struct PartitionStream {
    std::uint64_t next_trace = 0;          // traces allocated by this stream
    std::uint64_t next_local = 0;          // provisional seq (never reset)
    std::vector<Span> pending;             // buffered since the last commit
    std::vector<std::uint64_t> final_ids;  // local seq -> committed span id
    std::size_t merge_pos = 0;             // commit-time merge cursor
  };

  PartitionStream* active_stream();
  std::uint64_t publish(Span span);  // assign final id, sink, ring-evict

  bool enabled_ = true;
  SpanSink* sink_ = nullptr;
  std::size_t capacity_ = 0;
  std::uint64_t next_trace_ = 0;  // traces allocated by the global stream
  std::uint64_t next_span_ = 1;
  std::uint64_t dropped_ = 0;
  std::deque<Span> spans_;
  std::vector<PartitionStream> streams_;
};

}  // namespace decos::obs
