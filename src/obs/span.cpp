#include "obs/span.hpp"

#include <cassert>
#include <utility>

namespace decos::obs {

namespace {

/// Thread-local routing installed by begin_partition: one partition
/// stream per worker thread, compared against the owning collector so
/// nested simulators cannot cross-route.
struct ActiveStreamTls {
  const TraceCollector* collector = nullptr;
  std::size_t stream = 0;  // 1-based partition index
};
thread_local ActiveStreamTls t_active_stream;

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSend: return "send";
    case Phase::kBus: return "bus";
    case Phase::kDissect: return "dissect";
    case Phase::kRepoWait: return "repo_wait";
    case Phase::kConstruct: return "construct";
    case Phase::kDeliver: return "deliver";
  }
  return "unknown";
}

void TraceCollector::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ != 0) {
    while (spans_.size() > capacity_) {
      spans_.pop_front();
      ++dropped_;
    }
  }
}

TraceCollector::PartitionStream* TraceCollector::active_stream() {
  if (streams_.empty()) return nullptr;
  if (t_active_stream.collector != this) return nullptr;
  return &streams_[t_active_stream.stream - 1];
}

std::uint64_t TraceCollector::new_trace() {
  const auto stride = static_cast<std::uint64_t>(streams_.size()) + 1;
  if (PartitionStream* s = active_stream()) {
    const auto stream_index = static_cast<std::uint64_t>(s - streams_.data()) + 1;
    return 1 + stream_index + (s->next_trace++) * stride;
  }
  return 1 + (next_trace_++) * stride;
}

void TraceCollector::configure_partitions(std::size_t count) {
  assert(streams_.empty() && "partition streams already configured");
  streams_.resize(count);
}

void TraceCollector::begin_partition(std::size_t index) {
  assert(index >= 1 && index <= streams_.size());
  t_active_stream = ActiveStreamTls{this, index};
}

void TraceCollector::end_partition() { t_active_stream = ActiveStreamTls{}; }

std::uint64_t TraceCollector::publish(Span span) {
  span.span_id = next_span_++;
  spans_.push_back(span);
  if (sink_ != nullptr) sink_->on_span(spans_.back());
  if (capacity_ != 0 && spans_.size() > capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  return span.span_id;
}

std::uint64_t TraceCollector::emit(std::uint64_t trace_id, std::uint64_t parent_id, Phase phase,
                                   Symbol track, Symbol name, Instant start, Instant end,
                                   std::int64_t value) {
  if (!enabled_) return 0;
  if (PartitionStream* s = active_stream()) {
    const auto stream_index = static_cast<std::uint64_t>(s - streams_.data()) + 1;
    const std::uint64_t id =
        kProvisionalBit | (stream_index << kStreamShift) | s->next_local++;
    s->pending.push_back(Span{trace_id, id, parent_id, phase, track, name, start, end, value});
    return id;
  }
  // Direct path (classic kernel, setup code, or the global phase of a
  // partitioned run): parents handed across a barrier may still be
  // provisional -- translate here, ids published by commits are final.
  return publish(Span{trace_id, 0, resolve_span_id(parent_id), phase, track, name, start, end,
                      value});
}

std::uint64_t TraceCollector::resolve_span_id(std::uint64_t id) const {
  if ((id & kProvisionalBit) == 0) return id;
  const auto stream = static_cast<std::size_t>((id >> kStreamShift) & 0x7fffu);
  const std::uint64_t local = id & ((std::uint64_t{1} << kStreamShift) - 1);
  assert(stream >= 1 && stream <= streams_.size() && "foreign provisional span id");
  const PartitionStream& s = streams_[stream - 1];
  assert(local < s.final_ids.size() && "provisional span referenced before its commit");
  if (stream < 1 || stream > streams_.size() || local >= s.final_ids.size()) return 0;
  return s.final_ids[local];
}

void TraceCollector::commit_partitions() {
  for (PartitionStream& s : streams_) s.merge_pos = 0;
  for (;;) {
    // K-way merge: earliest end wins, partition index breaks ties, each
    // stream drains in emission order (ends are monotone per stream, so
    // the merged stream is globally end-monotone and every parent
    // commits before its children).
    PartitionStream* best = nullptr;
    for (PartitionStream& s : streams_) {
      if (s.merge_pos >= s.pending.size()) continue;
      if (best == nullptr || s.pending[s.merge_pos].end < best->pending[best->merge_pos].end)
        best = &s;
    }
    if (best == nullptr) break;
    Span span = best->pending[best->merge_pos++];
    span.parent_id = resolve_span_id(span.parent_id);
    best->final_ids.push_back(publish(std::move(span)));
  }
  for (PartitionStream& s : streams_) s.pending.clear();
}

std::vector<const Span*> TraceCollector::trace(std::uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_)
    if (s.trace_id == trace_id) out.push_back(&s);
  return out;
}

const Span* TraceCollector::by_span_id(std::uint64_t span_id) const {
  if (spans_.empty()) return nullptr;
  // Span ids are dense and monotone; retained spans form a contiguous
  // id window.
  const std::uint64_t first = spans_.front().span_id;
  if (span_id < first || span_id >= first + spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(span_id - first)];
}

}  // namespace decos::obs
