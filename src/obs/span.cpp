#include "obs/span.hpp"

namespace decos::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSend: return "send";
    case Phase::kBus: return "bus";
    case Phase::kDissect: return "dissect";
    case Phase::kRepoWait: return "repo_wait";
    case Phase::kConstruct: return "construct";
    case Phase::kDeliver: return "deliver";
  }
  return "unknown";
}

void TraceCollector::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ != 0) {
    while (spans_.size() > capacity_) {
      spans_.pop_front();
      ++dropped_;
    }
  }
}

std::uint64_t TraceCollector::emit(std::uint64_t trace_id, std::uint64_t parent_id, Phase phase,
                                   Symbol track, Symbol name, Instant start, Instant end,
                                   std::int64_t value) {
  if (!enabled_) return 0;
  const std::uint64_t span_id = next_span_++;
  spans_.push_back(Span{trace_id, span_id, parent_id, phase, track, name, start, end, value});
  if (sink_ != nullptr) sink_->on_span(spans_.back());
  if (capacity_ != 0 && spans_.size() > capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  return span_id;
}

std::vector<const Span*> TraceCollector::trace(std::uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_)
    if (s.trace_id == trace_id) out.push_back(&s);
  return out;
}

const Span* TraceCollector::by_span_id(std::uint64_t span_id) const {
  if (spans_.empty()) return nullptr;
  // Span ids are dense and monotone; retained spans form a contiguous
  // id window.
  const std::uint64_t first = spans_.front().span_id;
  if (span_id < first || span_id >= first + spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(span_id - first)];
}

}  // namespace decos::obs
