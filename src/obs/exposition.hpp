// Prometheus-style text exposition: a point-in-time snapshot of the
// metrics registry and per-flow SLO health, rendered in the text
// exposition format (one "name{labels} value" sample per line, # TYPE
// comments). The output is deterministic -- snapshot entries are
// already name-sorted and flows are key-sorted -- so golden tests can
// compare it byte for byte.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace decos::obs {

/// Sanitize an instrument or label name into the exposition charset:
/// [a-zA-Z0-9_], everything else becomes '_'. A "decos_" prefix is
/// added by the writer, so a leading digit cannot occur.
std::string exposition_name(std::string_view name);

/// Write the exposition snapshot. Counter values come out as
/// `decos_<name>_total`, gauges as `decos_<name>` plus
/// `decos_<name>_high_water`, histograms as summaries with quantile
/// labels plus `_count`/`_sum` (and `_sample_period` /
/// `_estimated_count` when the instrument is sampled). Flow health is
/// rendered as `decos_flow_*` families labelled by flow (and phase for
/// the latency summary).
void write_exposition(std::ostream& out, const MetricsSnapshot& metrics,
                      const std::vector<FlowHealth>& flows);

}  // namespace decos::obs
