// Streaming windowed telemetry: the live counterpart of the post-hoc
// dump/decotrace pipeline.
//
// A WindowAggregator attaches to a TraceCollector as its SpanSink and
// folds every emitted span into tumbling sim-time windows *as the run
// executes*: per-flow phase latencies (same landmarks and arithmetic as
// analysis.cpp's phase_breakdown, so live and post-hoc numbers agree to
// the nanosecond), deadline-miss counters against each consumer's d_acc
// and against declint's exported static bounds, plus per-window metric
// deltas (counter deltas, gauge window high waters, histogram bin
// deltas) read allocation-free through MetricsRegistry::for_each.
//
// Windows are emitted as a JSONL delta stream. Every line derived from
// simulated time is byte-deterministic: identical seeded runs produce
// identical streams, and the bench Harness commits per-cell streams in
// submission order so --jobs N never reorders bytes. Host-time
// instruments (handler_ns and friends) are segregated onto separate
// "hostm" lines tagged "deterministic":false, which the determinism
// checks filter out -- the same convention as the dump writer.
//
// The steady-state path (on_span + window close) performs zero heap
// allocations: the open-trace table is a fixed direct-mapped array,
// per-flow window stats are fixed-capacity run-length lists, and
// serialization appends into reused buffers with std::to_chars. This is
// pinned by hot_path_allocation_test.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/result.hpp"
#include "util/symbol.hpp"
#include "util/time.hpp"

namespace decos::obs {

/// Destination of the JSONL delta stream. write_line receives one
/// complete JSON object without the trailing newline.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void write_line(std::string_view line) = 0;
};

/// Sink appending "line\n" to a std::ostream (file or pipe).
class OstreamTelemetrySink : public TelemetrySink {
 public:
  explicit OstreamTelemetrySink(std::ostream& out) : out_{&out} {}
  void write_line(std::string_view line) override;

 private:
  std::ostream* out_;
};

/// Which clock drives the tumbling windows. Sim-time windows are
/// byte-deterministic (the bench/CI surface); host-time windows follow
/// the wall clock of the run itself (the live-runtime surface) and are
/// tagged "deterministic":false line by line so determinism checks skip
/// them. Flow latencies are computed from span sim timestamps either
/// way -- the timeline only decides window membership.
enum class TelemetryTimeline { kSim, kHost };

struct TelemetryConfig {
  /// Tumbling window length (simulated or host nanoseconds, per
  /// `timeline`).
  Duration window = Duration::milliseconds(100);
  TelemetryTimeline timeline = TelemetryTimeline::kSim;
  /// Capacity of the direct-mapped open-trace table. A colliding new
  /// root evicts (finalizes) the previous occupant; sized generously
  /// relative to the number of simultaneously in-flight traces.
  std::size_t max_open_traces = 1024;
};

/// Streaming per-flow, per-window aggregator. See file comment.
class WindowAggregator : public SpanSink {
 public:
  /// Number of per-flow phase slots, in kBreakdownPhases order
  /// (ingress, dissect, repo_wait, construct, delivery, total).
  static constexpr std::size_t kPhaseSlots = 6;
  /// Distinct latency values tracked exactly per (flow, phase, window);
  /// further distinct values only widen min/max/sum and count `trunc`.
  static constexpr std::size_t kWindowValueCap = 32;

  /// `metrics` may be null (span-only aggregation); `collector` may be
  /// null (metrics-only windows). Neither is owned.
  WindowAggregator(MetricsRegistry* metrics, const TraceCollector* collector,
                   TelemetryConfig config);
  ~WindowAggregator() override;

  WindowAggregator(const WindowAggregator&) = delete;
  WindowAggregator& operator=(const WindowAggregator&) = delete;

  /// Attach the output stream (nullptr detaches; aggregation continues
  /// and cumulative totals stay queryable).
  void set_sink(TelemetrySink* sink) { sink_ = sink; }

  /// Emit the stream header ("tmeta" line) carrying the cell label and
  /// window length. Call once, after set_sink, before traffic.
  void begin_stream(std::string_view label);

  /// Register the d_acc deadline for a flow ("msgA" or "msgA->msgB",
  /// same keys as phase_breakdown). Flows appearing later match by
  /// exact key first, then by unique root-message fallback.
  void set_deadline(std::string_view flow_key, Duration d_acc);
  /// Register a static end-to-end bound (declint export) for a flow.
  void set_bound(std::string_view flow_key, std::int64_t bound_ns);

  /// SpanSink: fold one span (called from TraceCollector::emit).
  void on_span(const Span& span) override;

  /// Finalize still-open traces (ascending trace id), close and emit
  /// the final (possibly partial) window. Idempotent; called by the
  /// destructor if a sink is still attached.
  void flush();

  /// Cumulative (whole-run) per-flow SLO accounting, for in-process
  /// assertions and exposition snapshots. Sorted by flow key.
  struct FlowTotals {
    std::string flow;
    std::uint64_t traces = 0;
    std::int64_t deadline_ns = -1;  // -1 = no deadline registered
    std::int64_t bound_ns = -1;     // -1 = no static bound registered
    std::uint64_t deadline_miss = 0;
    std::uint64_t bound_miss = 0;
  };
  std::vector<FlowTotals> totals() const;

  std::uint64_t windows_emitted() const { return windows_emitted_; }
  std::uint64_t traces_evicted() const { return evicted_total_; }
  std::uint64_t late_finalized() const { return late_total_; }

 private:
  /// Exact fixed-capacity latency stats for one (flow, phase, window):
  /// sorted run-length pairs (value, count). Windows are short and sim
  /// latencies heavily repeated, so 32 distinct values per window is
  /// plenty; overflow widens min/max/sum and bumps trunc.
  struct PhaseWindow {
    std::uint64_t n = 0;
    std::uint64_t trunc = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t sum = 0;
    std::uint32_t distinct = 0;
    std::array<std::int64_t, kWindowValueCap> value{};
    std::array<std::uint32_t, kWindowValueCap> count{};

    void add(std::int64_t v);
    void reset() { *this = PhaseWindow{}; }
  };

  struct FlowState {
    std::string key;                // "msgA" or "msgA->msgB"
    std::int64_t deadline_ns = -1;  // tightest consumer d_acc
    std::int64_t bound_ns = -1;     // declint static bound
    // Cumulative (whole run):
    std::uint64_t traces = 0;
    std::uint64_t deadline_miss = 0;
    std::uint64_t bound_miss = 0;
    // Current window:
    bool touched = false;
    std::uint64_t win_traces = 0;
    std::uint64_t win_deadline_miss = 0;
    std::uint64_t win_bound_miss = 0;
    std::array<PhaseWindow, kPhaseSlots> phase{};
  };

  /// One in-flight trace in the direct-mapped table (trace_id == 0 =
  /// free slot). Landmarks mirror phase_breakdown exactly.
  struct OpenTrace {
    std::uint64_t trace_id = 0;
    Symbol root_name{};
    Instant root_start{};
    Instant last_end{};
    Symbol last_name{};
    Instant first_bus_end{};
    Instant dissect_end{};
    Duration repo_longest{};
    Instant repo_longest_end{};
    Instant construct_end{};
    Instant pending_deliver_end{};
    Symbol pending_deliver_name{};
    // Landmark state at the moment the pending deliver was recorded.
    // The post-hoc scan stops at the first qualifying deliver, so
    // landmarks folded after it only count if a construct arrives
    // later; otherwise finalize() rolls back to this snapshot.
    Instant snap_first_bus_end{};
    Instant snap_dissect_end{};
    Duration snap_repo_longest{};
    Instant snap_repo_longest_end{};
    bool snap_has_bus = false;
    bool snap_has_dissect = false;
    bool snap_has_repo = false;
    bool has_bus = false;
    bool has_dissect = false;
    bool has_repo = false;
    bool has_construct = false;
    bool has_pending_deliver = false;
  };

  /// SLO registration waiting for its flow to appear.
  struct SloEntry {
    std::string key;
    std::string root;  // key up to "->"
    std::int64_t deadline_ns = -1;
    std::int64_t bound_ns = -1;
  };

  /// Previous-window metric values for delta folding.
  struct MetricPrev {
    std::uint64_t counter = 0;
    std::uint64_t updates = 0;
    std::int64_t gauge_value = 0;
    std::uint64_t hist_count = 0;
    std::int64_t hist_sum = 0;
    std::array<std::uint64_t, Histogram::kBins> bins{};
  };

  void advance_to(Instant end);
  void close_window();
  FlowState& flow_for(Symbol root, Symbol last);
  SloEntry& upsert_slo(std::string_view key);
  void apply_slo(FlowState& flow);
  void finalize(OpenTrace& t, Instant terminal_end, Symbol terminal_name, bool delivered);
  void fold_metrics();
  void append_flow(const FlowState& flow);

  MetricsRegistry* metrics_;
  const TraceCollector* collector_;
  TelemetryConfig config_;
  TelemetrySink* sink_ = nullptr;
  std::int64_t window_ns_;

  std::vector<OpenTrace> table_;
  std::vector<std::size_t> flush_order_;  // scratch, reserved up front

  std::vector<FlowState> flows_;  // creation order (deterministic)
  std::unordered_map<std::uint64_t, std::size_t> flow_index_;  // (root<<32|last) -> index
  std::vector<SloEntry> slo_;

  Instant watermark_{};
  std::int64_t current_window_ = 0;
  std::int64_t host_epoch_ns_ = 0;  // host timeline: steady-clock origin
  bool started_ = false;
  bool flushed_ = false;

  std::uint64_t windows_emitted_ = 0;
  std::uint64_t evicted_total_ = 0;
  std::uint64_t late_total_ = 0;
  std::uint64_t win_evicted_ = 0;
  std::uint64_t win_late_ = 0;
  std::uint64_t prev_spans_dropped_ = 0;
  std::size_t open_traces_ = 0;

  std::vector<MetricPrev> prev_;  // grows only when instruments register
  std::string line_;              // reused serialization buffers
  std::string host_line_;
};

// ---------------------------------------------------------------------
// Stream reader (decomon, tests): parse a JSONL delta stream back into
// windows and accumulate them into whole-run per-flow health.

struct TelemetryPhase {
  std::uint64_t n = 0;
  std::uint64_t trunc = 0;
  std::int64_t min_ns = 0;
  std::int64_t max_ns = 0;
  std::int64_t sum_ns = 0;
  std::vector<std::pair<std::int64_t, std::uint64_t>> values;  // sorted (value, count)
};

struct TelemetryFlow {
  std::string flow;
  std::uint64_t traces = 0;
  std::int64_t deadline_ns = -1;
  std::int64_t bound_ns = -1;
  std::uint64_t deadline_miss = 0;
  std::uint64_t bound_miss = 0;
  std::map<std::string, TelemetryPhase> phases;  // key: kBreakdownPhases entry
};

struct TelemetryMetric {
  std::string name;
  InstrumentKind kind = InstrumentKind::kCounter;
  bool deterministic = true;
  std::uint32_t sample_period = 1;
  std::int64_t delta = 0;  // counter
  std::int64_t value = 0;  // gauge
  std::int64_t high = 0;   // gauge window high water
  std::uint64_t n = 0;     // histogram delta count
  std::int64_t sum = 0;
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
};

struct TelemetryWindow {
  std::uint64_t seq = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::vector<TelemetryFlow> flows;
  std::vector<TelemetryMetric> metrics;
  std::uint64_t spans_dropped = 0;
  std::uint64_t evicted = 0;
  std::uint64_t late = 0;
  std::uint64_t open = 0;
};

struct TelemetryStream {
  std::string label;
  std::int64_t window_ns = 0;
  std::vector<TelemetryWindow> windows;
};

/// Parse a telemetry JSONL stream (any number of concatenated cell
/// streams, each headed by a tmeta line). Unknown line types are
/// skipped so the format can grow.
Result<std::vector<TelemetryStream>> load_telemetry(std::istream& in);

/// Whole-run per-flow health folded from window deltas.
struct FlowHealth {
  std::string flow;
  std::uint64_t traces = 0;
  std::int64_t deadline_ns = -1;
  std::int64_t bound_ns = -1;
  std::uint64_t deadline_miss = 0;
  std::uint64_t bound_miss = 0;

  struct PhaseAgg {
    std::uint64_t n = 0;
    std::uint64_t trunc = 0;
    std::int64_t min_ns = 0;
    std::int64_t max_ns = 0;
    std::int64_t sum_ns = 0;
    std::map<std::int64_t, std::uint64_t> values;  // merged run-length samples

    /// Exact iff no window truncated its value list.
    bool exact() const { return trunc == 0; }
    double mean() const {
      return n == 0 ? 0.0 : static_cast<double>(sum_ns) / static_cast<double>(n);
    }
    /// Nearest-rank percentile over the merged samples -- the same
    /// formula as analysis.cpp's LatencySet, so exact() aggregates
    /// match decotrace's post-hoc numbers to the nanosecond.
    std::int64_t percentile(double p) const;
  };
  std::map<std::string, PhaseAgg> phases;
};

/// Merge all windows of all streams into per-flow health records,
/// sorted by flow key. Windows from different cells with the same flow
/// key merge (decomon monitors one cell's stream in practice).
std::vector<FlowHealth> flow_health(const std::vector<TelemetryStream>& streams);

/// Fold per-window metric deltas back into a cumulative snapshot:
/// counters sum deltas, gauges keep the last value and the max window
/// high water, histograms sum counts/sums and keep the percentiles of
/// the largest window (binning loses exact merge).
MetricsSnapshot accumulate_metrics(const std::vector<TelemetryStream>& streams);

/// Load declint's exported flow bounds ({"cluster":{"flows":[{"key","bound_ns"},...]}}),
/// the same file decotrace --check-bounds consumes.
Result<std::vector<std::pair<std::string, std::int64_t>>> load_flow_bounds(std::istream& in);

}  // namespace decos::obs
