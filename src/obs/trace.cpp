#include "obs/trace.hpp"

#include <algorithm>

namespace decos::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFrameSent: return "frame_sent";
    case TraceKind::kFrameDelivered: return "frame_delivered";
    case TraceKind::kFrameBlocked: return "frame_blocked";
    case TraceKind::kMessageSent: return "message_sent";
    case TraceKind::kMessageReceived: return "message_received";
    case TraceKind::kGatewayForwarded: return "gateway_forwarded";
    case TraceKind::kGatewayBlocked: return "gateway_blocked";
    case TraceKind::kAutomatonError: return "automaton_error";
    case TraceKind::kFaultInjected: return "fault_injected";
    case TraceKind::kClockSync: return "clock_sync";
    case TraceKind::kMembershipChange: return "membership_change";
  }
  return "unknown";
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ != 0) {
    while (records_.size() > capacity_) {
      records_.pop_front();
      ++dropped_;
    }
  }
}

void TraceRecorder::clear() {
  records_.clear();
  for (auto& index : kind_index_) index.clear();
  // Cumulative counts and seq continue; clear() only empties the window.
}

void TraceRecorder::for_each(TraceKind kind,
                             const std::function<void(const TraceRecord&)>& fn) const {
  std::vector<std::uint64_t>& index = kind_index_[static_cast<std::size_t>(kind)];
  // Prune seqs that fell out of the retention window.
  const std::uint64_t first = records_.empty() ? next_seq_ : records_.front().seq;
  index.erase(index.begin(),
              std::lower_bound(index.begin(), index.end(), first));
  for (const std::uint64_t seq : index) {
    if (const TraceRecord* r = by_seq(seq); r != nullptr) fn(*r);
  }
}

}  // namespace decos::obs
