// Minimal JSON document model used by the observability exporters, the
// bench result writer and the decotrace loader. Numbers distinguish
// integers from reals so nanosecond timestamps survive a write/read
// round trip exactly (the E6 cross-check demands 1 ns agreement).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace decos::obs::json {

class Value;
using Array = std::vector<Value>;
/// Order-preserving object (insertion order survives dump()).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : data_{nullptr} {}
  Value(std::nullptr_t) : data_{nullptr} {}         // NOLINT(google-explicit-constructor)
  Value(bool b) : data_{b} {}                       // NOLINT(google-explicit-constructor)
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Value(T i) : data_{static_cast<std::int64_t>(i)} {}  // NOLINT(google-explicit-constructor)
  Value(double d) : data_{d} {}                     // NOLINT(google-explicit-constructor)
  Value(std::string s) : data_{std::move(s)} {}     // NOLINT(google-explicit-constructor)
  Value(const char* s) : data_{std::string{s}} {}   // NOLINT(google-explicit-constructor)
  Value(Array a) : data_{std::move(a)} {}           // NOLINT(google-explicit-constructor)
  Value(Object o) : data_{std::move(o)} {}          // NOLINT(google-explicit-constructor)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_real() const { return std::holds_alternative<double>(data_); }
  bool is_number() const { return is_int() || is_real(); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  std::int64_t as_int() const {
    return is_real() ? static_cast<std::int64_t>(std::get<double>(data_))
                     : std::get<std::int64_t>(data_);
  }
  double as_double() const {
    return is_int() ? static_cast<double>(std::get<std::int64_t>(data_))
                    : std::get<double>(data_);
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : as_object())
      if (k == key) return &v;
    return nullptr;
  }
  /// Convenience accessors with defaults for loader code.
  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->as_int() : fallback;
  }
  double get_double(std::string_view key, double fallback = 0.0) const {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->as_double() : fallback;
  }
  std::string get_string(std::string_view key, std::string fallback = {}) const {
    const Value* v = find(key);
    return v != nullptr && v->is_string() ? v->as_string() : std::move(fallback);
  }

  /// Compact single-line serialization.
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

/// Parse one JSON document. Trailing whitespace is allowed; trailing
/// non-whitespace is an error (JSONL readers parse line by line).
Result<Value> parse(std::string_view text);

/// Escape `s` as a JSON string literal (including the quotes).
std::string escape(std::string_view s);

}  // namespace decos::obs::json
