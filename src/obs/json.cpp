#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace decos::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Value::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(as_int());
  } else if (is_real()) {
    const double d = as_double();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
    } else {
      out += "null";  // JSON has no inf/nan
    }
  } else if (is_string()) {
    out += escape(as_string());
  } else if (is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Value& v : as_array()) {
      if (!first) out.push_back(',');
      first = false;
      v.dump_to(out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : as_object()) {
      if (!first) out.push_back(',');
      first = false;
      out += escape(k);
      out.push_back(':');
      v.dump_to(out);
    }
    out.push_back('}');
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  Result<Value> run() {
    skip_ws();
    Result<Value> v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON value");
    return v;
  }

 private:
  Result<Value> fail(std::string message) const {
    return Result<Value>::failure(std::move(message) + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Result<std::string> s = parse_string();
      if (!s.ok()) return Result<Value>{s.error()};
      return Value{std::move(s.value())};
    }
    if (literal("true")) return Value{true};
    if (literal("false")) return Value{false};
    if (literal("null")) return Value{nullptr};
    return parse_number();
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_real = false;
    if (consume('.')) {
      is_real = true;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_real = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("invalid number");
    if (!is_real) {
      std::int64_t i = 0;
      const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc{} && ptr == token.data() + token.size()) return Value{i};
      // Out-of-range integer: fall through to double.
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} || ptr != token.data() + token.size()) return fail("invalid number");
    return Value{d};
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return Result<std::string>::failure("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size())
              return Result<std::string>::failure("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Result<std::string>::failure("invalid \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs are not produced
            // by our own writers).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Result<std::string>::failure("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Result<std::string>::failure("unterminated string");
  }

  Result<Value> parse_array() {
    consume('[');
    Array items;
    skip_ws();
    if (consume(']')) return Value{std::move(items)};
    while (true) {
      skip_ws();
      Result<Value> v = parse_value();
      if (!v.ok()) return v;
      items.push_back(std::move(v.value()));
      skip_ws();
      if (consume(']')) return Value{std::move(items)};
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parse_object() {
    consume('{');
    Object members;
    skip_ws();
    if (consume('}')) return Value{std::move(members)};
    while (true) {
      skip_ws();
      Result<std::string> key = parse_string();
      if (!key.ok()) return Result<Value>{key.error()};
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      Result<Value> v = parse_value();
      if (!v.ok()) return v;
      members.emplace_back(std::move(key.value()), std::move(v.value()));
      skip_ws();
      if (consume('}')) return Value{std::move(members)};
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser{text}.run(); }

}  // namespace decos::obs::json
