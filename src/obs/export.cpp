#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <set>

#include "obs/json.hpp"

namespace decos::obs {

namespace {

const char* instrument_kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "unknown";
}

Result<InstrumentKind> instrument_kind_from(const std::string& name) {
  if (name == "counter") return InstrumentKind::kCounter;
  if (name == "gauge") return InstrumentKind::kGauge;
  if (name == "histogram") return InstrumentKind::kHistogram;
  return Result<InstrumentKind>::failure("unknown instrument kind '" + name + "'");
}

Result<Phase> phase_from(const std::string& name) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    if (name == phase_name(phase)) return phase;
  }
  return Result<Phase>::failure("unknown span phase '" + name + "'");
}

Result<TraceKind> trace_kind_from(const std::string& name) {
  for (std::size_t i = 0; i < kTraceKindCount; ++i) {
    const auto kind = static_cast<TraceKind>(i);
    if (name == trace_kind_name(kind)) return kind;
  }
  return Result<TraceKind>::failure("unknown trace kind '" + name + "'");
}

}  // namespace

void DumpWriter::begin_cell(const std::string& label) {
  json::Object o;
  o.emplace_back("type", "meta");
  o.emplace_back("format", "decos-trace");
  o.emplace_back("version", std::int64_t{1});
  o.emplace_back("label", label);
  out_ << json::Value{std::move(o)}.dump() << '\n';
}

void DumpWriter::add_spans(const TraceCollector& collector) {
  for (const Span& s : collector.spans()) {
    json::Object o;
    o.emplace_back("type", "span");
    o.emplace_back("trace", s.trace_id);
    o.emplace_back("span", s.span_id);
    o.emplace_back("parent", s.parent_id);
    o.emplace_back("phase", phase_name(s.phase));
    o.emplace_back("track", symbol_name(s.track));
    o.emplace_back("name", symbol_name(s.name));
    o.emplace_back("start_ns", s.start.ns());
    o.emplace_back("end_ns", s.end.ns());
    o.emplace_back("value", s.value);
    out_ << json::Value{std::move(o)}.dump() << '\n';
  }
}

void DumpWriter::add_records(const std::string& source, const TraceRecorder& recorder) {
  for (const TraceRecord& r : recorder.records()) {
    json::Object o;
    o.emplace_back("type", "record");
    o.emplace_back("source", source);
    o.emplace_back("kind", trace_kind_name(r.kind));
    o.emplace_back("when_ns", r.when.ns());
    o.emplace_back("subject", r.subject);
    o.emplace_back("detail", r.detail);
    o.emplace_back("value", r.value);
    o.emplace_back("seq", r.seq);
    out_ << json::Value{std::move(o)}.dump() << '\n';
  }
}

void DumpWriter::add_metrics(const MetricsSnapshot& snapshot) {
  for (const MetricValue& m : snapshot.entries) {
    json::Object o;
    o.emplace_back("type", "metric");
    o.emplace_back("name", m.name);
    o.emplace_back("kind", instrument_kind_name(m.kind));
    o.emplace_back("deterministic", m.deterministic);
    o.emplace_back("updates", m.updates);
    if (m.sample_period != 1) o.emplace_back("sample_period", m.sample_period);
    switch (m.kind) {
      case InstrumentKind::kCounter:
        o.emplace_back("value", m.value);
        break;
      case InstrumentKind::kGauge:
        o.emplace_back("value", m.value);
        o.emplace_back("high_water", m.high_water);
        break;
      case InstrumentKind::kHistogram:
        o.emplace_back("count", m.count);
        o.emplace_back("sum", m.sum);
        o.emplace_back("min", m.min);
        o.emplace_back("max", m.max);
        o.emplace_back("p50", m.p50);
        o.emplace_back("p90", m.p90);
        o.emplace_back("p99", m.p99);
        break;
    }
    out_ << json::Value{std::move(o)}.dump() << '\n';
  }
}

Result<Dump> load_jsonl(std::istream& in) {
  Dump dump;
  std::string line;
  std::size_t line_no = 0;
  const auto cell = [&dump]() -> DumpCell& {
    if (dump.cells.empty()) dump.cells.emplace_back();
    return dump.cells.back();
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Result<json::Value> parsed = json::parse(line);
    if (!parsed.ok())
      return Result<Dump>::failure("line " + std::to_string(line_no) + ": " +
                                   parsed.error().message);
    const json::Value& v = parsed.value();
    const std::string type = v.get_string("type");
    if (type == "meta") {
      dump.cells.emplace_back();
      dump.cells.back().label = v.get_string("label");
    } else if (type == "span") {
      Span s;
      s.trace_id = static_cast<std::uint64_t>(v.get_int("trace"));
      s.span_id = static_cast<std::uint64_t>(v.get_int("span"));
      s.parent_id = static_cast<std::uint64_t>(v.get_int("parent"));
      Result<Phase> phase = phase_from(v.get_string("phase"));
      if (!phase.ok())
        return Result<Dump>::failure("line " + std::to_string(line_no) + ": " +
                                     phase.error().message);
      s.phase = phase.value();
      s.track = intern_symbol(v.get_string("track"));
      s.name = intern_symbol(v.get_string("name"));
      s.start = Instant::from_ns(v.get_int("start_ns"));
      s.end = Instant::from_ns(v.get_int("end_ns"));
      s.value = v.get_int("value");
      cell().spans.push_back(std::move(s));
    } else if (type == "record") {
      TraceRecord r;
      Result<TraceKind> kind = trace_kind_from(v.get_string("kind"));
      if (!kind.ok())
        return Result<Dump>::failure("line " + std::to_string(line_no) + ": " +
                                     kind.error().message);
      r.kind = kind.value();
      r.when = Instant::from_ns(v.get_int("when_ns"));
      r.subject = v.get_string("subject");
      r.detail = v.get_string("detail");
      r.value = v.get_int("value");
      r.seq = static_cast<std::uint64_t>(v.get_int("seq"));
      cell().records.emplace_back(v.get_string("source"), std::move(r));
    } else if (type == "metric") {
      MetricValue m;
      m.name = v.get_string("name");
      Result<InstrumentKind> kind = instrument_kind_from(v.get_string("kind"));
      if (!kind.ok())
        return Result<Dump>::failure("line " + std::to_string(line_no) + ": " +
                                     kind.error().message);
      m.kind = kind.value();
      const json::Value* det = v.find("deterministic");
      m.deterministic = det == nullptr || !det->is_bool() || det->as_bool();
      m.updates = static_cast<std::uint64_t>(v.get_int("updates"));
      m.sample_period = static_cast<std::uint32_t>(v.get_int("sample_period", 1));
      m.value = v.get_int("value");
      m.high_water = v.get_int("high_water");
      m.count = static_cast<std::uint64_t>(v.get_int("count"));
      m.sum = v.get_int("sum");
      m.min = v.get_int("min");
      m.max = v.get_int("max");
      m.p50 = v.get_int("p50");
      m.p90 = v.get_int("p90");
      m.p99 = v.get_int("p99");
      cell().metrics.entries.push_back(std::move(m));
    }
    // Unknown types: skip (forward compatibility).
  }
  return dump;
}

std::vector<Span> Dump::all_spans() const {
  std::vector<Span> out;
  // Cells are independent runs whose trace/span counters both restart at
  // 1; offset ids per cell so traces never merge across cells.
  std::uint64_t offset = 0;
  for (const DumpCell& cell : cells) {
    std::uint64_t max_id = 0;
    for (const Span& s : cell.spans) {
      Span copy = s;
      if (copy.trace_id != 0) copy.trace_id += offset;
      if (copy.span_id != 0) copy.span_id += offset;
      if (copy.parent_id != 0) copy.parent_id += offset;
      max_id = std::max({max_id, s.trace_id, s.span_id});
      out.push_back(std::move(copy));
    }
    offset += max_id;
  }
  return out;
}

std::vector<std::pair<std::string, TraceRecord>> Dump::all_records() const {
  std::vector<std::pair<std::string, TraceRecord>> out;
  for (const DumpCell& cell : cells)
    out.insert(out.end(), cell.records.begin(), cell.records.end());
  return out;
}

MetricsSnapshot Dump::merged_metrics() const {
  // The same cell legitimately appears in several inputs: a run
  // captured with both --trace-out and --metrics-out dumps identical
  // snapshots into each file, and passing both to decotrace used to
  // double every counter. Dedup on the full key -- cell label +
  // instrument name + complete snapshot content -- so replicas fold
  // once while genuinely distinct cells still sum.
  std::set<std::string> seen;
  const auto full_key = [](const std::string& label, const MetricValue& m) {
    std::string key = label;
    key += '\x1f';
    key += m.name;
    for (const std::int64_t field :
         {static_cast<std::int64_t>(m.kind), std::int64_t{m.deterministic},
          static_cast<std::int64_t>(m.updates), static_cast<std::int64_t>(m.sample_period),
          m.value, m.high_water, static_cast<std::int64_t>(m.count), m.sum, m.min, m.max, m.p50,
          m.p90, m.p99}) {
      key += '\x1f';
      key += std::to_string(field);
    }
    return key;
  };
  std::map<std::string, MetricValue> merged;
  for (const DumpCell& cell : cells) {
    for (const MetricValue& m : cell.metrics.entries) {
      if (!seen.insert(full_key(cell.label, m)).second) continue;
      auto [it, inserted] = merged.emplace(m.name, m);
      if (inserted) continue;
      MetricValue& acc = it->second;
      acc.updates += m.updates;
      switch (m.kind) {
        case InstrumentKind::kCounter:
          acc.value += m.value;
          break;
        case InstrumentKind::kGauge:
          acc.value = m.value;  // last cell's value
          acc.high_water = std::max(acc.high_water, m.high_water);
          break;
        case InstrumentKind::kHistogram:
          // Percentiles are not mergeable without the bins; keep the
          // extremes and totals, and the percentiles of the largest cell.
          if (m.count > acc.count) {
            acc.p50 = m.p50;
            acc.p90 = m.p90;
            acc.p99 = m.p99;
          }
          acc.count += m.count;
          acc.sum += m.sum;
          acc.min = acc.count == 0 ? m.min : std::min(acc.min, m.min);
          acc.max = std::max(acc.max, m.max);
          break;
      }
    }
  }
  MetricsSnapshot snap;
  for (auto& [name, m] : merged) snap.entries.push_back(std::move(m));
  return snap;
}

void write_chrome_trace(std::ostream& out, const std::vector<Span>& spans,
                        const std::vector<std::pair<std::string, TraceRecord>>& records) {
  // Track (thread) ids: sorted unique track names for determinism.
  std::map<std::string, int> tracks;
  for (const Span& s : spans) tracks.emplace(symbol_name(s.track), 0);
  for (const auto& [source, r] : records) tracks.emplace(source, 0);
  int next_tid = 1;
  for (auto& [name, tid] : tracks) tid = next_tid++;

  const auto us = [](Instant t) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t.ns()) / 1000.0);
    return std::string{buf};
  };

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  sep();
  out << R"({"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"decos"}})";
  for (const auto& [name, tid] : tracks) {
    sep();
    out << R"({"ph":"M","pid":1,"tid":)" << tid
        << R"(,"name":"thread_name","args":{"name":)" << json::escape(name) << "}}";
  }

  // Spans ordered by (start, span id) so output is stable.
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(), [](const Span* a, const Span* b) {
    if (a->start != b->start) return a->start < b->start;
    return a->span_id < b->span_id;
  });
  for (const Span* s : ordered) {
    sep();
    out << R"({"ph":"X","pid":1,"tid":)" << tracks[symbol_name(s->track)] << ",\"ts\":"
        << us(s->start)
        << ",\"dur\":" << us(Instant::origin() + (s->end - s->start)) << ",\"name\":"
        << json::escape(std::string{phase_name(s->phase)} + " " + symbol_name(s->name))
        << ",\"cat\":" << json::escape(phase_name(s->phase)) << ",\"args\":{\"trace\":"
        << s->trace_id << ",\"span\":" << s->span_id << ",\"parent\":" << s->parent_id
        << ",\"value\":" << s->value << "}}";
  }

  // Trace records as instant events on their source's track.
  std::vector<const std::pair<std::string, TraceRecord>*> rec_ordered;
  rec_ordered.reserve(records.size());
  for (const auto& r : records) rec_ordered.push_back(&r);
  std::sort(rec_ordered.begin(), rec_ordered.end(), [](const auto* a, const auto* b) {
    if (a->second.when != b->second.when) return a->second.when < b->second.when;
    return a->second.seq < b->second.seq;
  });
  for (const auto* r : rec_ordered) {
    sep();
    out << R"({"ph":"i","s":"t","pid":1,"tid":)" << tracks[r->first]
        << ",\"ts\":" << us(r->second.when) << ",\"name\":"
        << json::escape(std::string{trace_kind_name(r->second.kind)} + " " + r->second.subject)
        << ",\"args\":{\"detail\":" << json::escape(r->second.detail)
        << ",\"value\":" << r->second.value << "}}";
  }
  out << "\n]}\n";
}

}  // namespace decos::obs
