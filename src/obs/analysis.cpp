#include "obs/analysis.hpp"

#include <algorithm>
#include <unordered_map>

namespace decos::obs {

void LatencySet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::int64_t LatencySet::min() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.front();
}

std::int64_t LatencySet::max() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.back();
}

double LatencySet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const std::int64_t s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

std::int64_t LatencySet::percentile(double p) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 1.0) return samples_.back();
  // Nearest-rank (ceil) on the sorted samples.
  const auto rank =
      static_cast<std::size_t>(p * static_cast<double>(samples_.size()) + 0.999999);
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

Breakdown phase_breakdown(const std::vector<Span>& spans) {
  // Bucket spans per trace, preserving emission (= causal) order.
  std::unordered_map<std::uint64_t, std::vector<const Span*>> traces;
  std::vector<std::uint64_t> order;  // deterministic traversal
  for (const Span& s : spans) {
    if (s.trace_id == 0) continue;
    auto [it, inserted] = traces.try_emplace(s.trace_id);
    if (inserted) order.push_back(s.trace_id);
    it->second.push_back(&s);
  }

  Breakdown breakdown;
  for (const std::uint64_t trace_id : order) {
    std::vector<const Span*>& chain = traces[trace_id];
    std::sort(chain.begin(), chain.end(),
              [](const Span* a, const Span* b) { return a->span_id < b->span_id; });

    const Span* root = chain.front();

    // First-delivery pipeline landmarks, in causal (span id) order. A TT
    // state port re-sends its freshest instance every round, so one trace
    // accumulates bus/dissect/construct/deliver spans per round; the
    // phase breakdown measures the *first* completion of each stage --
    // the latency until the information reached the other side -- which
    // matches what the latency benches measure in-process.
    const Span* construct = nullptr;  // first construction in the trace
    for (const Span* s : chain) {
      if (s->phase == Phase::kConstruct) {
        construct = s;
        break;
      }
    }

    const Span* first_bus = nullptr;
    const Span* dissect = nullptr;
    const Span* repo_longest = nullptr;  // longest element wait before construction
    const Span* deliver = nullptr;       // first delivery after construction
    for (const Span* s : chain) {
      switch (s->phase) {
        case Phase::kBus:
          if (first_bus == nullptr) first_bus = s;
          break;
        case Phase::kDissect:
          if (dissect == nullptr) dissect = s;
          break;
        case Phase::kRepoWait:
          if ((construct == nullptr || s->span_id < construct->span_id) &&
              (repo_longest == nullptr || s->duration() > repo_longest->duration()))
            repo_longest = s;
          break;
        case Phase::kConstruct:
          break;
        case Phase::kDeliver:
          // Deliveries into the gateway's own input port precede the
          // construction span; the end-to-end delivery follows it. In a
          // gateway-less trace the first delivery is the end-to-end one.
          if (deliver == nullptr &&
              (construct == nullptr || s->span_id > construct->span_id))
            deliver = s;
          break;
        case Phase::kSend:
          break;
      }
      if (deliver != nullptr) break;  // pipeline complete
    }

    const Span* last = deliver != nullptr ? deliver : chain.back();
    std::string key = symbol_name(root->name);
    if (last->name != root->name) key += "->" + symbol_name(last->name);

    FlowStats& flow = breakdown[key];
    ++flow.traces;
    flow.phases["total"].add(last->end - root->start);
    if (first_bus != nullptr) flow.phases["ingress"].add(first_bus->end - root->start);
    if (dissect != nullptr && first_bus != nullptr)
      flow.phases["dissect"].add(dissect->end - first_bus->end);
    if (repo_longest != nullptr) flow.phases["repo_wait"].add(repo_longest->duration());
    if (construct != nullptr && repo_longest != nullptr)
      flow.phases["construct"].add(construct->end - repo_longest->end);
    if (deliver != nullptr) {
      if (construct != nullptr) {
        flow.phases["delivery"].add(deliver->end - construct->end);
      } else if (first_bus != nullptr) {
        flow.phases["delivery"].add(deliver->end - first_bus->end);
      }
    }
  }
  return breakdown;
}

ContainmentSummary containment_summary(
    const std::vector<std::pair<std::string, TraceRecord>>& records) {
  ContainmentSummary summary;
  for (const auto& [source, r] : records) {
    switch (r.kind) {
      case TraceKind::kFaultInjected:
        ++summary.faults_injected;
        break;
      case TraceKind::kFrameBlocked:
        ++summary.frames_blocked;
        break;
      case TraceKind::kGatewayBlocked: {
        ++summary.gateway_blocked;
        // Reason = detail up to the first " (" qualifier.
        std::string reason = r.detail.substr(0, r.detail.find(" ("));
        if (reason.empty()) reason = "unspecified";
        ++summary.blocked_reasons[reason];
        break;
      }
      case TraceKind::kAutomatonError:
        ++summary.automaton_errors;
        break;
      case TraceKind::kGatewayForwarded:
        ++summary.gateway_forwarded;
        break;
      default:
        break;
    }
  }
  return summary;
}

json::Value breakdown_to_json(const Breakdown& breakdown) {
  json::Array flows;
  for (const auto& [key, flow] : breakdown) {
    json::Object o;
    o.emplace_back("flow", key);
    o.emplace_back("traces", flow.traces);
    json::Object phases;
    for (const char* phase : kBreakdownPhases) {
      const auto it = flow.phases.find(phase);
      if (it == flow.phases.end() || it->second.empty()) continue;
      const LatencySet& set = it->second;
      json::Object p;
      p.emplace_back("n", set.count());
      p.emplace_back("min_ns", set.min());
      p.emplace_back("p50_ns", set.percentile(0.50));
      p.emplace_back("p90_ns", set.percentile(0.90));
      p.emplace_back("p99_ns", set.percentile(0.99));
      p.emplace_back("max_ns", set.max());
      p.emplace_back("mean_ns", set.mean());
      phases.emplace_back(phase, std::move(p));
    }
    o.emplace_back("phases", std::move(phases));
    flows.push_back(json::Value{std::move(o)});
  }
  return json::Value{std::move(flows)};
}

json::Value containment_to_json(const ContainmentSummary& summary) {
  json::Object o;
  o.emplace_back("faults_injected", summary.faults_injected);
  o.emplace_back("frames_blocked", summary.frames_blocked);
  o.emplace_back("gateway_blocked", summary.gateway_blocked);
  o.emplace_back("automaton_errors", summary.automaton_errors);
  o.emplace_back("gateway_forwarded", summary.gateway_forwarded);
  json::Object reasons;
  for (const auto& [reason, n] : summary.blocked_reasons) reasons.emplace_back(reason, n);
  o.emplace_back("blocked_reasons", std::move(reasons));
  return json::Value{std::move(o)};
}

std::vector<std::string> check_span_integrity(const std::vector<Span>& spans) {
  std::vector<std::string> violations;
  std::unordered_map<std::uint64_t, const Span*> by_id;
  for (const Span& s : spans) by_id[s.span_id] = &s;
  for (const Span& s : spans) {
    if (s.end < s.start)
      violations.push_back("span " + std::to_string(s.span_id) + " ends before it starts");
    if (s.parent_id == 0) continue;
    const auto it = by_id.find(s.parent_id);
    if (it == by_id.end()) {
      violations.push_back("span " + std::to_string(s.span_id) + " references missing parent " +
                           std::to_string(s.parent_id));
      continue;
    }
    const Span* parent = it->second;
    if (parent->trace_id != s.trace_id)
      violations.push_back("span " + std::to_string(s.span_id) + " (trace " +
                           std::to_string(s.trace_id) + ") has parent in trace " +
                           std::to_string(parent->trace_id));
    if (parent->start > s.end)
      violations.push_back("span " + std::to_string(s.span_id) +
                           " ends before its parent starts");
  }
  return violations;
}

}  // namespace decos::obs
