// Span/record analysis shared by bench binaries (in-process) and the
// decotrace CLI (offline, from a JSONL dump). Both readers run the exact
// same arithmetic over the same records, so their outputs agree to the
// nanosecond -- the E6 acceptance check relies on this.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"

namespace decos::obs {

/// Exact latency sample set (nearest-rank percentiles over the sorted
/// samples -- no binning, unlike the metrics histograms).
class LatencySet {
 public:
  void add(Duration d) {
    samples_.push_back(d.ns());
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  /// Nearest-rank percentile in ns; p in [0,1].
  std::int64_t percentile(double p) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
};

/// Phase labels of the per-trace breakdown, in pipeline order. "total"
/// is first span start -> last span end.
inline constexpr const char* kBreakdownPhases[] = {"ingress",   "dissect",  "repo_wait",
                                                   "construct", "delivery", "total"};

/// Per-flow phase latency sets. A flow is keyed by its message names:
/// "msgA" for same-name end-to-end traffic, "msgA->msgB" when a gateway
/// renamed/reconstructed the message.
struct FlowStats {
  std::map<std::string, LatencySet> phases;  // key: kBreakdownPhases entry
  std::size_t traces = 0;
};

using Breakdown = std::map<std::string, FlowStats>;

/// Group spans into traces and compute per-phase latencies:
///   ingress   = first bus delivery - root send
///   dissect   = dissection instant - preceding bus delivery
///   repo_wait = repository store -> fetch (max over elements)
///   construct = construction instant - repository fetch
///   delivery  = final port delivery - construction
///   total     = end-to-end
/// Phases whose spans are absent from a trace contribute no sample.
Breakdown phase_breakdown(const std::vector<Span>& spans);

/// Fault-containment summary from trace records.
struct ContainmentSummary {
  std::uint64_t faults_injected = 0;
  std::uint64_t frames_blocked = 0;     // bus guardian
  std::uint64_t gateway_blocked = 0;    // temporal/value/unknown suppression
  std::uint64_t automaton_errors = 0;
  std::uint64_t gateway_forwarded = 0;  // traffic that crossed a gateway
  std::map<std::string, std::uint64_t> blocked_reasons;  // detail prefix -> n
};

ContainmentSummary containment_summary(
    const std::vector<std::pair<std::string, TraceRecord>>& records);

json::Value breakdown_to_json(const Breakdown& breakdown);
json::Value containment_to_json(const ContainmentSummary& summary);

/// Validate parent/child integrity: every non-root span's parent exists
/// in the same trace and does not start after its child ends. Returns
/// human-readable violations (empty = consistent).
std::vector<std::string> check_span_integrity(const std::vector<Span>& spans);

}  // namespace decos::obs
