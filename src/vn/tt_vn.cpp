#include "vn/tt_vn.hpp"

#include <map>
#include <memory>

namespace decos::vn {

void TtVirtualNetwork::attach_sender(tt::Controller& controller, Port& port,
                                     const std::vector<std::size_t>& slot_indices) {
  const spec::MessageSpec* ms = message_spec(port.message());
  if (ms == nullptr)
    throw SpecError("virtual network '" + name() + "' has no message '" + port.message() + "'");
  if (port.spec().direction != spec::DataDirection::kOutput)
    throw SpecError("attach_sender requires an output port ('" + port.message() + "')");

  for (const std::size_t slot_index : slot_indices) {
    const tt::SlotSpec& slot = controller.schedule().slot(slot_index);
    if (slot.vn != id())
      throw SpecError("slot " + std::to_string(slot_index) + " is not assigned to VN '" + name() +
                      "' (encapsulation violation)");
    if (slot.payload_bytes < ms->wire_size())
      throw SpecError("slot " + std::to_string(slot_index) + " too small for message '" +
                      ms->name() + "'");
    slot_to_message_[slot_index] = ms->name();
    slot_to_spec_[slot_index] = ms;
    port.bind_trace(controller.simulator().spans(), "node" + std::to_string(controller.id()));
    const bool state_port = port.spec().semantics == spec::InfoSemantics::kState;
    controller.set_slot_source(
        slot_index,
        [&port, ms, &controller, state_port]() -> std::optional<tt::Controller::SlotPayload> {
          // Encode straight out of the port's storage into a pooled
          // buffer: no instance copy, no per-frame allocation. State
          // ports are borrowed (peek_read keeps the read counter
          // honest); event ports are consumed after the borrow.
          const spec::MessageInstance* instance = state_port ? port.peek_read() : port.peek();
          if (instance == nullptr) return std::nullopt;  // nothing produced yet: life-sign only
          std::vector<std::byte> bytes = controller.bus().acquire_payload();
          const Status st = spec::encode_into(*ms, *instance, bytes);
          const std::uint64_t trace_id = instance->trace_id();
          const std::uint64_t span_id = instance->span_id();
          if (!state_port) port.drop_front();
          if (!st.ok()) {  // value fault kept local to the VN
            controller.bus().recycle_payload(std::move(bytes));
            return std::nullopt;
          }
          return tt::Controller::SlotPayload{std::move(bytes), trace_id, span_id};
        });
  }
}

void TtVirtualNetwork::attach_receiver(tt::Controller& controller, Port& port) {
  if (message_spec(port.message()) == nullptr)
    throw SpecError("virtual network '" + name() + "' has no message '" + port.message() + "'");
  if (port.spec().direction != spec::DataDirection::kInput)
    throw SpecError("attach_receiver requires an input port ('" + port.message() + "')");
  register_input(controller.id(), port.message(), port);
  ensure_listener(controller);
}

const std::string* TtVirtualNetwork::message_of_slot(std::size_t slot_index) const {
  const auto it = slot_to_message_.find(slot_index);
  return it == slot_to_message_.end() ? nullptr : &it->second;
}

void TtVirtualNetwork::ensure_listener(tt::Controller& controller) {
  if (!listening_nodes_.insert(controller.id()).second) return;
  // Per-listener (= per-node) decode scratch, one warmed instance per
  // slot: decode_into overwrites values in place, so the steady-state
  // receive path allocates nothing. Listener-owned (not a VN member) so
  // partitioned runs never share scratch across node threads.
  auto scratch = std::make_shared<std::map<std::size_t, spec::MessageInstance>>();
  controller.add_frame_listener(
      [this, &controller, scratch](const tt::Frame& frame, Instant, Duration) {
        if (frame.vn != id() || frame.payload.empty()) return;
        const auto it = slot_to_spec_.find(frame.slot_index);
        if (it == slot_to_spec_.end()) return;
        spec::MessageInstance& instance = (*scratch)[frame.slot_index];
        if (!spec::decode_into(*it->second, frame.payload, instance).ok())
          return;  // malformed payload: drop at the VN boundary
        instance.set_send_time(frame.sent_at);
        instance.set_trace(frame.trace_id, frame.span_id);
        deposit_to_inputs(controller, instance, frame.payload.size());
      });
}

}  // namespace decos::vn
