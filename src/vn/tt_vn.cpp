#include "vn/tt_vn.hpp"

namespace decos::vn {

void TtVirtualNetwork::attach_sender(tt::Controller& controller, Port& port,
                                     const std::vector<std::size_t>& slot_indices) {
  const spec::MessageSpec* ms = message_spec(port.message());
  if (ms == nullptr)
    throw SpecError("virtual network '" + name() + "' has no message '" + port.message() + "'");
  if (port.spec().direction != spec::DataDirection::kOutput)
    throw SpecError("attach_sender requires an output port ('" + port.message() + "')");

  for (const std::size_t slot_index : slot_indices) {
    const tt::SlotSpec& slot = controller.schedule().slot(slot_index);
    if (slot.vn != id())
      throw SpecError("slot " + std::to_string(slot_index) + " is not assigned to VN '" + name() +
                      "' (encapsulation violation)");
    if (slot.payload_bytes < ms->wire_size())
      throw SpecError("slot " + std::to_string(slot_index) + " too small for message '" +
                      ms->name() + "'");
    slot_to_message_[slot_index] = ms->name();
    port.bind_trace(controller.simulator().spans(), "node" + std::to_string(controller.id()));
    controller.set_slot_source(
        slot_index, [&port, ms]() -> std::optional<tt::Controller::SlotPayload> {
          auto instance = port.read();
          if (!instance) return std::nullopt;  // nothing produced yet: life-sign only
          auto bytes = spec::encode(*ms, *instance);
          if (!bytes.ok()) return std::nullopt;  // value fault kept local to the VN
          return tt::Controller::SlotPayload{std::move(bytes.value()), instance->trace_id(),
                                             instance->span_id()};
        });
  }
}

void TtVirtualNetwork::attach_receiver(tt::Controller& controller, Port& port) {
  if (message_spec(port.message()) == nullptr)
    throw SpecError("virtual network '" + name() + "' has no message '" + port.message() + "'");
  if (port.spec().direction != spec::DataDirection::kInput)
    throw SpecError("attach_receiver requires an input port ('" + port.message() + "')");
  register_input(controller.id(), port.message(), port);
  ensure_listener(controller);
}

const std::string* TtVirtualNetwork::message_of_slot(std::size_t slot_index) const {
  const auto it = slot_to_message_.find(slot_index);
  return it == slot_to_message_.end() ? nullptr : &it->second;
}

void TtVirtualNetwork::ensure_listener(tt::Controller& controller) {
  if (!listening_nodes_.insert(controller.id()).second) return;
  controller.add_frame_listener(
      [this, &controller](const tt::Frame& frame, Instant, Duration) {
        if (frame.vn != id() || frame.payload.empty()) return;
        const std::string* message_name = message_of_slot(frame.slot_index);
        if (message_name == nullptr) return;
        const spec::MessageSpec* ms = message_spec(*message_name);
        if (ms == nullptr) return;
        auto instance = spec::decode(*ms, frame.payload);
        if (!instance.ok()) return;  // malformed payload: drop at the VN boundary
        instance.value().set_send_time(frame.sent_at);
        instance.value().set_trace(frame.trace_id, frame.span_id);
        deposit_to_inputs(controller, instance.value(), frame.payload.size());
      });
}

}  // namespace decos::vn
