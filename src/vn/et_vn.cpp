#include "vn/et_vn.hpp"

#include <algorithm>
#include <memory>

namespace decos::vn {

void EtVirtualNetwork::preregister_metrics(sim::Simulator& simulator) {
  VirtualNetwork::preregister_metrics(simulator);
  if (pending_depth_ == nullptr)
    pending_depth_ = &simulator.metrics().gauge("vn." + name() + ".pending_depth");
}

int EtVirtualNetwork::priority_of(const std::string& message_name) const {
  const auto it = priorities_.find(message_name);
  return it == priorities_.end() ? 1000 : it->second;
}

void EtVirtualNetwork::attach_node(tt::Controller& controller,
                                   const std::vector<std::size_t>& slot_indices) {
  const tt::NodeId node = controller.id();
  queues_.try_emplace(node);
  for (const std::size_t slot_index : slot_indices) {
    const tt::SlotSpec& slot = controller.schedule().slot(slot_index);
    if (slot.vn != id())
      throw SpecError("slot " + std::to_string(slot_index) + " is not assigned to VN '" + name() +
                      "' (encapsulation violation)");
    controller.set_slot_source(slot_index, [this, node] { return pop_next(node); });
  }
}

bool EtVirtualNetwork::send(tt::Controller& controller, const spec::MessageInstance& instance) {
  const spec::MessageSpec* ms = message_spec(instance.message());
  if (ms == nullptr)
    throw SpecError("virtual network '" + name() + "' has no message '" + instance.message() + "'");
  auto it = queues_.find(controller.id());
  if (it == queues_.end())
    throw SpecError("node " + std::to_string(controller.id()) + " is not attached to VN '" +
                    name() + "'");
  // Encode into a pooled buffer: the bus recycles it once the frame
  // leaves the medium, so steady-state sends allocate nothing.
  std::vector<std::byte> bytes = controller.bus().acquire_payload();
  if (const Status st = spec::encode_into(*ms, instance, bytes); !st.ok())
    throw SpecError(st.error());

  std::vector<Pending>& queue = it->second;
  if (queue.size() >= pending_capacity_) {
    controller.bus().recycle_payload(std::move(bytes));
    ++overloads_;
    return false;
  }
  std::uint64_t trace_id = instance.trace_id();
  std::uint64_t span_id = instance.span_id();
  obs::TraceCollector& spans = controller.simulator().spans();
  if (trace_id == 0 && spans.enabled()) {
    // ET sends bypass output ports, so the send queue is the trace root.
    const Instant now = controller.simulator().now();
    trace_id = spans.new_trace();
    span_id = spans.emit(trace_id, 0, obs::Phase::kSend,
                         "node" + std::to_string(controller.id()), instance.message(), now, now);
  }
  queue.push_back(
      Pending{priority_of(instance.message()), seq_++, std::move(bytes), trace_id, span_id});
  if (pending_depth_ == nullptr)
    pending_depth_ = &controller.simulator().metrics().gauge("vn." + name() + ".pending_depth");
  pending_depth_->set(static_cast<std::int64_t>(queue.size()));
  return true;
}

void EtVirtualNetwork::attach_receiver(tt::Controller& controller, Port& port) {
  if (message_spec(port.message()) == nullptr)
    throw SpecError("virtual network '" + name() + "' has no message '" + port.message() + "'");
  if (port.spec().direction != spec::DataDirection::kInput)
    throw SpecError("attach_receiver requires an input port ('" + port.message() + "')");
  register_input(controller.id(), port.message(), port);
  ensure_listener(controller);
}

std::size_t EtVirtualNetwork::pending(tt::NodeId node) const {
  const auto it = queues_.find(node);
  return it == queues_.end() ? 0 : it->second.size();
}

std::optional<tt::Controller::SlotPayload> EtVirtualNetwork::pop_next(tt::NodeId node) {
  auto it = queues_.find(node);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  std::vector<Pending>& queue = it->second;
  // Arbitration: lowest priority value wins, FIFO among equals.
  const auto best = std::min_element(queue.begin(), queue.end(), [](const Pending& a, const Pending& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  });
  tt::Controller::SlotPayload payload{std::move(best->payload), best->trace_id, best->span_id};
  queue.erase(best);
  return payload;
}

void EtVirtualNetwork::ensure_listener(tt::Controller& controller) {
  if (!listening_nodes_.insert(controller.id()).second) return;
  // Per-listener (= per-node) decode scratch, one warmed instance per
  // message: payloads self-identify, so scratch is keyed by the interned
  // message name. Listener-owned so partitioned runs never share scratch
  // across node threads.
  auto scratch = std::make_shared<std::map<Symbol, spec::MessageInstance>>();
  controller.add_frame_listener(
      [this, &controller, scratch](const tt::Frame& frame, Instant, Duration) {
        if (frame.vn != id() || frame.payload.empty()) return;
        const spec::MessageSpec* ms = identify(frame.payload);
        if (ms == nullptr) return;  // unknown name: drop at the VN boundary
        spec::MessageInstance& instance = (*scratch)[ms->name_sym()];
        if (!spec::decode_into(*ms, frame.payload, instance).ok()) return;
        instance.set_send_time(frame.sent_at);
        instance.set_trace(frame.trace_id, frame.span_id);
        deposit_to_inputs(controller, instance, frame.payload.size());
      });
}

}  // namespace decos::vn
