// Event-triggered virtual network (paper Section II-E).
//
// A CAN-inspired overlay: messages carry explicit names (static key
// fields, like CAN identifiers) and are disseminated on demand at a
// priori unknown instants. Each participating node owns a share of the
// VN's slots; pending transmissions are queued per node and served in
// priority order (lower priority value wins, CAN-style) at the node's
// next slot. Latency is therefore load-dependent and only
// probabilistically bounded -- the trade-off the paper describes for non
// safety-critical DASes (resources biased towards average demand,
// occasional timing failures under worst-case bursts).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "vn/virtual_network.hpp"

namespace decos::vn {

class EtVirtualNetwork final : public VirtualNetwork {
 public:
  EtVirtualNetwork(std::string name, tt::VnId id, std::size_t pending_capacity = 64)
      : VirtualNetwork{std::move(name), id, spec::ControlParadigm::kEventTriggered},
        pending_capacity_{pending_capacity} {}

  /// Static priority of a message (lower value = higher priority).
  void set_priority(const std::string& message_name, int priority) {
    priorities_[message_name] = priority;
  }
  int priority_of(const std::string& message_name) const;

  /// Give the node of `controller` access to this VN through the given
  /// slots (its bandwidth share). Must be called once per sending node.
  void attach_node(tt::Controller& controller, const std::vector<std::size_t>& slot_indices);

  /// Request transmission of an instance from this node. Returns false
  /// if the node's pending queue is full (overload; counted).
  bool send(tt::Controller& controller, const spec::MessageInstance& instance);

  /// Bind an input port as consumer (payloads self-identify via keys).
  void attach_receiver(tt::Controller& controller, Port& port);

  std::uint64_t overloads() const { return overloads_; }
  std::size_t pending(tt::NodeId node) const;

  /// Adds the lazy per-node pending-depth gauge to the base set (S28
  /// pre-registration rule; see VirtualNetwork::preregister_metrics).
  void preregister_metrics(sim::Simulator& simulator) override;

 private:
  struct Pending {
    int priority;
    std::uint64_t seq;  // FIFO among equal priorities
    std::vector<std::byte> payload;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
  };

  void ensure_listener(tt::Controller& controller);
  std::optional<tt::Controller::SlotPayload> pop_next(tt::NodeId node);

  std::size_t pending_capacity_;
  std::map<std::string, int> priorities_;
  std::map<tt::NodeId, std::vector<Pending>> queues_;
  std::set<tt::NodeId> listening_nodes_;
  std::uint64_t seq_ = 0;
  std::uint64_t overloads_ = 0;
  obs::Gauge* pending_depth_ = nullptr;  // vn.<name>.pending_depth (high-water)
};

}  // namespace decos::vn
