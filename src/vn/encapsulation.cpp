#include "vn/encapsulation.hpp"

namespace decos::vn {

Result<tt::TdmaSchedule> EncapsulationService::build_schedule(
    Duration round_length, std::size_t cluster_size, const std::vector<VnAllocation>& allocations,
    std::size_t core_payload_bytes) {
  std::size_t total_slots = cluster_size;  // core life-sign slots
  for (const auto& a : allocations) total_slots += a.sender_slots.size();
  if (total_slots == 0) return Result<tt::TdmaSchedule>::failure("no slots requested");
  const Duration slot_len = round_length / static_cast<std::int64_t>(total_slots);
  if (slot_len <= Duration::zero())
    return Result<tt::TdmaSchedule>::failure("round too short for " + std::to_string(total_slots) +
                                             " slots");

  tt::TdmaSchedule schedule{round_length};
  std::size_t index = 0;
  const auto add = [&](tt::NodeId owner, tt::VnId vn, std::size_t bytes) {
    tt::SlotSpec slot;
    slot.offset = slot_len * static_cast<std::int64_t>(index++);
    slot.duration = slot_len;
    slot.owner = owner;
    slot.vn = vn;
    slot.payload_bytes = bytes;
    schedule.add_slot(slot);
  };

  for (std::size_t node = 0; node < cluster_size; ++node)
    add(static_cast<tt::NodeId>(node), tt::kCoreVn, core_payload_bytes);
  for (const auto& a : allocations) {
    for (const tt::NodeId sender : a.sender_slots) {
      if (sender >= cluster_size)
        return Result<tt::TdmaSchedule>::failure("VN " + std::to_string(a.vn) +
                                                 " references node " + std::to_string(sender) +
                                                 " outside the cluster");
      add(sender, a.vn, a.payload_bytes);
    }
  }
  if (auto st = schedule.validate(); !st.ok()) return st.error();
  return schedule;
}

Status EncapsulationService::check_attach(const std::string& job_das, tt::VnId vn) const {
  const auto it = das_of_.find(vn);
  if (it == das_of_.end())
    return Status::failure("VN " + std::to_string(vn) + " is not registered");
  if (it->second != job_das) {
    ++violations_;
    return Status::failure("encapsulation violation: job of DAS '" + job_das +
                           "' may not access the virtual network of DAS '" + it->second + "'");
  }
  return Status::success();
}

}  // namespace decos::vn
