// Virtual networks: encapsulated overlay communication systems on top of
// the time-triggered physical network (paper Section II-A and [3]).
//
// Each DAS owns one virtual network. A virtual network's traffic rides
// exclusively in the TDMA slots assigned to it by the encapsulation
// service, which is what gives it temporal properties independent of all
// other virtual networks (experiment E7). Message payloads never leave
// the VN unless a virtual gateway explicitly redirects them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "spec/link_spec.hpp"
#include "spec/message.hpp"
#include "tt/controller.hpp"
#include "vn/port.hpp"

namespace decos::vn {

/// Common base of the time-triggered and event-triggered overlays: the
/// message namespace (each VN has its own namespace, Section II-E) and
/// accounting shared by both.
class VirtualNetwork {
 public:
  VirtualNetwork(std::string name, tt::VnId id, spec::ControlParadigm paradigm)
      : name_{std::move(name)},
        id_{id},
        paradigm_{paradigm},
        deliver_track_{intern_symbol("vn:" + name_)} {}
  virtual ~VirtualNetwork() = default;

  VirtualNetwork(const VirtualNetwork&) = delete;
  VirtualNetwork& operator=(const VirtualNetwork&) = delete;

  const std::string& name() const { return name_; }
  tt::VnId id() const { return id_; }
  spec::ControlParadigm paradigm() const { return paradigm_; }

  /// The DAS this virtual network belongs to (encapsulation boundary).
  const std::string& das() const { return das_; }
  void set_das(std::string das) { das_ = std::move(das); }

  /// Register a message in this VN's namespace. Message names are unique
  /// per VN but may collide freely with names in other VNs (incoherent
  /// naming is resolved at gateways, Section III-A.1).
  void register_message(spec::MessageSpec message_spec);
  const spec::MessageSpec* message_spec(const std::string& message_name) const;
  const std::vector<spec::MessageSpec>& messages() const { return message_specs_; }

  /// Identify a payload by its static key fields.
  const spec::MessageSpec* identify(std::span<const std::byte> payload) const;

  // -- accounting (E2/E7) ---------------------------------------------------
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// Eagerly register every instrument this VN can ever touch, including
  /// the normally lazy overflow counter. Required before running on a
  /// partitioned kernel (S28): a parallel phase must never be the first
  /// to register an instrument, because registration order feeds the
  /// telemetry fold order and must not depend on thread interleaving.
  virtual void preregister_metrics(sim::Simulator& simulator);

 protected:
  /// Deposit `instance` into every input port registered for its message
  /// on the node served by `controller`. Takes the instance by mutable
  /// reference: a traced delivery restamps the span in place instead of
  /// copying the instance (callers pass per-listener decode scratch they
  /// own, so the frame path stays allocation-free).
  void deposit_to_inputs(tt::Controller& controller, spec::MessageInstance& instance,
                         std::size_t wire_bytes);

  /// Input-port registry: (node, message) -> ports.
  void register_input(tt::NodeId node, const std::string& message_name, Port& port);

  /// Register (once) and cache this VN's instruments in the simulator's
  /// registry: vn.<name>.{messages_delivered,bytes_delivered,queue_depth}.
  void ensure_metrics(sim::Simulator& simulator);

 private:
  std::string name_;
  tt::VnId id_;
  spec::ControlParadigm paradigm_;
  // Track label of delivery spans ("vn:<name>"), interned once so the
  // per-frame emit takes the Symbol fast path.
  Symbol deliver_track_;
  std::string das_;
  std::vector<spec::MessageSpec> message_specs_;
  // Keyed by interned message Symbol: the per-frame lookup builds its key
  // from the instance's cached Symbol instead of copying a string.
  std::map<std::pair<tt::NodeId, Symbol>, std::vector<Port*>> inputs_;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;

  obs::Counter* delivered_metric_ = nullptr;  // vn.<name>.messages_delivered
  obs::Counter* bytes_metric_ = nullptr;      // vn.<name>.bytes_delivered
  obs::Gauge* queue_depth_metric_ = nullptr;  // vn.<name>.queue_depth (high-water)
  // vn.<name>.deliver_overflow: consumer-port event queues that dropped
  // the delivered instance. Registered lazily on the first drop so
  // healthy runs keep their dead-instrument audit clean.
  obs::Counter* deliver_overflow_metric_ = nullptr;
  sim::Simulator* metrics_host_ = nullptr;
};

}  // namespace decos::vn
