// Runtime ports (paper Section II-A).
//
// A port is the access point between a job (or gateway) and the virtual
// network of its DAS. State ports contain a memory element overwritten in
// place by newer message instances; event ports queue instances so each
// is processed exactly once. Push input ports notify the attached
// consumer on deposit; pull input ports are polled by the consumer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "obs/span.hpp"
#include "spec/message.hpp"
#include "spec/port_spec.hpp"
#include "util/time.hpp"

namespace decos::vn {

/// A job-side message port bound to one message.
class Port {
 public:
  explicit Port(spec::PortSpec port_spec) : spec_{std::move(port_spec)} {
    spec_.validate().check();
  }

  const spec::PortSpec& spec() const { return spec_; }
  const std::string& message() const { return spec_.message; }

  // -- producer side (output ports) / VN side (input ports) ---------------
  /// Deposit a message instance into the port. For state ports this
  /// overwrites in place; for event ports it enqueues (returns false and
  /// counts an overflow when the queue is full).
  bool deposit(spec::MessageInstance instance, Instant now);

  // -- consumer side -------------------------------------------------------
  /// Read the port. State ports return a copy of the freshest instance
  /// without consuming it; event ports dequeue the oldest instance.
  std::optional<spec::MessageInstance> read();

  /// Non-consuming check.
  bool has_data() const {
    return spec_.semantics == spec::InfoSemantics::kState ? latest_.has_value() : !queue_.empty();
  }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Instant of the most recent deposit (state ports: t_update).
  std::optional<Instant> last_update() const { return last_update_; }

  /// Push notification, fired after each successful deposit when the
  /// port's interaction mode is push.
  void set_notify(std::function<void(Port&)> notify) { notify_ = std::move(notify); }

  /// Make this port a trace origin: untraced instances deposited here get
  /// a fresh trace id and a root send span on `track` (the producer's
  /// identity, e.g. "node1"). Wired automatically for output ports when a
  /// component attaches to a virtual network.
  void bind_trace(obs::TraceCollector& collector, std::string track) {
    collector_ = &collector;
    track_ = std::move(track);
  }

  // -- counters -------------------------------------------------------------
  std::uint64_t deposits() const { return deposits_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t overflows() const { return overflows_; }

 private:
  spec::PortSpec spec_;
  std::optional<spec::MessageInstance> latest_;     // state semantics
  std::deque<spec::MessageInstance> queue_;         // event semantics
  std::optional<Instant> last_update_;
  std::function<void(Port&)> notify_;
  obs::TraceCollector* collector_ = nullptr;  // trace origin when set
  std::string track_;
  std::uint64_t deposits_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t overflows_ = 0;
};

}  // namespace decos::vn
