// Runtime ports (paper Section II-A).
//
// A port is the access point between a job (or gateway) and the virtual
// network of its DAS. State ports contain a memory element overwritten in
// place by newer message instances; event ports queue instances so each
// is processed exactly once. Push input ports notify the attached
// consumer on deposit; pull input ports are polled by the consumer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"
#include "spec/message.hpp"
#include "spec/port_spec.hpp"
#include "util/time.hpp"

namespace decos::vn {

/// A job-side message port bound to one message.
class Port {
 public:
  explicit Port(spec::PortSpec port_spec) : spec_{std::move(port_spec)} {
    spec_.validate().check();
    if (spec_.semantics == spec::InfoSemantics::kEvent)
      ring_.resize(spec_.queue_capacity > 0 ? spec_.queue_capacity : 1);
  }

  const spec::PortSpec& spec() const { return spec_; }
  const std::string& message() const { return spec_.message; }

  // -- producer side (output ports) / VN side (input ports) ---------------
  /// Deposit a message instance into the port. For state ports this
  /// overwrites in place; for event ports it enqueues (returns false and
  /// counts an overflow when the queue is full). The const-ref overload
  /// copy-assigns into the port's existing storage (state semantics:
  /// the previous instance's field/string capacities are reused, so a
  /// warmed port absorbs deposits without heap allocation -- the gateway
  /// emits its compiled-plan scratch instance this way).
  bool deposit(const spec::MessageInstance& instance, Instant now);
  bool deposit(spec::MessageInstance&& instance, Instant now);

  // -- consumer side -------------------------------------------------------
  /// Read the port. State ports return a copy of the freshest instance
  /// without consuming it; event ports dequeue the oldest instance.
  std::optional<spec::MessageInstance> read();

  /// Borrow the freshest state instance / oldest queued event instance
  /// without copying or consuming (nullptr when empty).
  const spec::MessageInstance* peek() const {
    if (spec_.semantics == spec::InfoSemantics::kState) return latest_ ? &*latest_ : nullptr;
    return count_ == 0 ? nullptr : &ring_[head_];
  }

  /// Borrow like peek(), but count the access as a consumer read -- the
  /// non-copying replacement for read() on state ports (the TT slot
  /// source encodes straight out of the port's storage).
  const spec::MessageInstance* peek_read() {
    const spec::MessageInstance* instance = peek();
    if (instance != nullptr) ++reads_;
    return instance;
  }

  /// Consume the oldest queued event instance without copying it out;
  /// the ring slot keeps its storage for the next deposit (the hot-path
  /// complement of peek()). No-op on state ports.
  void drop_front() {
    if (spec_.semantics != spec::InfoSemantics::kEvent || count_ == 0) return;
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++reads_;
  }

  /// Non-consuming check.
  bool has_data() const {
    return spec_.semantics == spec::InfoSemantics::kState ? latest_.has_value() : count_ != 0;
  }
  std::size_t queue_depth() const { return count_; }

  /// Instant of the most recent deposit (state ports: t_update).
  std::optional<Instant> last_update() const { return last_update_; }

  /// Push notification, fired after each successful deposit when the
  /// port's interaction mode is push.
  void set_notify(std::function<void(Port&)> notify) { notify_ = std::move(notify); }

  /// Make this port a trace origin: untraced instances deposited here get
  /// a fresh trace id and a root send span on `track` (the producer's
  /// identity, e.g. "node1"). Wired automatically for output ports when a
  /// component attaches to a virtual network.
  void bind_trace(obs::TraceCollector& collector, std::string_view track) {
    collector_ = &collector;
    track_ = intern_symbol(track);
  }

  // -- counters -------------------------------------------------------------
  std::uint64_t deposits() const { return deposits_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t overflows() const { return overflows_; }

 private:
  spec::PortSpec spec_;
  std::optional<spec::MessageInstance> latest_;  // state semantics
  // Event semantics: fixed ring of queue_capacity slots. Slots keep their
  // field/string storage across deposit/consume cycles, so a warmed port
  // queues and drains without heap allocation.
  std::vector<spec::MessageInstance> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::optional<Instant> last_update_;
  std::function<void(Port&)> notify_;
  /// Trace-root stamping + bookkeeping shared by the deposit overloads;
  /// `stored` is the instance already placed in the port storage.
  bool finish_deposit(spec::MessageInstance& stored, Instant now);

  obs::TraceCollector* collector_ = nullptr;  // trace origin when set
  Symbol track_;
  std::uint64_t deposits_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t overflows_ = 0;
};

}  // namespace decos::vn
