// Encapsulation service (paper Sections II-C and III-B).
//
// Two responsibilities:
//  1. Bandwidth partitioning: build the cluster's TDMA schedule from the
//     per-VN bandwidth requests, so every virtual network gets dedicated
//     slots and its temporal properties are independent of all other VNs.
//  2. Visibility control: jobs may only attach ports to the virtual
//     network of their own DAS; all cross-DAS information flow must pass
//     through a virtual gateway.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tt/schedule.hpp"
#include "util/result.hpp"

namespace decos::vn {

/// Bandwidth request of one virtual network.
struct VnAllocation {
  tt::VnId vn = tt::kCoreVn;
  std::string das;                     // owning DAS
  std::size_t payload_bytes = 32;      // per slot
  /// One slot per listed node per round, in listing order (a node may
  /// appear several times for more bandwidth).
  std::vector<tt::NodeId> sender_slots;
};

class EncapsulationService {
 public:
  /// Build the cluster schedule: one core slot per node (life-sign /
  /// clock-sync traffic, VN 0) followed by the requested VN slots, all
  /// evenly spaced over `round_length`.
  static Result<tt::TdmaSchedule> build_schedule(Duration round_length, std::size_t cluster_size,
                                                 const std::vector<VnAllocation>& allocations,
                                                 std::size_t core_payload_bytes = 8);

  /// Record which DAS owns which VN (visibility registry).
  void register_vn(tt::VnId vn, const std::string& das) { das_of_[vn] = das; }

  /// Visibility check used by the platform layer when a job attaches a
  /// port: a job of DAS `job_das` may only touch the VN of its own DAS.
  Status check_attach(const std::string& job_das, tt::VnId vn) const;

  /// Violations rejected so far (complexity-control accounting).
  std::uint64_t violations() const { return violations_; }

 private:
  std::map<tt::VnId, std::string> das_of_;
  mutable std::uint64_t violations_ = 0;
};

}  // namespace decos::vn
