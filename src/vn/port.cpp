#include "vn/port.hpp"

namespace decos::vn {

bool Port::deposit(const spec::MessageInstance& instance, Instant now) {
  spec::MessageInstance* stored = nullptr;
  if (spec_.semantics == spec::InfoSemantics::kState) {
    if (latest_) {
      *latest_ = instance;  // copy-assign: reuse the previous instance's storage
    } else {
      latest_ = instance;
    }
    stored = &*latest_;
  } else {
    if (count_ >= ring_.size()) {
      ++overflows_;
      return false;
    }
    spec::MessageInstance& slot = ring_[(head_ + count_) % ring_.size()];
    slot = instance;  // copy-assign: recycle the slot's storage
    ++count_;
    stored = &slot;
  }
  return finish_deposit(*stored, now);
}

bool Port::deposit(spec::MessageInstance&& instance, Instant now) {
  spec::MessageInstance* stored = nullptr;
  if (spec_.semantics == spec::InfoSemantics::kState) {
    latest_ = std::move(instance);
    stored = &*latest_;
  } else {
    if (count_ >= ring_.size()) {
      ++overflows_;
      return false;
    }
    spec::MessageInstance& slot = ring_[(head_ + count_) % ring_.size()];
    slot = std::move(instance);
    ++count_;
    stored = &slot;
  }
  return finish_deposit(*stored, now);
}

bool Port::finish_deposit(spec::MessageInstance& stored, Instant now) {
  if (collector_ != nullptr && collector_->enabled() && stored.trace_id() == 0) {
    // First traced port on the instance's path: it becomes a trace root.
    const std::uint64_t trace = collector_->new_trace();
    const std::uint64_t span =
        collector_->emit(trace, 0, obs::Phase::kSend, track_, stored.message_sym(), now, now);
    stored.set_trace(trace, span);
  }
  last_update_ = now;
  ++deposits_;
  if (spec_.interaction == spec::Interaction::kPush && notify_) notify_(*this);
  return true;
}

std::optional<spec::MessageInstance> Port::read() {
  if (spec_.semantics == spec::InfoSemantics::kState) {
    if (!latest_) return std::nullopt;
    ++reads_;
    return latest_;  // non-consuming copy: state stays valid until overwritten
  }
  if (count_ == 0) return std::nullopt;
  std::optional<spec::MessageInstance> out{std::move(ring_[head_])};
  head_ = (head_ + 1) % ring_.size();
  --count_;
  ++reads_;
  return out;
}

}  // namespace decos::vn
