#include "vn/port.hpp"

namespace decos::vn {

bool Port::deposit(spec::MessageInstance instance, Instant now) {
  if (collector_ != nullptr && collector_->enabled() && instance.trace_id() == 0) {
    // First traced port on the instance's path: it becomes a trace root.
    const std::uint64_t trace = collector_->new_trace();
    const std::uint64_t span =
        collector_->emit(trace, 0, obs::Phase::kSend, track_, instance.message(), now, now);
    instance.set_trace(trace, span);
  }
  if (spec_.semantics == spec::InfoSemantics::kState) {
    latest_ = std::move(instance);
  } else {
    if (queue_.size() >= spec_.queue_capacity) {
      ++overflows_;
      return false;
    }
    queue_.push_back(std::move(instance));
  }
  last_update_ = now;
  ++deposits_;
  if (spec_.interaction == spec::Interaction::kPush && notify_) notify_(*this);
  return true;
}

std::optional<spec::MessageInstance> Port::read() {
  if (spec_.semantics == spec::InfoSemantics::kState) {
    if (!latest_) return std::nullopt;
    ++reads_;
    return latest_;  // non-consuming copy: state stays valid until overwritten
  }
  if (queue_.empty()) return std::nullopt;
  spec::MessageInstance instance = std::move(queue_.front());
  queue_.pop_front();
  ++reads_;
  return instance;
}

}  // namespace decos::vn
