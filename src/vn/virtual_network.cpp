#include "vn/virtual_network.hpp"

namespace decos::vn {

void VirtualNetwork::register_message(spec::MessageSpec message_spec) {
  message_spec.validate().check();
  if (this->message_spec(message_spec.name()) != nullptr)
    throw SpecError("virtual network '" + name_ + "' already has a message '" +
                    message_spec.name() + "'");
  message_specs_.push_back(std::move(message_spec));
}

const spec::MessageSpec* VirtualNetwork::message_spec(const std::string& message_name) const {
  for (const auto& m : message_specs_)
    if (m.name() == message_name) return &m;
  return nullptr;
}

const spec::MessageSpec* VirtualNetwork::identify(std::span<const std::byte> payload) const {
  for (const auto& m : message_specs_)
    if (spec::matches_key(m, payload)) return &m;
  return nullptr;
}

void VirtualNetwork::register_input(tt::NodeId node, const std::string& message_name, Port& port) {
  inputs_[{node, message_name}].push_back(&port);
}

void VirtualNetwork::deposit_to_inputs(tt::Controller& controller,
                                       const spec::MessageInstance& instance,
                                       std::size_t wire_bytes) {
  const auto it = inputs_.find({controller.id(), instance.message()});
  if (it == inputs_.end()) return;
  const Instant now = controller.simulator().now();
  for (Port* port : it->second) {
    port->deposit(instance, now);
    ++messages_delivered_;
    bytes_delivered_ += wire_bytes;
  }
}

}  // namespace decos::vn
