#include "vn/virtual_network.hpp"

namespace decos::vn {

void VirtualNetwork::register_message(spec::MessageSpec message_spec) {
  message_spec.validate().check();
  if (this->message_spec(message_spec.name()) != nullptr)
    throw SpecError("virtual network '" + name_ + "' already has a message '" +
                    message_spec.name() + "'");
  message_specs_.push_back(std::move(message_spec));
  // Compile the wire layout eagerly: registration is setup-time, and the
  // frame path must not pay (or allocate for) the first-use compile.
  message_specs_.back().layout();
}

const spec::MessageSpec* VirtualNetwork::message_spec(const std::string& message_name) const {
  for (const auto& m : message_specs_)
    if (m.name() == message_name) return &m;
  return nullptr;
}

const spec::MessageSpec* VirtualNetwork::identify(std::span<const std::byte> payload) const {
  for (const auto& m : message_specs_)
    if (spec::matches_key(m, payload)) return &m;
  return nullptr;
}

void VirtualNetwork::register_input(tt::NodeId node, const std::string& message_name, Port& port) {
  inputs_[{node, intern_symbol(message_name)}].push_back(&port);
}

void VirtualNetwork::preregister_metrics(sim::Simulator& simulator) {
  ensure_metrics(simulator);
  if (deliver_overflow_metric_ == nullptr)
    deliver_overflow_metric_ = &simulator.metrics().counter("vn." + name_ + ".deliver_overflow");
}

void VirtualNetwork::ensure_metrics(sim::Simulator& simulator) {
  metrics_host_ = &simulator;
  if (delivered_metric_ != nullptr) return;
  obs::MetricsRegistry& metrics = simulator.metrics();
  delivered_metric_ = &metrics.counter("vn." + name_ + ".messages_delivered");
  bytes_metric_ = &metrics.counter("vn." + name_ + ".bytes_delivered");
  queue_depth_metric_ = &metrics.gauge("vn." + name_ + ".queue_depth");
}

void VirtualNetwork::deposit_to_inputs(tt::Controller& controller,
                                       spec::MessageInstance& instance,
                                       std::size_t wire_bytes) {
  const auto it = inputs_.find({controller.id(), instance.message_sym()});
  if (it == inputs_.end()) return;
  ensure_metrics(controller.simulator());
  const Instant now = controller.simulator().now();
  if (instance.trace_id() != 0) {
    obs::TraceCollector& spans = controller.simulator().spans();
    const std::uint64_t span =
        spans.emit(instance.trace_id(), instance.span_id(), obs::Phase::kDeliver, deliver_track_,
                   instance.message_sym(), now, now, static_cast<std::int64_t>(wire_bytes));
    instance.set_trace(instance.trace_id(), span);
  }
  for (Port* port : it->second) {
    if (!port->deposit(instance, now)) {
      // Consumer-side drop (full event queue): surfaced lazily so the
      // instrument only exists in runs that actually overflowed.
      if (deliver_overflow_metric_ == nullptr)
        deliver_overflow_metric_ =
            &metrics_host_->metrics().counter("vn." + name_ + ".deliver_overflow");
      deliver_overflow_metric_->add();
    }
    ++messages_delivered_;
    delivered_metric_->add();
    bytes_delivered_ += wire_bytes;
    bytes_metric_->add(static_cast<std::int64_t>(wire_bytes));
    queue_depth_metric_->set(static_cast<std::int64_t>(port->queue_depth()));
  }
}

}  // namespace decos::vn
