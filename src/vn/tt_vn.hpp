// Time-triggered virtual network (paper Section II-E).
//
// Messages are transmitted at predetermined global points in time: each
// TT message is statically bound to one or more slots owned by its
// sending node. The sender's output port *is* the send buffer -- at the
// slot instant the freshest instance is encoded and transmitted (state
// semantics / update in place), giving a priori known send instants,
// error-detection capability and replica determinism.
#pragma once

#include <map>
#include <set>

#include "vn/virtual_network.hpp"

namespace decos::vn {

class TtVirtualNetwork final : public VirtualNetwork {
 public:
  TtVirtualNetwork(std::string name, tt::VnId id)
      : VirtualNetwork{std::move(name), id, spec::ControlParadigm::kTimeTriggered} {}

  /// Bind `port` (an output port on the node of `controller`) as the
  /// producer of `message`: the given slots (which must be owned by the
  /// node and assigned to this VN) transmit the port's freshest instance.
  void attach_sender(tt::Controller& controller, Port& port,
                     const std::vector<std::size_t>& slot_indices);

  /// Bind `port` (an input port on the node of `controller`) as a
  /// consumer of its message.
  void attach_receiver(tt::Controller& controller, Port& port);

  /// Message name carried by `slot_index` (implicit message naming: the
  /// slot position in the cluster cycle is the name).
  const std::string* message_of_slot(std::size_t slot_index) const;

 private:
  void ensure_listener(tt::Controller& controller);

  std::map<std::size_t, std::string> slot_to_message_;
  // Slot -> spec, resolved at attach time so the receive path decodes
  // without a name lookup. Valid under the existing lifecycle rule that
  // all messages are registered before senders attach (the sender-side
  // slot source already captures the spec pointer).
  std::map<std::size_t, const spec::MessageSpec*> slot_to_spec_;
  std::set<tt::NodeId> listening_nodes_;
};

}  // namespace decos::vn
