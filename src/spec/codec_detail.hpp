// Field-level codec primitives shared by the reference field-walk codec
// (message.cpp) and the compiled-layout codec (wire_layout.cpp).
//
// These are the single source of truth for how one field maps to wire
// bytes and, just as importantly, for the exact Status messages of
// value-domain faults: the compiled fast path bails into these helpers
// on any violation so its errors are string-identical to the reference
// path (the equivalence property test pins this).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "spec/message_spec.hpp"
#include "ta/value.hpp"
#include "util/result.hpp"

namespace decos::spec::codec_detail {

inline void put_uint(std::vector<std::byte>& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * (bytes - 1 - i))) & 0xFF));
  }
}

inline std::uint64_t get_uint(std::span<const std::byte> in, std::size_t offset,
                              std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v = (v << 8) | static_cast<std::uint64_t>(in[offset + i]);
  }
  return v;
}

inline std::int64_t sign_extend(std::uint64_t v, std::size_t bytes) {
  if (bytes == 8) return static_cast<std::int64_t>(v);
  const std::uint64_t sign_bit = 1ULL << (8 * bytes - 1);
  if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  return static_cast<std::int64_t>(v);
}

/// Big-endian store of the low `bytes` bytes of `v` at `out`.
inline void store_be(std::byte* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::byte>((v >> (8 * (bytes - 1 - i))) & 0xFF);
  }
}

/// Big-endian load of `bytes` bytes at `in`.
inline std::uint64_t load_be(const std::byte* in, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v = (v << 8) | static_cast<std::uint64_t>(in[i]);
  }
  return v;
}

/// Range check for integer fields; out-of-range values are value-domain
/// faults that must not silently wrap on the wire.
inline Status check_range(const FieldSpec& f, std::int64_t v) {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  switch (f.type) {
    case FieldType::kInt8: lo = -128; hi = 127; break;
    case FieldType::kInt16: lo = -32768; hi = 32767; break;
    case FieldType::kInt32: lo = std::numeric_limits<std::int32_t>::min(); hi = std::numeric_limits<std::int32_t>::max(); break;
    case FieldType::kInt64: return Status::success();
    case FieldType::kUInt8: lo = 0; hi = 255; break;
    case FieldType::kUInt16: lo = 0; hi = 65535; break;
    case FieldType::kUInt32: lo = 0; hi = 4294967295LL; break;
    case FieldType::kUInt64: return v >= 0 ? Status::success()
                                           : Status::failure("negative value for uint64 field '" + f.name + "'");
    default: return Status::success();
  }
  if (v < lo || v > hi)
    return Status::failure("value " + std::to_string(v) + " out of range for field '" + f.name +
                           "' (" + field_type_name(f.type) + ")");
  return Status::success();
}

inline Status encode_field(std::vector<std::byte>& out, const FieldSpec& f, const ta::Value& v) {
  switch (f.type) {
    case FieldType::kBoolean:
      put_uint(out, v.as_bool() ? 1 : 0, 1);
      return Status::success();
    case FieldType::kFloat32: {
      const auto bits = std::bit_cast<std::uint32_t>(static_cast<float>(v.as_real()));
      put_uint(out, bits, 4);
      return Status::success();
    }
    case FieldType::kFloat64: {
      const auto bits = std::bit_cast<std::uint64_t>(v.as_real());
      put_uint(out, bits, 8);
      return Status::success();
    }
    case FieldType::kString: {
      if (!v.is_string())
        return Status::failure("field '" + f.name + "' expects a string value");
      const std::string& s = v.as_string();
      if (s.size() > f.string_length)
        return Status::failure("string too long for field '" + f.name + "' (" +
                               std::to_string(s.size()) + " > " + std::to_string(f.string_length) + ")");
      for (std::size_t i = 0; i < f.string_length; ++i) {
        out.push_back(i < s.size() ? static_cast<std::byte>(s[i]) : std::byte{0});
      }
      return Status::success();
    }
    default: {
      const std::int64_t i = v.as_int();
      if (auto st = check_range(f, i); !st.ok()) return st;
      put_uint(out, static_cast<std::uint64_t>(i), f.wire_size());
      return Status::success();
    }
  }
}

/// Overwrite `out` with the field at `offset`. String fields append into
/// the value's existing string storage (capacity reuse); everything else
/// is a scalar assignment. The allocation-free core of decode_into().
inline void decode_field_into(ta::Value& out, std::span<const std::byte> in, std::size_t offset,
                              const FieldSpec& f) {
  switch (f.type) {
    case FieldType::kBoolean:
      out = ta::Value{get_uint(in, offset, 1) != 0};
      return;
    case FieldType::kFloat32:
      out = ta::Value{static_cast<double>(
          std::bit_cast<float>(static_cast<std::uint32_t>(get_uint(in, offset, 4))))};
      return;
    case FieldType::kFloat64:
      out = ta::Value{std::bit_cast<double>(get_uint(in, offset, 8))};
      return;
    case FieldType::kString: {
      std::string& s = out.mutable_string();
      s.clear();
      for (std::size_t i = 0; i < f.string_length; ++i) {
        const char c = static_cast<char>(in[offset + i]);
        if (c == '\0') break;
        s.push_back(c);
      }
      return;
    }
    case FieldType::kUInt8:
    case FieldType::kUInt16:
    case FieldType::kUInt32:
    case FieldType::kUInt64:
      out = ta::Value{static_cast<std::int64_t>(get_uint(in, offset, f.wire_size()))};
      return;
    default:
      out = ta::Value{sign_extend(get_uint(in, offset, f.wire_size()), f.wire_size())};
      return;
  }
}

inline ta::Value decode_field(std::span<const std::byte> in, std::size_t offset,
                              const FieldSpec& f) {
  ta::Value v;
  decode_field_into(v, in, offset, f);
  return v;
}

}  // namespace decos::spec::codec_detail
