// Compiled wire layouts (DESIGN.md S29): the codec-side analogue of the
// S23 compiled transfer plans.
//
// A WireLayout is compiled once per MessageSpec and flattens the spec's
// element/field tree into a dense offset/type-tag op table plus a
// pre-encoded template of all static fields. The hot encode path is then
// one resize + one memcpy of the template followed by a branch-light
// loop over dynamic-field ops at fixed offsets; the hot decode path is
// the same loop in reverse. No per-field FieldType switch over a sparse
// enum, no per-byte push_back, no string hashing.
//
// Equivalence contract (pinned by wire_layout_property_test): for every
// spec and instance/payload, the compiled path produces byte-identical
// buffers, value-identical instances and string-identical Status errors
// to the reference field-walk codec in message.cpp. Where the fast path
// cannot prove equivalence locally -- an instance whose static-field
// values differ from the spec's, a spec whose statics do not encode --
// it falls back to the reference path instead of approximating it. The
// on-error *content* of an encode output buffer is unspecified in both
// paths (only Status is contractual).
//
// A WireLayout holds no pointers into its MessageSpec (indices and
// copied static values only), so specs may be moved (e.g. vector
// growth) without invalidating a published layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ta/value.hpp"
#include "util/result.hpp"

namespace decos::spec {

class MessageInstance;
class MessageSpec;

class WireLayout {
 public:
  /// Flatten `spec` into an op table. Never fails: a spec whose static
  /// fields cannot be encoded (wrong type / out of range) simply
  /// compiles to a layout that always takes the reference path.
  static WireLayout compile(const MessageSpec& spec);

  /// Compiled counterparts of spec::encode_into / decode_into /
  /// matches_key. `spec` must be the spec this layout was compiled
  /// from (it is consulted for structural checks and cold error paths).
  Status encode_into(const MessageSpec& spec, const MessageInstance& instance,
                     std::vector<std::byte>& out) const;
  Status decode_into(const MessageSpec& spec, std::span<const std::byte> payload,
                     MessageInstance& scratch) const;
  bool matches_key(const MessageSpec& spec, std::span<const std::byte> payload) const;

  std::size_t wire_size() const { return wire_size_; }

 private:
  /// Dense op tags: every FieldType collapsed to width + signedness
  /// (kTimestamp is kI64 on the wire).
  enum class OpKind : std::uint8_t {
    kBool, kI8, kI16, kI32, kI64, kU8, kU16, kU32, kU64, kF32, kF64, kString,
  };

  struct FieldOp {
    OpKind kind = OpKind::kI32;
    bool is_static = false;
    /// matches_key: this static key field may be compared by memcmp
    /// against the template (sound only for in-range integer statics;
    /// booleans, strings and floats have non-injective encodings).
    bool key_memcmp = false;
    bool key = false;              // field of a key element with a static value
    std::uint32_t element = 0;     // element index in the spec
    std::uint32_t field = 0;       // field index within the element
    std::uint32_t offset = 0;      // wire offset
    std::uint32_t length = 0;      // kString: bytes on the wire
    std::int64_t lo = 0;           // integer range (inclusive)
    std::int64_t hi = 0;
    std::uint32_t static_idx = 0;  // into static_values_ when is_static
  };

  /// Op range [begin, end) of one element, in declaration order.
  struct ElementRange {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  bool static_equals(const FieldOp& op, const ta::Value& v) const;

  Status encode_dynamic(const MessageSpec& spec, const FieldOp& op, const ta::Value& v,
                        std::byte* out) const;

  std::size_t wire_size_ = 0;
  bool statics_encodable_ = true;  // false: encode always field-walks
  bool has_key_ = false;
  std::vector<FieldOp> ops_;               // all fields, declaration order
  std::vector<ElementRange> elements_;     // parallel to spec elements
  std::vector<ta::Value> static_values_;   // copied spec static values
  std::vector<std::byte> template_;        // statics pre-encoded, rest zero
};

}  // namespace decos::spec
