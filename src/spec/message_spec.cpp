#include "spec/message_spec.hpp"

#include <unordered_set>

#include "spec/wire_layout.hpp"

namespace decos::spec {

MessageSpec::MessageSpec(const MessageSpec& other)
    : loc{other.loc}, name_{other.name_}, name_sym_{other.name_sym_}, elements_{other.elements_} {}

MessageSpec& MessageSpec::operator=(const MessageSpec& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  name_sym_ = other.name_sym_;
  elements_ = other.elements_;
  loc = other.loc;
  invalidate_layout();
  return *this;
}

MessageSpec::MessageSpec(MessageSpec&& other) noexcept
    : loc{other.loc},
      name_{std::move(other.name_)},
      name_sym_{other.name_sym_},
      elements_{std::move(other.elements_)},
      layout_cache_{other.layout_cache_.exchange(nullptr, std::memory_order_acq_rel)} {}

MessageSpec& MessageSpec::operator=(MessageSpec&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  name_sym_ = other.name_sym_;
  elements_ = std::move(other.elements_);
  loc = other.loc;
  delete layout_cache_.exchange(other.layout_cache_.exchange(nullptr, std::memory_order_acq_rel),
                                std::memory_order_acq_rel);
  return *this;
}

MessageSpec::~MessageSpec() { delete layout_cache_.load(std::memory_order_acquire); }

const WireLayout& MessageSpec::layout() const {
  const WireLayout* cached = layout_cache_.load(std::memory_order_acquire);
  if (cached == nullptr) {
    const WireLayout* fresh = new WireLayout{WireLayout::compile(*this)};
    const WireLayout* expected = nullptr;
    if (layout_cache_.compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      cached = fresh;
    } else {
      delete fresh;  // another thread published first
      cached = expected;
    }
  }
  return *cached;
}

void MessageSpec::invalidate_layout() {
  delete layout_cache_.exchange(nullptr, std::memory_order_acq_rel);
}

std::size_t field_wire_size(FieldType type, std::size_t string_length) {
  switch (type) {
    case FieldType::kBoolean:
    case FieldType::kInt8:
    case FieldType::kUInt8:
      return 1;
    case FieldType::kInt16:
    case FieldType::kUInt16:
      return 2;
    case FieldType::kInt32:
    case FieldType::kUInt32:
    case FieldType::kFloat32:
      return 4;
    case FieldType::kInt64:
    case FieldType::kUInt64:
    case FieldType::kFloat64:
    case FieldType::kTimestamp:
      return 8;
    case FieldType::kString:
      return string_length;
  }
  return 0;
}

std::string field_type_name(FieldType type) {
  switch (type) {
    case FieldType::kBoolean: return "boolean";
    case FieldType::kInt8: return "int8";
    case FieldType::kInt16: return "int16";
    case FieldType::kInt32: return "int32";
    case FieldType::kInt64: return "int64";
    case FieldType::kUInt8: return "uint8";
    case FieldType::kUInt16: return "uint16";
    case FieldType::kUInt32: return "uint32";
    case FieldType::kUInt64: return "uint64";
    case FieldType::kFloat32: return "float32";
    case FieldType::kFloat64: return "float64";
    case FieldType::kTimestamp: return "timestamp";
    case FieldType::kString: return "string";
  }
  return "?";
}

Result<FieldType> parse_field_type(const std::string& name, int length_bits, bool is_unsigned) {
  if (name == "boolean" || name == "bool") return FieldType::kBoolean;
  if (name == "timestamp") return FieldType::kTimestamp;
  if (name == "string") return FieldType::kString;
  if (name == "integer" || name == "int" || name == "unsigned") {
    const bool u = is_unsigned || name == "unsigned";
    switch (length_bits == 0 ? 32 : length_bits) {
      case 8: return u ? FieldType::kUInt8 : FieldType::kInt8;
      case 16: return u ? FieldType::kUInt16 : FieldType::kInt16;
      case 32: return u ? FieldType::kUInt32 : FieldType::kInt32;
      case 64: return u ? FieldType::kUInt64 : FieldType::kInt64;
      default:
        return Result<FieldType>::failure("unsupported integer length " +
                                          std::to_string(length_bits));
    }
  }
  if (name == "float" || name == "floating" || name == "real") {
    switch (length_bits == 0 ? 64 : length_bits) {
      case 32: return FieldType::kFloat32;
      case 64: return FieldType::kFloat64;
      default:
        return Result<FieldType>::failure("unsupported float length " +
                                          std::to_string(length_bits));
    }
  }
  // Explicit spellings (int16, uint32, float64, ...).
  for (const FieldType t :
       {FieldType::kInt8, FieldType::kInt16, FieldType::kInt32, FieldType::kInt64,
        FieldType::kUInt8, FieldType::kUInt16, FieldType::kUInt32, FieldType::kUInt64,
        FieldType::kFloat32, FieldType::kFloat64}) {
    if (name == field_type_name(t)) return t;
  }
  return Result<FieldType>::failure("unknown field type '" + name + "'");
}

const FieldSpec* ElementSpec::field(const std::string& field_name) const {
  for (const auto& f : fields)
    if (f.name == field_name) return &f;
  return nullptr;
}

std::size_t ElementSpec::wire_size() const {
  std::size_t total = 0;
  for (const auto& f : fields) total += f.wire_size();
  return total;
}

const ElementSpec* MessageSpec::element(const std::string& element_name) const {
  for (const auto& e : elements_)
    if (e.name == element_name) return &e;
  return nullptr;
}

std::vector<const ElementSpec*> MessageSpec::convertible_elements() const {
  std::vector<const ElementSpec*> out;
  for (const auto& e : elements_)
    if (e.convertible) out.push_back(&e);
  return out;
}

std::size_t MessageSpec::wire_size() const {
  std::size_t total = 0;
  for (const auto& e : elements_) total += e.wire_size();
  return total;
}

Status MessageSpec::validate() const {
  if (name_.empty()) return Status::failure("message without a name");
  if (elements_.empty()) return Status::failure("message '" + name_ + "' has no elements");
  std::unordered_set<std::string> element_names;
  for (const auto& e : elements_) {
    if (e.name.empty()) return Status::failure("message '" + name_ + "': unnamed element");
    if (!element_names.insert(e.name).second)
      return Status::failure("message '" + name_ + "': duplicate element '" + e.name + "'");
    if (e.fields.empty())
      return Status::failure("message '" + name_ + "': element '" + e.name + "' has no fields");
    std::unordered_set<std::string> field_names;
    for (const auto& f : e.fields) {
      if (f.name.empty())
        return Status::failure("message '" + name_ + "': unnamed field in element '" + e.name + "'");
      if (!field_names.insert(f.name).second)
        return Status::failure("message '" + name_ + "': duplicate field '" + f.name +
                               "' in element '" + e.name + "'");
      if (f.type == FieldType::kString && f.string_length == 0)
        return Status::failure("message '" + name_ + "': string field '" + f.name +
                               "' needs a length");
      if (e.key && !f.is_static())
        return Status::failure("message '" + name_ + "': key element '" + e.name +
                               "' contains non-static field '" + f.name +
                               "' (message names are static)");
    }
  }
  return Status::success();
}

}  // namespace decos::spec
