// Syntactic specification (paper Section IV-B.1).
//
// A message is a compound structure of *elements*; each element is a
// structure of *fields*. A field is atomic at the virtual gateway and has
// a known type. Elements flagged `convertible` are the units of selective
// redirection and are stored in the gateway repository; elements flagged
// `key` form the message name -- the statically defined subset of a
// message's fields by which message instances are identified on the wire.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ta/value.hpp"
#include "util/result.hpp"
#include "util/source_loc.hpp"
#include "util/symbol.hpp"

namespace decos::spec {

/// Atomic field types. Integer widths are explicit because the wire
/// format is fixed-layout (the paper assumes interface definition
/// standards for elementary data types).
enum class FieldType {
  kBoolean,
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kUInt8,
  kUInt16,
  kUInt32,
  kUInt64,
  kFloat32,
  kFloat64,
  kTimestamp,  // 64-bit ns on the global time base
  kString,     // fixed-length, NUL-padded
};

/// Wire size of a field of the given type; strings use `string_length`.
std::size_t field_wire_size(FieldType type, std::size_t string_length);

/// Human-readable type name (matches the XML surface syntax).
std::string field_type_name(FieldType type);
/// Inverse of field_type_name plus the paper's spellings ("integer" with a
/// length attribute, "boolean", "timestamp", ...).
Result<FieldType> parse_field_type(const std::string& name, int length_bits, bool is_unsigned);

/// One field of an element.
struct FieldSpec {
  std::string name;
  FieldType type = FieldType::kInt32;
  std::size_t string_length = 0;          // for kString: bytes on the wire
  std::optional<ta::Value> static_value;  // static fields are time-invariant
  SymbolCache name_sym{};                 // interned lazily via sym(); publish-once

  bool is_static() const { return static_value.has_value(); }
  std::size_t wire_size() const { return field_wire_size(type, string_length); }

  /// Interned field name (interns on first call; thread-safe, racing
  /// callers publish the same id).
  Symbol sym() const {
    Symbol s = name_sym.get();
    if (!s.valid()) {
      s = intern_symbol(name);
      name_sym.set(s);
    }
    return s;
  }
};

/// One element of a message.
struct ElementSpec {
  std::string name;
  SymbolCache name_sym{};    // interned lazily via sym(); publish-once cache
  bool key = false;          // part of the message name
  bool convertible = false;  // subject to selective redirection
  std::vector<FieldSpec> fields;
  SourceLoc loc{};           // position of the <element> tag in its document

  const FieldSpec* field(const std::string& field_name) const;
  std::size_t wire_size() const;

  /// Interned element name (interns on first call; thread-safe, racing
  /// callers publish the same id).
  Symbol sym() const {
    Symbol s = name_sym.get();
    if (!s.valid()) {
      s = intern_symbol(name);
      name_sym.set(s);
    }
    return s;
  }
};

class WireLayout;

/// Syntactic description of one message on a virtual network.
class MessageSpec {
 public:
  MessageSpec() = default;
  explicit MessageSpec(std::string name)
      : name_{std::move(name)}, name_sym_{intern_symbol(name_)} {}

  // The compiled-layout cache is owned exclusively; copies recompile
  // lazily, moves transfer the published layout (it holds no pointers
  // into the spec, so it stays valid across relocation).
  MessageSpec(const MessageSpec& other);
  MessageSpec& operator=(const MessageSpec& other);
  MessageSpec(MessageSpec&& other) noexcept;
  MessageSpec& operator=(MessageSpec&& other) noexcept;
  ~MessageSpec();

  const std::string& name() const { return name_; }
  Symbol name_sym() const { return name_sym_; }
  void set_name(std::string name) {
    name_ = std::move(name);
    name_sym_ = intern_symbol(name_);
    invalidate_layout();
  }

  void add_element(ElementSpec element) {
    elements_.push_back(std::move(element));
    invalidate_layout();
  }
  const std::vector<ElementSpec>& elements() const { return elements_; }
  const ElementSpec* element(const std::string& element_name) const;

  /// All elements flagged convertible.
  std::vector<const ElementSpec*> convertible_elements() const;

  /// Total fixed wire size in bytes.
  std::size_t wire_size() const;

  SourceLoc loc{};  // position of the <message> tag in its document

  /// Structural validation: non-empty, unique element/field names, key
  /// fields static, string fields sized.
  Status validate() const;

  /// The compiled wire layout of this spec (DESIGN.md S29). Compiled on
  /// first use and published once (thread-safe against concurrent
  /// readers; racing compilers keep one result). Mutating the spec via
  /// add_element/set_name invalidates the cache -- mutation must not
  /// race layout() calls, matching the finalize-then-run lifecycle.
  const WireLayout& layout() const;

 private:
  void invalidate_layout();

  std::string name_;
  Symbol name_sym_{};
  std::vector<ElementSpec> elements_;
  mutable std::atomic<const WireLayout*> layout_cache_{nullptr};
};

}  // namespace decos::spec
