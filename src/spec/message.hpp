// Message instances and the fixed-layout wire codec.
//
// A MessageInstance is the structured in-memory form jobs and gateways
// operate on; encode()/decode() map it to/from the byte payload carried
// in virtual-network frames according to a MessageSpec. The layout is
// big-endian, fields in declaration order, no padding -- a deliberately
// simple stand-in for the interface-definition-language encodings the
// paper references (CORBA IDL / CDR).
//
// Instances carry interned Symbols alongside the message/element name
// strings; the gateway's compiled transfer plans address elements by
// Symbol and dense index so the steady state never compares strings.
// decode_into()/encode_into() are the hot-path entry points: they reuse
// the caller's scratch instance/buffer so repeated codec round trips
// perform no heap allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "spec/message_spec.hpp"
#include "ta/value.hpp"
#include "util/result.hpp"
#include "util/symbol.hpp"
#include "util/time.hpp"

namespace decos::spec {

/// Values of one element instance, parallel to ElementSpec::fields.
struct ElementValue {
  std::string element;              // element name
  Symbol element_sym{};             // interned form of `element`
  std::vector<ta::Value> fields;    // one value per FieldSpec, in order

  const ta::Value* field(const ElementSpec& spec, const std::string& field_name) const;
};

/// A structured message instance.
class MessageInstance {
 public:
  MessageInstance() = default;
  explicit MessageInstance(std::string message_name)
      : message_{std::move(message_name)}, message_sym_{intern_symbol(message_)} {}

  const std::string& message() const { return message_; }
  Symbol message_sym() const { return message_sym_; }
  void set_message(std::string name) {
    message_ = std::move(name);
    message_sym_ = intern_symbol(message_);
  }

  /// The instant the producing job handed the instance to its port (used
  /// for latency accounting and as the default observation time).
  Instant send_time() const { return send_time_; }
  void set_send_time(Instant t) { send_time_ = t; }

  void add_element(ElementValue value) {
    if (!value.element_sym.valid()) value.element_sym = intern_symbol(value.element);
    elements_.push_back(std::move(value));
  }
  const std::vector<ElementValue>& elements() const { return elements_; }
  std::vector<ElementValue>& elements() { return elements_; }

  const ElementValue* element(const std::string& element_name) const;
  ElementValue* element(const std::string& element_name);
  const ElementValue* element(Symbol element_sym) const;
  ElementValue* element(Symbol element_sym);

  /// Causal trace identity (0 = untraced). Assigned by the first traced
  /// port the instance passes through; restamped at each pipeline hop so
  /// child spans chain off the hop that produced this copy. Not part of
  /// the wire encoding -- it rides on the frame, not in the payload.
  std::uint64_t trace_id() const { return trace_id_; }
  std::uint64_t span_id() const { return span_id_; }
  void set_trace(std::uint64_t trace_id, std::uint64_t span_id) {
    trace_id_ = trace_id;
    span_id_ = span_id;
  }

  /// Convenience for tests/examples: fetch a field value by element and
  /// field name. Throws SpecError if missing.
  const ta::Value& field(const std::string& element_name, const std::string& field_name,
                         const MessageSpec& spec) const;

 private:
  std::string message_;
  Symbol message_sym_{};
  Instant send_time_;
  std::vector<ElementValue> elements_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
};

/// Build a skeleton instance for `spec` with all static fields filled in
/// and dynamic fields zero-initialised.
MessageInstance make_instance(const MessageSpec& spec);

/// Encode `instance` according to `spec`. Fails if the instance does not
/// structurally match the spec or a value does not fit its field type.
Result<std::vector<std::byte>> encode(const MessageSpec& spec, const MessageInstance& instance);

/// Hot-path encode: reuses `out` (capacity is retained, so a warmed
/// buffer makes repeated encodes allocation-free). Runs the compiled
/// WireLayout of `spec` (template memcpy + fixed-offset stores); on any
/// input the fast path cannot handle bit-identically it re-runs the
/// field-walk reference, so bytes and errors never diverge from it.
Status encode_into(const MessageSpec& spec, const MessageInstance& instance,
                   std::vector<std::byte>& out);

/// The field-walk reference encoder (pre-S29 codec). Kept as the
/// equivalence anchor for wire_layout_property_test and as the fallback
/// of the compiled path; not for hot-path use.
Status encode_fieldwalk_into(const MessageSpec& spec, const MessageInstance& instance,
                             std::vector<std::byte>& out);

/// Decode a payload according to `spec`. Fails on size mismatch.
Result<MessageInstance> decode(const MessageSpec& spec, std::span<const std::byte> payload);

/// Hot-path decode: overwrite `scratch` in place. If `scratch` is already
/// structured for `spec` (as left by a previous decode_into or
/// make_instance of the same spec) only field values are assigned --
/// value copy-assignment reuses string capacity, so the steady state
/// performs no heap allocation. Runs the compiled WireLayout of `spec`.
Status decode_into(const MessageSpec& spec, std::span<const std::byte> payload,
                   MessageInstance& scratch);

/// The field-walk reference decoder (pre-S29 codec); equivalence anchor
/// and not for hot-path use.
Status decode_fieldwalk_into(const MessageSpec& spec, std::span<const std::byte> payload,
                             MessageInstance& scratch);

/// Check whether `payload` carries the message described by `spec`, by
/// comparing all static key fields (the wire-level message name). Runs
/// the compiled WireLayout of `spec` (memcmp against the pre-encoded
/// template where the encoding is bijective).
bool matches_key(const MessageSpec& spec, std::span<const std::byte> payload);

/// The field-walk reference of matches_key; equivalence anchor.
bool matches_key_fieldwalk(const MessageSpec& spec, std::span<const std::byte> payload);

}  // namespace decos::spec
