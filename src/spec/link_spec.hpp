// Link specifications (paper Sections II-E and IV-B, Fig. 2 middle level).
//
// The link of a gateway (or job) towards one virtual network consists of
// the ports provided to it. The link specification bundles:
//   * the syntactic part   -- one MessageSpec per handled message,
//   * the temporal part    -- deterministic timed automata expressing the
//                             port-interaction protocol,
//   * the transfer semantics -- event<->state conversion rules,
// plus port specifications and named parameters (tmin, tmax, ...) the
// automata guards reference.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "spec/message_spec.hpp"
#include "spec/port_spec.hpp"
#include "spec/transfer.hpp"
#include "ta/automaton.hpp"
#include "util/result.hpp"
#include "util/source_loc.hpp"

namespace decos::spec {

class LinkSpec {
 public:
  LinkSpec() = default;
  explicit LinkSpec(std::string das_name) : das_{std::move(das_name)} {}

  /// Name of the DAS (and thus the namespace) this link faces.
  const std::string& das() const { return das_; }
  void set_das(std::string das_name) { das_ = std::move(das_name); }

  // -- syntactic part -------------------------------------------------------
  void add_message(MessageSpec message) { messages_.push_back(std::move(message)); }
  const std::vector<MessageSpec>& messages() const { return messages_; }
  const MessageSpec* message(const std::string& name) const;

  /// Wire-level identification: which of this link's messages does the
  /// payload carry? Uses the static key fields (the message name).
  const MessageSpec* identify(std::span<const std::byte> payload) const;

  // -- temporal part --------------------------------------------------------
  void add_automaton(ta::AutomatonSpec automaton) { automata_.push_back(std::move(automaton)); }
  const std::vector<ta::AutomatonSpec>& automata() const { return automata_; }

  // -- transfer semantics ---------------------------------------------------
  void add_transfer_rule(TransferRule rule) { transfer_.push_back(std::move(rule)); }
  const std::vector<TransferRule>& transfer_rules() const { return transfer_; }

  // -- value-domain filters ---------------------------------------------------
  /// Selective redirection in the value domain (paper Section III-B.1):
  /// an instance of `message_name` is only admitted when `predicate`
  /// evaluates to true over its field values (and the link parameters).
  void set_filter(const std::string& message_name, ta::ExprPtr predicate) {
    filters_[message_name] = std::move(predicate);
  }
  const ta::ExprPtr* filter_for(const std::string& message_name) const {
    const auto it = filters_.find(message_name);
    return it == filters_.end() ? nullptr : &it->second;
  }
  const std::unordered_map<std::string, ta::ExprPtr>& filters() const { return filters_; }

  /// Source position of the <filter> element for `message_name` (invalid
  /// if the filter was installed programmatically).
  void set_filter_loc(const std::string& message_name, SourceLoc loc) {
    filter_locs_[message_name] = loc;
  }
  SourceLoc filter_loc(const std::string& message_name) const {
    const auto it = filter_locs_.find(message_name);
    return it == filter_locs_.end() ? SourceLoc{} : it->second;
  }

  // -- ports ----------------------------------------------------------------
  void add_port(PortSpec port) { ports_.push_back(std::move(port)); }
  const std::vector<PortSpec>& ports() const { return ports_; }
  const PortSpec* port_for(const std::string& message_name) const;

  // -- parameters -----------------------------------------------------------
  void set_parameter(const std::string& name, ta::Value value) { parameters_[name] = std::move(value); }
  const std::unordered_map<std::string, ta::Value>& parameters() const { return parameters_; }
  bool has_parameter(const std::string& name) const { return parameters_.count(name) != 0; }
  const ta::Value& parameter(const std::string& name) const;

  /// Names of all convertible elements appearing in this link's messages
  /// or produced by its transfer rules.
  std::vector<std::string> convertible_element_names() const;

  /// Cross-validation of all four parts.
  Status validate() const;

  SourceLoc loc{};  // position of the <linkspec> tag in its document

 private:
  std::string das_;
  std::vector<MessageSpec> messages_;
  std::vector<ta::AutomatonSpec> automata_;
  std::vector<TransferRule> transfer_;
  std::vector<PortSpec> ports_;
  std::unordered_map<std::string, ta::Value> parameters_;
  std::unordered_map<std::string, ta::ExprPtr> filters_;
  std::unordered_map<std::string, SourceLoc> filter_locs_;
};

}  // namespace decos::spec
