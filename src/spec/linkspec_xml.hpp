// XML surface syntax for link specifications (paper Fig. 6).
//
// The format follows the paper's example with two documented extensions
// needed to make the figure executable:
//   1. Port-interaction labels: the figure leaves the association between
//      a transition and the received/sent message implicit in the
//      automaton's name; we make it explicit with
//      <label type="recv">msg</label> / <label type="send">msg</label>.
//   2. <param name="tmin" value="4ms"/> declares the named constants the
//      figure's guards reference, and <port .../> carries the operational
//      port attributes (direction, semantics, period/phase or
//      interarrival bounds, queue capacity) that the paper keeps in the
//      surrounding prose.
//
// Numeric attribute values accept time-unit suffixes (ns/us/ms/s).
#pragma once

#include <string>
#include <string_view>

#include "spec/link_spec.hpp"
#include "util/result.hpp"

namespace decos::xml {
class Element;
}

namespace decos::spec {

/// Parse a <linkspec> document.
Result<LinkSpec> parse_link_spec_xml(std::string_view xml_text);

/// Parse an already-parsed <linkspec> element (e.g. a child of a
/// <gatewayspec> document). Source positions of the original document
/// survive into the spec objects (SourceLoc), which is why embedding
/// documents must call this instead of re-serializing the subtree.
Result<LinkSpec> parse_link_spec_element(const xml::Element& root);

/// Load a link spec from a file on disk.
Result<LinkSpec> load_link_spec_file(const std::string& path);

/// Serialize a LinkSpec back to XML. parse(write(spec)) == spec for all
/// specs this module can produce (round-trip property, tested).
std::string write_link_spec_xml(const LinkSpec& spec);

}  // namespace decos::spec
