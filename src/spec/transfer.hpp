// Transfer semantics (paper Section IV-B, third part of the link
// specification): rules for converting convertible elements between event
// and state semantics.
//
// The paper's Fig. 6 example derives a state element MovementState from
// the event element MovementEvent via per-field update expressions
// (StateValue = StateValue + ValueChange). A rule fires whenever an
// instance of its source element passes through the gateway; the derived
// element is stored in the repository like any other convertible element.
#pragma once

#include <string>
#include <vector>

#include "ta/expr.hpp"
#include "util/result.hpp"
#include "util/source_loc.hpp"

namespace decos::spec {

/// One derived field of a conversion rule.
struct TransferFieldRule {
  std::string name;            // field of the derived element
  ta::Value init;              // initial value before any source instance
  std::string semantics;       // "state" or "event" (informational)
  ta::ExprPtr update;          // RHS; may reference source fields and the
                               // derived element's own current fields
};

/// A conversion rule: derive element `target` from instances of `source`.
struct TransferRule {
  std::string target;   // derived convertible element name
  std::string source;   // source convertible element name
  std::vector<TransferFieldRule> fields;
  SourceLoc loc{};      // position of the rule's <element> tag

  Status validate() const {
    if (target.empty()) return Status::failure("transfer rule without target element");
    if (source.empty())
      return Status::failure("transfer rule for '" + target + "' without source element");
    if (fields.empty())
      return Status::failure("transfer rule for '" + target + "' has no fields");
    for (const auto& f : fields) {
      if (f.name.empty()) return Status::failure("transfer rule for '" + target + "': unnamed field");
      if (!f.update) return Status::failure("transfer rule for '" + target + "': field '" +
                                            f.name + "' has no update expression");
    }
    return Status::success();
  }
};

}  // namespace decos::spec
