#include "spec/vn_spec.hpp"

#include <unordered_set>

namespace decos::spec {

const MessageSpec* VirtualNetworkSpec::message(const std::string& message_name) const {
  for (const auto& link : links_) {
    if (const MessageSpec* ms = link.message(message_name); ms != nullptr) return ms;
  }
  return nullptr;
}

double VirtualNetworkSpec::worst_case_bytes_per_round() const {
  if (round_length_ <= Duration::zero()) return 0.0;
  double total = 0.0;
  const double round_ns = static_cast<double>(round_length_.ns());
  for (const auto& link : links_) {
    for (const auto& port : link.ports()) {
      if (port.direction != DataDirection::kOutput) continue;
      const MessageSpec* ms = link.message(port.message);
      const double bytes = static_cast<double>(ms->wire_size());
      if (port.is_time_triggered() && port.period > Duration::zero()) {
        total += bytes * round_ns / static_cast<double>(port.period.ns());
      } else if (port.min_interarrival > Duration::zero()) {
        total += bytes * round_ns / static_cast<double>(port.min_interarrival.ns());
      }
      // else: unbounded -- reported by unbounded_output_ports().
    }
  }
  return total;
}

std::vector<std::string> VirtualNetworkSpec::unbounded_output_ports() const {
  std::vector<std::string> out;
  for (const auto& link : links_) {
    for (const auto& port : link.ports()) {
      if (port.direction != DataDirection::kOutput) continue;
      const bool bounded = (port.is_time_triggered() && port.period > Duration::zero()) ||
                           port.min_interarrival > Duration::zero();
      if (!bounded) out.push_back(port.message);
    }
  }
  return out;
}

Status VirtualNetworkSpec::validate() const {
  if (links_.empty())
    return Status::failure("virtual network '" + name_ + "' has no link specifications");
  std::unordered_set<std::string> producers;  // message -> unique producer check
  std::unordered_set<std::string> namespace_check;
  for (const auto& link : links_) {
    if (auto st = link.validate(); !st.ok()) return st;
    for (const auto& port : link.ports()) {
      // Paradigm coherence: every port must match the VN's control paradigm.
      if (port.paradigm != paradigm_)
        return Status::failure("virtual network '" + name_ + "': port for '" + port.message +
                               "' uses the wrong control paradigm");
      if (port.direction == DataDirection::kOutput && !producers.insert(port.message).second)
        return Status::failure("virtual network '" + name_ + "': message '" + port.message +
                               "' has more than one producer");
    }
    // Namespace coherence: a message name is defined once per VN; the
    // *same* spec may appear in several links (producer + consumers), so
    // only flag structural disagreement.
    for (const auto& ms : link.messages()) {
      if (namespace_check.count(ms.name()) != 0) {
        const MessageSpec* first = message(ms.name());
        if (first->wire_size() != ms.wire_size())
          return Status::failure("virtual network '" + name_ + "': message '" + ms.name() +
                                 "' declared with conflicting layouts");
      }
      namespace_check.insert(ms.name());
    }
  }
  if (bytes_per_round_ > 0) {
    const double demand = worst_case_bytes_per_round();
    if (demand > static_cast<double>(bytes_per_round_))
      return Status::failure("virtual network '" + name_ + "': worst-case demand " +
                             std::to_string(demand) + " B/round exceeds the allocation of " +
                             std::to_string(bytes_per_round_) + " B/round");
  }
  return Status::success();
}

}  // namespace decos::spec
