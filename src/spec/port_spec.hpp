// Port specifications (paper Section II-E, first level of Fig. 2).
//
// A port is dedicated to the transmission or reception of message
// instances of a single message. The port specification captures the
// syntactic and *local* temporal properties plus the control-flow
// direction relative to the data flow (information push vs pull,
// refined into sender-push/sender-pull/receiver-push/receiver-pull).
#pragma once

#include <cstddef>
#include <string>

#include "util/result.hpp"
#include "util/source_loc.hpp"
#include "util/time.hpp"

namespace decos::spec {

enum class DataDirection { kInput, kOutput };

/// Information semantics of the carried message (Section II-A): state
/// ports update in place; event ports queue for exactly-once processing.
enum class InfoSemantics { kState, kEvent };

/// Control paradigm of the carrying virtual network.
enum class ControlParadigm { kTimeTriggered, kEventTriggered };

/// Control-flow direction at the port relative to the communication
/// system (Section II-E): push = control moves with the data, pull = the
/// port side requests the transfer.
enum class Interaction { kPush, kPull };

/// Local temporal + semantic specification of one port.
struct PortSpec {
  std::string message;  // message name carried by this port
  DataDirection direction = DataDirection::kInput;
  InfoSemantics semantics = InfoSemantics::kState;
  ControlParadigm paradigm = ControlParadigm::kTimeTriggered;
  Interaction interaction = Interaction::kPush;

  // Time-triggered temporal properties: absolute global dispatch points
  // (phase within period).
  Duration period = Duration::zero();
  Duration phase = Duration::zero();

  // Event-triggered temporal properties: interarrival bounds (the paper's
  // tmin/tmax in Fig. 6) used to parameterise the temporal automaton.
  Duration min_interarrival = Duration::zero();
  Duration max_interarrival = Duration::max();

  // Event-port queue capacity, derived at design time from the
  // interarrival/service-time model (Section IV, E5 validates the rule).
  std::size_t queue_capacity = 8;

  SourceLoc loc{};  // position of the <port> element in its document

  bool is_time_triggered() const { return paradigm == ControlParadigm::kTimeTriggered; }

  /// Sanity checks: TT ports need a period; event ports a capacity.
  Status validate() const {
    if (message.empty()) return Status::failure("port without a message name");
    if (is_time_triggered() && period <= Duration::zero())
      return Status::failure("time-triggered port for '" + message + "' needs a positive period");
    if (semantics == InfoSemantics::kEvent && queue_capacity == 0)
      return Status::failure("event port for '" + message + "' needs a queue capacity");
    if (min_interarrival > max_interarrival)
      return Status::failure("port for '" + message + "': min interarrival exceeds max");
    return Status::success();
  }
};

}  // namespace decos::spec
