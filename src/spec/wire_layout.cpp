#include "spec/wire_layout.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "spec/codec_detail.hpp"
#include "spec/message.hpp"
#include "spec/message_spec.hpp"

namespace decos::spec {

using codec_detail::load_be;
using codec_detail::sign_extend;
using codec_detail::store_be;

WireLayout WireLayout::compile(const MessageSpec& spec) {
  WireLayout layout;
  layout.wire_size_ = spec.wire_size();
  layout.template_.assign(layout.wire_size_, std::byte{0});
  layout.elements_.reserve(spec.elements().size());

  std::uint32_t offset = 0;
  for (std::uint32_t ei = 0; ei < spec.elements().size(); ++ei) {
    const ElementSpec& es = spec.elements()[ei];
    ElementRange range;
    range.begin = static_cast<std::uint32_t>(layout.ops_.size());
    for (std::uint32_t fi = 0; fi < es.fields.size(); ++fi) {
      const FieldSpec& fs = es.fields[fi];
      FieldOp op;
      op.element = ei;
      op.field = fi;
      op.offset = offset;
      switch (fs.type) {
        case FieldType::kBoolean: op.kind = OpKind::kBool; break;
        case FieldType::kInt8: op.kind = OpKind::kI8; op.lo = -128; op.hi = 127; break;
        case FieldType::kInt16: op.kind = OpKind::kI16; op.lo = -32768; op.hi = 32767; break;
        case FieldType::kInt32:
          op.kind = OpKind::kI32;
          op.lo = std::numeric_limits<std::int32_t>::min();
          op.hi = std::numeric_limits<std::int32_t>::max();
          break;
        case FieldType::kInt64:
        case FieldType::kTimestamp:
          op.kind = OpKind::kI64;
          op.lo = std::numeric_limits<std::int64_t>::min();
          op.hi = std::numeric_limits<std::int64_t>::max();
          break;
        case FieldType::kUInt8: op.kind = OpKind::kU8; op.lo = 0; op.hi = 255; break;
        case FieldType::kUInt16: op.kind = OpKind::kU16; op.lo = 0; op.hi = 65535; break;
        case FieldType::kUInt32: op.kind = OpKind::kU32; op.lo = 0; op.hi = 4294967295LL; break;
        case FieldType::kUInt64:
          op.kind = OpKind::kU64;
          op.lo = 0;
          op.hi = std::numeric_limits<std::int64_t>::max();
          break;
        case FieldType::kFloat32: op.kind = OpKind::kF32; break;
        case FieldType::kFloat64: op.kind = OpKind::kF64; break;
        case FieldType::kString:
          op.kind = OpKind::kString;
          op.length = static_cast<std::uint32_t>(fs.string_length);
          break;
      }
      if (fs.static_value) {
        op.is_static = true;
        op.key = es.key;
        op.static_idx = static_cast<std::uint32_t>(layout.static_values_.size());
        layout.static_values_.push_back(*fs.static_value);
        layout.has_key_ = layout.has_key_ || op.key;
        // Pre-encode the static into the template. A static that does
        // not encode (wrong type, out of range) demotes the whole
        // layout to the reference path; its exact error, if ever
        // reached, must come from the field-walk codec.
        std::vector<std::byte> bytes;
        bool encoded = false;
        try {
          encoded = codec_detail::encode_field(bytes, fs, *fs.static_value).ok();
        } catch (const SpecError&) {
          encoded = false;
        }
        if (encoded && bytes.size() == fs.wire_size()) {
          std::memcpy(layout.template_.data() + offset, bytes.data(), bytes.size());
          // memcmp key matching is sound only when encode and decode
          // are inverse bijections on the comparison domain: integer
          // statics of integer fields. Booleans (any nonzero byte is
          // true), strings (NUL-stop ignores padding) and floats
          // (-0.0 == 0.0, NaN != NaN) need the decode-and-compare path.
          op.key_memcmp = op.key && fs.static_value->is_int() &&
                          op.kind != OpKind::kBool && op.kind != OpKind::kF32 &&
                          op.kind != OpKind::kF64 && op.kind != OpKind::kString;
        } else {
          layout.statics_encodable_ = false;
        }
      }
      layout.ops_.push_back(op);
      offset += static_cast<std::uint32_t>(fs.wire_size());
    }
    range.end = static_cast<std::uint32_t>(layout.ops_.size());
    layout.elements_.push_back(range);
  }
  return layout;
}

bool WireLayout::static_equals(const FieldOp& op, const ta::Value& v) const {
  // Bit-exact match against the spec's static value: same variant
  // alternative, identical payload. Anything looser (Value::operator==
  // coerces across numeric alternatives and equates -0.0 with 0.0)
  // could diverge from the bytes the reference path would produce.
  const ta::Value& s = static_values_[op.static_idx];
  if (v.is_int()) return s.is_int() && v.as_int() == s.as_int();
  if (v.is_bool()) return s.is_bool() && v.as_bool() == s.as_bool();
  if (v.is_real())
    return s.is_real() &&
           std::bit_cast<std::uint64_t>(v.as_real()) == std::bit_cast<std::uint64_t>(s.as_real());
  return s.is_string() && v.as_string() == s.as_string();
}

Status WireLayout::encode_dynamic(const MessageSpec& spec, const FieldOp& op, const ta::Value& v,
                                  std::byte* out) const {
  switch (op.kind) {
    case OpKind::kBool:
      out[op.offset] = v.as_bool() ? std::byte{1} : std::byte{0};
      return Status::success();
    case OpKind::kF32:
      store_be(out + op.offset, std::bit_cast<std::uint32_t>(static_cast<float>(v.as_real())), 4);
      return Status::success();
    case OpKind::kF64:
      store_be(out + op.offset, std::bit_cast<std::uint64_t>(v.as_real()), 8);
      return Status::success();
    case OpKind::kString: {
      const FieldSpec& fs = spec.elements()[op.element].fields[op.field];
      if (!v.is_string())
        return Status::failure("field '" + fs.name + "' expects a string value");
      const std::string& s = v.as_string();
      if (s.size() > op.length)
        return Status::failure("string too long for field '" + fs.name + "' (" +
                               std::to_string(s.size()) + " > " + std::to_string(op.length) + ")");
      std::memcpy(out + op.offset, s.data(), s.size());
      std::memset(out + op.offset + s.size(), 0, op.length - s.size());
      return Status::success();
    }
    default: {
      const std::int64_t i = v.as_int();
      if (i < op.lo || i > op.hi)
        return codec_detail::check_range(spec.elements()[op.element].fields[op.field], i);
      std::size_t width = 1;
      switch (op.kind) {
        case OpKind::kI16: case OpKind::kU16: width = 2; break;
        case OpKind::kI32: case OpKind::kU32: width = 4; break;
        case OpKind::kI64: case OpKind::kU64: width = 8; break;
        default: break;
      }
      store_be(out + op.offset, static_cast<std::uint64_t>(i), width);
      return Status::success();
    }
  }
}

Status WireLayout::encode_into(const MessageSpec& spec, const MessageInstance& instance,
                               std::vector<std::byte>& out) const {
  if (!statics_encodable_) return encode_fieldwalk_into(spec, instance, out);
  if (instance.message() != spec.name())
    return Status::failure("instance of '" + instance.message() + "' encoded against spec '" +
                           spec.name() + "'");
  if (instance.elements().size() != spec.elements().size())
    return Status::failure("instance of '" + spec.name() + "' has " +
                           std::to_string(instance.elements().size()) + " elements, spec has " +
                           std::to_string(spec.elements().size()));
  out.resize(wire_size_);
  std::byte* p = out.data();
  if (wire_size_ != 0) std::memcpy(p, template_.data(), wire_size_);
  for (std::size_t ei = 0; ei < elements_.size(); ++ei) {
    const ElementSpec& es = spec.elements()[ei];
    const ElementValue& ev = instance.elements()[ei];
    if (ev.element != es.name)
      return Status::failure("element order mismatch: expected '" + es.name + "', got '" +
                             ev.element + "'");
    if (ev.fields.size() != es.fields.size())
      return Status::failure("element '" + es.name + "' field count mismatch");
    for (std::uint32_t oi = elements_[ei].begin; oi < elements_[ei].end; ++oi) {
      const FieldOp& op = ops_[oi];
      const ta::Value& v = ev.fields[op.field];
      if (op.is_static) {
        // Template bytes already hold the spec's static value; they are
        // only valid if the instance carries exactly that value. The
        // reference path encodes whatever the instance holds, so any
        // divergence re-runs it wholesale (identical bytes or errors).
        if (!static_equals(op, v)) return encode_fieldwalk_into(spec, instance, out);
        continue;
      }
      if (auto st = encode_dynamic(spec, op, v, p); !st.ok()) return st;
    }
  }
  return Status::success();
}

Status WireLayout::decode_into(const MessageSpec& spec, std::span<const std::byte> payload,
                               MessageInstance& scratch) const {
  if (payload.size() != wire_size_)
    return Status::failure("payload size " + std::to_string(payload.size()) +
                           " does not match spec '" + spec.name() + "' (" +
                           std::to_string(wire_size_) + " bytes)");
  const bool structured = scratch.message_sym().valid() &&
                          scratch.message_sym() == spec.name_sym() &&
                          scratch.elements().size() == spec.elements().size();
  if (!structured) {
    scratch.set_message(spec.name());
    scratch.elements().clear();
    for (const auto& es : spec.elements()) {
      ElementValue ev;
      ev.element = es.name;
      ev.element_sym = intern_symbol(es.name);
      ev.fields.resize(es.fields.size());
      scratch.add_element(std::move(ev));
    }
  }
  const std::byte* p = payload.data();
  for (std::size_t ei = 0; ei < elements_.size(); ++ei) {
    ElementValue& ev = scratch.elements()[ei];
    const std::size_t field_count = spec.elements()[ei].fields.size();
    if (ev.fields.size() != field_count) ev.fields.resize(field_count);
    for (std::uint32_t oi = elements_[ei].begin; oi < elements_[ei].end; ++oi) {
      const FieldOp& op = ops_[oi];
      ta::Value& v = ev.fields[op.field];
      switch (op.kind) {
        case OpKind::kBool: v = ta::Value{p[op.offset] != std::byte{0}}; break;
        case OpKind::kI8: v = ta::Value{sign_extend(load_be(p + op.offset, 1), 1)}; break;
        case OpKind::kI16: v = ta::Value{sign_extend(load_be(p + op.offset, 2), 2)}; break;
        case OpKind::kI32: v = ta::Value{sign_extend(load_be(p + op.offset, 4), 4)}; break;
        case OpKind::kI64:
          v = ta::Value{static_cast<std::int64_t>(load_be(p + op.offset, 8))};
          break;
        case OpKind::kU8: v = ta::Value{static_cast<std::int64_t>(load_be(p + op.offset, 1))}; break;
        case OpKind::kU16: v = ta::Value{static_cast<std::int64_t>(load_be(p + op.offset, 2))}; break;
        case OpKind::kU32: v = ta::Value{static_cast<std::int64_t>(load_be(p + op.offset, 4))}; break;
        case OpKind::kU64: v = ta::Value{static_cast<std::int64_t>(load_be(p + op.offset, 8))}; break;
        case OpKind::kF32:
          v = ta::Value{static_cast<double>(
              std::bit_cast<float>(static_cast<std::uint32_t>(load_be(p + op.offset, 4))))};
          break;
        case OpKind::kF64:
          v = ta::Value{std::bit_cast<double>(load_be(p + op.offset, 8))};
          break;
        case OpKind::kString: {
          std::string& s = v.mutable_string();
          const char* chars = reinterpret_cast<const char*>(p + op.offset);
          const void* nul = std::memchr(chars, '\0', op.length);
          s.assign(chars, nul ? static_cast<const char*>(nul) - chars : op.length);
          break;
        }
      }
    }
  }
  scratch.set_trace(0, 0);
  return Status::success();
}

bool WireLayout::matches_key(const MessageSpec& spec, std::span<const std::byte> payload) const {
  if (payload.size() != wire_size_) return false;
  for (const FieldOp& op : ops_) {
    if (!op.key) continue;
    if (op.key_memcmp) {
      std::size_t width = 1;
      switch (op.kind) {
        case OpKind::kI16: case OpKind::kU16: width = 2; break;
        case OpKind::kI32: case OpKind::kU32: width = 4; break;
        case OpKind::kI64: case OpKind::kU64: width = 8; break;
        default: break;
      }
      if (std::memcmp(payload.data() + op.offset, template_.data() + op.offset, width) != 0)
        return false;
      continue;
    }
    const FieldSpec& fs = spec.elements()[op.element].fields[op.field];
    const ta::Value decoded = codec_detail::decode_field(payload, op.offset, fs);
    if (!(decoded == static_values_[op.static_idx])) return false;
  }
  return has_key_;
}

}  // namespace decos::spec
