// Virtual-network specification: the third level of the paper's Fig. 2.
//
// "The virtual network specification consists of all link specifications
// in the DAS and those temporal properties that can be defined only with
// respect to ports of more than one job" -- e.g. the effects of
// bandwidth multiplexing between jobs. Here the multi-job properties are
// the shared namespace (message names unique across the DAS) and the
// bandwidth feasibility of all links against the slot allocation the
// encapsulation service granted to the VN.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "spec/link_spec.hpp"
#include "util/result.hpp"

namespace decos::spec {

class VirtualNetworkSpec {
 public:
  VirtualNetworkSpec(std::string name, ControlParadigm paradigm)
      : name_{std::move(name)}, paradigm_{paradigm} {}

  const std::string& name() const { return name_; }
  ControlParadigm paradigm() const { return paradigm_; }

  /// The bandwidth partition granted by the encapsulation service:
  /// payload bytes available per TDMA round, and the round length.
  void set_allocation(std::size_t bytes_per_round, Duration round_length) {
    bytes_per_round_ = bytes_per_round;
    round_length_ = round_length;
  }
  std::size_t bytes_per_round() const { return bytes_per_round_; }
  Duration round_length() const { return round_length_; }

  /// One link specification per job of the DAS.
  void add_link(LinkSpec link) { links_.push_back(std::move(link)); }
  const std::vector<LinkSpec>& links() const { return links_; }

  /// Find a message across all links (the DAS-wide namespace).
  const MessageSpec* message(const std::string& message_name) const;

  /// Worst-case payload demand per round over all *output* ports:
  /// time-triggered ports contribute wire_size * (round / period);
  /// event-triggered ports contribute wire_size * (round / tmin) when a
  /// minimum interarrival is specified (their worst-case rate), and are
  /// skipped otherwise (only probabilistic statements are possible, per
  /// the paper's Section II-E).
  double worst_case_bytes_per_round() const;

  /// Output ports whose worst-case rate is unbounded (no period, no
  /// tmin): these can only be given probabilistic guarantees.
  std::vector<std::string> unbounded_output_ports() const;

  /// Multi-job validation: links valid, namespace coherent, and -- when
  /// an allocation is set -- worst-case demand within it.
  Status validate() const;

 private:
  std::string name_;
  ControlParadigm paradigm_;
  std::vector<LinkSpec> links_;
  std::size_t bytes_per_round_ = 0;
  Duration round_length_ = Duration::zero();
};

}  // namespace decos::spec
