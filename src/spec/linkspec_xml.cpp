#include "spec/linkspec_xml.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ta/expr.hpp"
#include "xml/xml.hpp"

namespace decos::spec {
namespace {

/// Environment that only accepts literal expressions (attribute values).
class LiteralEnv final : public ta::Environment {
 public:
  ta::Value get(const std::string& name) const override {
    throw SpecError("identifier '" + name + "' not allowed in a literal value");
  }
  void set(const std::string&, const ta::Value&) override {
    throw SpecError("assignment not allowed in a literal value");
  }
  ta::Value call(const std::string& name, const std::vector<ta::Value>&) override {
    throw SpecError("call of '" + name + "' not allowed in a literal value");
  }
};

/// Strict non-negative integer attribute parse (std::stoi would throw on
/// junk; malformed configuration must surface as a Result error).
Result<long> parse_uint_attr(const std::string& text, const char* what) {
  if (text.empty()) return Result<long>::failure(std::string{"empty "} + what + " attribute");
  char* end = nullptr;
  errno = 0;  // strtol reports overflow via ERANGE, not the return value
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0 || errno == ERANGE)
    return Result<long>::failure(std::string{"bad "} + what + " attribute '" + text + "'");
  return value;
}

Result<ta::Value> parse_literal(const std::string& text) {
  auto expr = ta::parse_expression(text);
  if (!expr.ok()) return expr.error();
  LiteralEnv env;
  try {
    return expr.value()->evaluate(env);
  } catch (const SpecError& e) {
    return Result<ta::Value>::failure(std::string{"bad literal '"} + text + "': " + e.what());
  }
}

Result<Duration> parse_duration_attr(const xml::Element& e, std::string_view key,
                                     Duration fallback) {
  if (!e.has_attribute(key)) return fallback;
  auto v = parse_literal(e.attribute(key));
  if (!v.ok()) return v.error();
  return v.value().as_duration();
}

Result<FieldSpec> parse_field(const xml::Element& fe, const std::string& context) {
  FieldSpec fs;
  fs.name = fe.attribute("name");
  if (fs.name.empty())
    return Result<FieldSpec>::failure(context + ": field without a name attribute");
  const xml::Element* te = fe.child("type");
  if (te == nullptr)
    return Result<FieldSpec>::failure(context + ": field '" + fs.name + "' has no <type>");
  int length_bits = 0;
  if (te->has_attribute("length")) {
    auto parsed = parse_uint_attr(te->attribute("length"), "length");
    if (!parsed.ok()) return parsed.error();
    length_bits = static_cast<int>(parsed.value());
  }
  const bool is_unsigned = te->attribute_or("signed", "yes") == "no";
  auto type = parse_field_type(te->text(), length_bits, is_unsigned);
  if (!type.ok()) return type.error();
  fs.type = type.value();
  if (fs.type == FieldType::kString) {
    // length attribute is in bits for integers (per the figure) but in
    // bytes for strings; accept either `length` (bits, /8) or `bytes`.
    if (te->has_attribute("bytes")) {
      auto parsed = parse_uint_attr(te->attribute("bytes"), "bytes");
      if (!parsed.ok()) return parsed.error();
      fs.string_length = static_cast<std::size_t>(parsed.value());
    } else if (length_bits > 0) {
      fs.string_length = static_cast<std::size_t>(length_bits) / 8;
    }
  }
  if (const xml::Element* ve = fe.child("value"); ve != nullptr) {
    auto v = parse_literal(ve->text());
    if (!v.ok()) return v.error();
    fs.static_value = v.value();
  }
  return fs;
}

Result<MessageSpec> parse_message(const xml::Element& me) {
  MessageSpec ms{me.attribute("name")};
  ms.loc = SourceLoc{me.line(), me.column()};
  for (const xml::Element* ee : me.children_named("element")) {
    ElementSpec es;
    es.name = ee->attribute("name");
    es.loc = SourceLoc{ee->line(), ee->column()};
    es.key = ee->attribute_or("key", "no") == "yes";
    es.convertible = ee->attribute_or("conv", "no") == "yes";
    for (const xml::Element* fe : ee->children_named("field")) {
      auto fs = parse_field(*fe, "message '" + ms.name() + "' element '" + es.name + "'");
      if (!fs.ok()) return fs.error();
      es.fields.push_back(std::move(fs.value()));
    }
    ms.add_element(std::move(es));
  }
  if (auto st = ms.validate(); !st.ok()) return st.error();
  return ms;
}

Result<ta::AutomatonSpec> parse_automaton(const xml::Element& ae) {
  ta::AutomatonSpec spec{ae.attribute("name")};
  for (const xml::Element* le : ae.children_named("location")) spec.add_location(le->attribute("name"));
  if (const xml::Element* ie = ae.child("init"); ie != nullptr) spec.set_initial(ie->attribute("name"));
  if (const xml::Element* ee = ae.child("error"); ee != nullptr) spec.set_error(ee->attribute("name"));
  for (const xml::Element* ce : ae.children_named("clock")) spec.add_clock(ce->attribute("name"));
  for (const xml::Element* ve : ae.children_named("variable")) {
    auto init = parse_literal(ve->attribute_or("init", "0"));
    if (!init.ok()) return init.error();
    spec.add_variable(ve->attribute("name"), init.value());
  }
  for (const xml::Element* te : ae.children_named("transition")) {
    ta::Edge edge;
    if (const xml::Element* se = te->child("source"); se != nullptr) edge.source = se->attribute("name");
    if (const xml::Element* ge = te->child("target"); ge != nullptr) edge.target = ge->attribute("name");
    for (const xml::Element* le : te->children_named("label")) {
      const std::string type = le->attribute("type");
      const std::string& text = le->text();
      if (type == "guard") {
        if (text.empty()) continue;  // empty guard label == always true
        auto g = ta::parse_expression(text);
        if (!g.ok())
          return Result<ta::AutomatonSpec>::failure("automaton '" + spec.name() +
                                                    "': bad guard '" + text + "': " + g.error().message);
        edge.guard = g.value();
      } else if (type == "assignment") {
        if (text.empty()) continue;
        auto a = ta::parse_assignments(text);
        if (!a.ok())
          return Result<ta::AutomatonSpec>::failure("automaton '" + spec.name() +
                                                    "': bad assignment '" + text + "': " + a.error().message);
        for (auto& asg : a.value()) edge.assignments.push_back(std::move(asg));
      } else if (type == "recv") {
        edge.action = ta::ActionKind::kReceive;
        edge.message = text;
      } else if (type == "send") {
        edge.action = ta::ActionKind::kSend;
        edge.message = text;
      } else {
        return Result<ta::AutomatonSpec>::failure("automaton '" + spec.name() +
                                                  "': unknown label type '" + type + "'");
      }
    }
    spec.add_edge(std::move(edge));
  }
  if (auto st = spec.validate(); !st.ok()) return st.error();
  return spec;
}

Result<TransferRule> parse_transfer_rule(const xml::Element& ee) {
  TransferRule rule;
  rule.target = ee.attribute("name");
  rule.source = ee.attribute("source");
  rule.loc = SourceLoc{ee.line(), ee.column()};
  for (const xml::Element* fe : ee.children_named("field")) {
    TransferFieldRule fr;
    fr.name = fe->attribute("name");
    fr.semantics = fe->attribute_or("semantics", "state");
    if (fe->has_attribute("init")) {
      auto init = parse_literal(fe->attribute("init"));
      if (!init.ok()) return init.error();
      fr.init = init.value();
    }
    // The body is an assignment in the paper's style:
    //   StateValue=StateValue+ValueChange
    auto assignments = ta::parse_assignments(fe->text());
    if (!assignments.ok())
      return Result<TransferRule>::failure("transfer rule '" + rule.target + "' field '" +
                                           fr.name + "': " + assignments.error().message);
    for (const auto& a : assignments.value()) {
      if (a.target == fr.name) {
        fr.update = a.value;
      } else {
        return Result<TransferRule>::failure("transfer rule '" + rule.target +
                                             "': assignment target '" + a.target +
                                             "' does not match field '" + fr.name + "'");
      }
    }
    rule.fields.push_back(std::move(fr));
  }
  if (auto st = rule.validate(); !st.ok()) return st.error();
  return rule;
}

Result<PortSpec> parse_port(const xml::Element& pe) {
  PortSpec ps;
  ps.message = pe.attribute("message");
  ps.loc = SourceLoc{pe.line(), pe.column()};
  const std::string dir = pe.attribute_or("direction", "input");
  if (dir == "input" || dir == "in") ps.direction = DataDirection::kInput;
  else if (dir == "output" || dir == "out") ps.direction = DataDirection::kOutput;
  else return Result<PortSpec>::failure("port '" + ps.message + "': bad direction '" + dir + "'");

  const std::string sem = pe.attribute_or("semantics", "state");
  if (sem == "state") ps.semantics = InfoSemantics::kState;
  else if (sem == "event") ps.semantics = InfoSemantics::kEvent;
  else return Result<PortSpec>::failure("port '" + ps.message + "': bad semantics '" + sem + "'");

  const std::string par = pe.attribute_or("paradigm", "tt");
  if (par == "tt" || par == "time-triggered") ps.paradigm = ControlParadigm::kTimeTriggered;
  else if (par == "et" || par == "event-triggered") ps.paradigm = ControlParadigm::kEventTriggered;
  else return Result<PortSpec>::failure("port '" + ps.message + "': bad paradigm '" + par + "'");

  const std::string inter = pe.attribute_or("interaction", "push");
  if (inter == "push") ps.interaction = Interaction::kPush;
  else if (inter == "pull") ps.interaction = Interaction::kPull;
  else return Result<PortSpec>::failure("port '" + ps.message + "': bad interaction '" + inter + "'");

  if (auto d = parse_duration_attr(pe, "period", Duration::zero()); d.ok()) ps.period = d.value();
  else return d.error();
  if (auto d = parse_duration_attr(pe, "phase", Duration::zero()); d.ok()) ps.phase = d.value();
  else return d.error();
  if (auto d = parse_duration_attr(pe, "tmin", Duration::zero()); d.ok()) ps.min_interarrival = d.value();
  else return d.error();
  if (auto d = parse_duration_attr(pe, "tmax", Duration::max()); d.ok()) ps.max_interarrival = d.value();
  else return d.error();
  if (pe.has_attribute("queue")) {
    auto parsed = parse_uint_attr(pe.attribute("queue"), "queue");
    if (!parsed.ok()) return parsed.error();
    ps.queue_capacity = static_cast<std::size_t>(parsed.value());
  }

  if (auto st = ps.validate(); !st.ok()) return st.error();
  return ps;
}

}  // namespace

Result<LinkSpec> parse_link_spec_xml(std::string_view xml_text) {
  auto doc = xml::parse(xml_text);
  if (!doc.ok()) return doc.error();
  return parse_link_spec_element(*doc.value().root);
}

Result<LinkSpec> parse_link_spec_element(const xml::Element& root) {
  if (root.name() != "linkspec")
    return Result<LinkSpec>::failure("expected <linkspec> root, got <" + root.name() + ">");

  LinkSpec spec;
  spec.set_das(root.child_text("das"));
  spec.loc = SourceLoc{root.line(), root.column()};

  for (const xml::Element* pe : root.children_named("param")) {
    auto v = parse_literal(pe->attribute("value"));
    if (!v.ok()) return v.error();
    spec.set_parameter(pe->attribute("name"), v.value());
  }
  for (const xml::Element* me : root.children_named("message")) {
    auto ms = parse_message(*me);
    if (!ms.ok()) return ms.error();
    spec.add_message(std::move(ms.value()));
  }
  for (const xml::Element* ae : root.children_named("timedautomaton")) {
    auto as = parse_automaton(*ae);
    if (!as.ok()) return as.error();
    spec.add_automaton(std::move(as.value()));
  }
  if (const xml::Element* ts = root.child("transfersemantics"); ts != nullptr) {
    for (const xml::Element* ee : ts->children_named("element")) {
      auto rule = parse_transfer_rule(*ee);
      if (!rule.ok()) return rule.error();
      spec.add_transfer_rule(std::move(rule.value()));
    }
  }
  for (const xml::Element* pe : root.children_named("port")) {
    auto ps = parse_port(*pe);
    if (!ps.ok()) return ps.error();
    spec.add_port(std::move(ps.value()));
  }
  for (const xml::Element* fe : root.children_named("filter")) {
    auto predicate = ta::parse_expression(fe->text());
    if (!predicate.ok())
      return Result<LinkSpec>::failure("bad filter for message '" + fe->attribute("message") +
                                       "': " + predicate.error().message);
    spec.set_filter(fe->attribute("message"), predicate.value());
    spec.set_filter_loc(fe->attribute("message"), SourceLoc{fe->line(), fe->column()});
  }

  if (auto st = spec.validate(); !st.ok()) return st.error();
  return spec;
}

Result<LinkSpec> load_link_spec_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) return Result<LinkSpec>::failure("cannot open link spec file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_link_spec_xml(buffer.str());
}

namespace {

void write_type(xml::Element& fe, const FieldSpec& fs) {
  xml::Element& te = fe.add_child("type");
  switch (fs.type) {
    case FieldType::kBoolean: te.set_text("boolean"); break;
    case FieldType::kTimestamp: te.set_text("timestamp"); break;
    case FieldType::kString:
      te.set_text("string");
      te.set_attribute("bytes", std::to_string(fs.string_length));
      break;
    case FieldType::kFloat32: te.set_text("float"); te.set_attribute("length", "32"); break;
    case FieldType::kFloat64: te.set_text("float"); te.set_attribute("length", "64"); break;
    case FieldType::kInt8: te.set_text("integer"); te.set_attribute("length", "8"); break;
    case FieldType::kInt16: te.set_text("integer"); te.set_attribute("length", "16"); break;
    case FieldType::kInt32: te.set_text("integer"); te.set_attribute("length", "32"); break;
    case FieldType::kInt64: te.set_text("integer"); te.set_attribute("length", "64"); break;
    case FieldType::kUInt8: te.set_text("integer"); te.set_attribute("length", "8"); te.set_attribute("signed", "no"); break;
    case FieldType::kUInt16: te.set_text("integer"); te.set_attribute("length", "16"); te.set_attribute("signed", "no"); break;
    case FieldType::kUInt32: te.set_text("integer"); te.set_attribute("length", "32"); te.set_attribute("signed", "no"); break;
    case FieldType::kUInt64: te.set_text("integer"); te.set_attribute("length", "64"); te.set_attribute("signed", "no"); break;
  }
}

std::string value_literal(const ta::Value& v) {
  if (v.is_string()) return v.as_string();
  return v.to_string();
}

}  // namespace

std::string write_link_spec_xml(const LinkSpec& spec) {
  xml::Element root{"linkspec"};
  if (!spec.das().empty()) root.add_child("das").set_text(spec.das());

  // Stable parameter order for reproducible output.
  std::vector<std::string> param_names;
  for (const auto& [name, value] : spec.parameters()) param_names.push_back(name);
  std::sort(param_names.begin(), param_names.end());
  for (const auto& name : param_names) {
    xml::Element& pe = root.add_child("param");
    pe.set_attribute("name", name);
    pe.set_attribute("value", value_literal(spec.parameter(name)));
  }

  for (const auto& ms : spec.messages()) {
    xml::Element& me = root.add_child("message");
    me.set_attribute("name", ms.name());
    for (const auto& es : ms.elements()) {
      xml::Element& ee = me.add_child("element");
      ee.set_attribute("name", es.name);
      ee.set_attribute("key", es.key ? "yes" : "no");
      ee.set_attribute("conv", es.convertible ? "yes" : "no");
      for (const auto& fs : es.fields) {
        xml::Element& fe = ee.add_child("field");
        fe.set_attribute("name", fs.name);
        write_type(fe, fs);
        if (fs.static_value) fe.add_child("value").set_text(value_literal(*fs.static_value));
      }
    }
  }

  for (const auto& as : spec.automata()) {
    xml::Element& ae = root.add_child("timedautomaton");
    ae.set_attribute("name", as.name());
    for (const auto& loc : as.locations()) ae.add_child("location").set_attribute("name", loc);
    ae.add_child("init").set_attribute("name", as.initial());
    if (!as.error().empty()) ae.add_child("error").set_attribute("name", as.error());
    for (const auto& c : as.clocks()) ae.add_child("clock").set_attribute("name", c);
    for (const auto& [name, init] : as.variables()) {
      xml::Element& ve = ae.add_child("variable");
      ve.set_attribute("name", name);
      ve.set_attribute("init", value_literal(init));
    }
    for (const auto& edge : as.edges()) {
      xml::Element& te = ae.add_child("transition");
      te.add_child("source").set_attribute("name", edge.source);
      te.add_child("target").set_attribute("name", edge.target);
      if (edge.action == ta::ActionKind::kReceive) {
        xml::Element& le = te.add_child("label");
        le.set_attribute("type", "recv");
        le.set_text(edge.message);
      } else if (edge.action == ta::ActionKind::kSend) {
        xml::Element& le = te.add_child("label");
        le.set_attribute("type", "send");
        le.set_text(edge.message);
      }
      if (edge.guard) {
        xml::Element& le = te.add_child("label");
        le.set_attribute("type", "guard");
        le.set_text(edge.guard->to_string());
      }
      if (!edge.assignments.empty()) {
        std::string text;
        for (std::size_t i = 0; i < edge.assignments.size(); ++i) {
          if (i) text += "; ";
          text += edge.assignments[i].to_string();
        }
        xml::Element& le = te.add_child("label");
        le.set_attribute("type", "assignment");
        le.set_text(text);
      }
    }
  }

  if (!spec.transfer_rules().empty()) {
    xml::Element& ts = root.add_child("transfersemantics");
    for (const auto& rule : spec.transfer_rules()) {
      xml::Element& ee = ts.add_child("element");
      ee.set_attribute("name", rule.target);
      ee.set_attribute("source", rule.source);
      for (const auto& fr : rule.fields) {
        xml::Element& fe = ee.add_child("field");
        fe.set_attribute("name", fr.name);
        fe.set_attribute("init", value_literal(fr.init));
        fe.set_attribute("semantics", fr.semantics);
        fe.set_text(fr.name + " := " + fr.update->to_string());
      }
    }
  }

  for (const auto& ps : spec.ports()) {
    xml::Element& pe = root.add_child("port");
    pe.set_attribute("message", ps.message);
    pe.set_attribute("direction", ps.direction == DataDirection::kInput ? "input" : "output");
    pe.set_attribute("semantics", ps.semantics == InfoSemantics::kState ? "state" : "event");
    pe.set_attribute("paradigm", ps.is_time_triggered() ? "tt" : "et");
    pe.set_attribute("interaction", ps.interaction == Interaction::kPush ? "push" : "pull");
    if (ps.period > Duration::zero()) pe.set_attribute("period", std::to_string(ps.period.ns()) + "ns");
    if (ps.phase > Duration::zero()) pe.set_attribute("phase", std::to_string(ps.phase.ns()) + "ns");
    if (ps.min_interarrival > Duration::zero())
      pe.set_attribute("tmin", std::to_string(ps.min_interarrival.ns()) + "ns");
    if (ps.max_interarrival < Duration::max())
      pe.set_attribute("tmax", std::to_string(ps.max_interarrival.ns()) + "ns");
    pe.set_attribute("queue", std::to_string(ps.queue_capacity));
  }

  // Stable filter order for reproducible output.
  std::vector<std::string> filtered;
  for (const auto& [message_name, predicate] : spec.filters()) filtered.push_back(message_name);
  std::sort(filtered.begin(), filtered.end());
  for (const auto& message_name : filtered) {
    xml::Element& fe = root.add_child("filter");
    fe.set_attribute("message", message_name);
    fe.set_text((*spec.filter_for(message_name))->to_string());
  }

  return xml::write(root);
}

}  // namespace decos::spec
