#include "spec/link_spec.hpp"

#include <unordered_set>

#include "spec/message.hpp"

namespace decos::spec {

const MessageSpec* LinkSpec::message(const std::string& name) const {
  for (const auto& m : messages_)
    if (m.name() == name) return &m;
  return nullptr;
}

const MessageSpec* LinkSpec::identify(std::span<const std::byte> payload) const {
  for (const auto& m : messages_)
    if (matches_key(m, payload)) return &m;
  return nullptr;
}

const PortSpec* LinkSpec::port_for(const std::string& message_name) const {
  for (const auto& p : ports_)
    if (p.message == message_name) return &p;
  return nullptr;
}

const ta::Value& LinkSpec::parameter(const std::string& name) const {
  const auto it = parameters_.find(name);
  if (it == parameters_.end())
    throw SpecError("link spec for DAS '" + das_ + "' has no parameter '" + name + "'");
  return it->second;
}

std::vector<std::string> LinkSpec::convertible_element_names() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& m : messages_) {
    for (const auto* e : m.convertible_elements()) {
      if (seen.insert(e->name).second) out.push_back(e->name);
    }
  }
  for (const auto& rule : transfer_) {
    if (seen.insert(rule.target).second) out.push_back(rule.target);
  }
  return out;
}

Status LinkSpec::validate() const {
  std::unordered_set<std::string> message_names;
  for (const auto& m : messages_) {
    if (auto st = m.validate(); !st.ok()) return st;
    if (!message_names.insert(m.name()).second)
      return Status::failure("link for DAS '" + das_ + "': duplicate message '" + m.name() + "'");
  }
  for (const auto& a : automata_) {
    if (auto st = a.validate(); !st.ok()) return st;
    for (const auto& e : a.edges()) {
      if (e.action != ta::ActionKind::kInternal && message(e.message) == nullptr)
        return Status::failure("link for DAS '" + das_ + "': automaton '" + a.name() +
                               "' references unknown message '" + e.message + "'");
    }
  }
  // Collect convertible element names for transfer-rule source checks.
  std::unordered_set<std::string> convertible;
  for (const auto& m : messages_)
    for (const auto* e : m.convertible_elements()) convertible.insert(e->name);
  for (const auto& rule : transfer_) {
    if (auto st = rule.validate(); !st.ok()) return st;
    // A rule's source must exist as a convertible element *somewhere*; at
    // the gateway level the source usually comes from the other link, so
    // this check is deferred to VirtualGateway. Here we only reject rules
    // whose target collides with a concrete element of this link.
  }
  for (const auto& p : ports_) {
    if (auto st = p.validate(); !st.ok()) return st;
    if (message(p.message) == nullptr)
      return Status::failure("link for DAS '" + das_ + "': port references unknown message '" +
                             p.message + "'");
  }
  for (const auto& [message_name, predicate] : filters_) {
    if (message(message_name) == nullptr)
      return Status::failure("link for DAS '" + das_ + "': filter references unknown message '" +
                             message_name + "'");
    if (!predicate)
      return Status::failure("link for DAS '" + das_ + "': empty filter for message '" +
                             message_name + "'");
  }
  return Status::success();
}

}  // namespace decos::spec
