#include "spec/message.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace decos::spec {
namespace {

void put_uint(std::vector<std::byte>& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * (bytes - 1 - i))) & 0xFF));
  }
}

std::uint64_t get_uint(std::span<const std::byte> in, std::size_t offset, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v = (v << 8) | static_cast<std::uint64_t>(in[offset + i]);
  }
  return v;
}

std::int64_t sign_extend(std::uint64_t v, std::size_t bytes) {
  if (bytes == 8) return static_cast<std::int64_t>(v);
  const std::uint64_t sign_bit = 1ULL << (8 * bytes - 1);
  if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  return static_cast<std::int64_t>(v);
}

/// Range check for integer fields; out-of-range values are value-domain
/// faults that must not silently wrap on the wire.
Status check_range(const FieldSpec& f, std::int64_t v) {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  switch (f.type) {
    case FieldType::kInt8: lo = -128; hi = 127; break;
    case FieldType::kInt16: lo = -32768; hi = 32767; break;
    case FieldType::kInt32: lo = std::numeric_limits<std::int32_t>::min(); hi = std::numeric_limits<std::int32_t>::max(); break;
    case FieldType::kInt64: return Status::success();
    case FieldType::kUInt8: lo = 0; hi = 255; break;
    case FieldType::kUInt16: lo = 0; hi = 65535; break;
    case FieldType::kUInt32: lo = 0; hi = 4294967295LL; break;
    case FieldType::kUInt64: return v >= 0 ? Status::success()
                                           : Status::failure("negative value for uint64 field '" + f.name + "'");
    default: return Status::success();
  }
  if (v < lo || v > hi)
    return Status::failure("value " + std::to_string(v) + " out of range for field '" + f.name +
                           "' (" + field_type_name(f.type) + ")");
  return Status::success();
}

Status encode_field(std::vector<std::byte>& out, const FieldSpec& f, const ta::Value& v) {
  switch (f.type) {
    case FieldType::kBoolean:
      put_uint(out, v.as_bool() ? 1 : 0, 1);
      return Status::success();
    case FieldType::kFloat32: {
      const auto bits = std::bit_cast<std::uint32_t>(static_cast<float>(v.as_real()));
      put_uint(out, bits, 4);
      return Status::success();
    }
    case FieldType::kFloat64: {
      const auto bits = std::bit_cast<std::uint64_t>(v.as_real());
      put_uint(out, bits, 8);
      return Status::success();
    }
    case FieldType::kString: {
      if (!v.is_string())
        return Status::failure("field '" + f.name + "' expects a string value");
      const std::string& s = v.as_string();
      if (s.size() > f.string_length)
        return Status::failure("string too long for field '" + f.name + "' (" +
                               std::to_string(s.size()) + " > " + std::to_string(f.string_length) + ")");
      for (std::size_t i = 0; i < f.string_length; ++i) {
        out.push_back(i < s.size() ? static_cast<std::byte>(s[i]) : std::byte{0});
      }
      return Status::success();
    }
    default: {
      const std::int64_t i = v.as_int();
      if (auto st = check_range(f, i); !st.ok()) return st;
      put_uint(out, static_cast<std::uint64_t>(i), f.wire_size());
      return Status::success();
    }
  }
}

/// Overwrite `out` with the field at `offset`. String fields append into
/// the value's existing string storage (capacity reuse); everything else
/// is a scalar assignment. The allocation-free core of decode_into().
void decode_field_into(ta::Value& out, std::span<const std::byte> in, std::size_t offset,
                       const FieldSpec& f) {
  switch (f.type) {
    case FieldType::kBoolean:
      out = ta::Value{get_uint(in, offset, 1) != 0};
      return;
    case FieldType::kFloat32:
      out = ta::Value{static_cast<double>(
          std::bit_cast<float>(static_cast<std::uint32_t>(get_uint(in, offset, 4))))};
      return;
    case FieldType::kFloat64:
      out = ta::Value{std::bit_cast<double>(get_uint(in, offset, 8))};
      return;
    case FieldType::kString: {
      std::string& s = out.mutable_string();
      s.clear();
      for (std::size_t i = 0; i < f.string_length; ++i) {
        const char c = static_cast<char>(in[offset + i]);
        if (c == '\0') break;
        s.push_back(c);
      }
      return;
    }
    case FieldType::kUInt8:
    case FieldType::kUInt16:
    case FieldType::kUInt32:
    case FieldType::kUInt64:
      out = ta::Value{static_cast<std::int64_t>(get_uint(in, offset, f.wire_size()))};
      return;
    default:
      out = ta::Value{sign_extend(get_uint(in, offset, f.wire_size()), f.wire_size())};
      return;
  }
}

ta::Value decode_field(std::span<const std::byte> in, std::size_t offset, const FieldSpec& f) {
  ta::Value v;
  decode_field_into(v, in, offset, f);
  return v;
}

}  // namespace

const ta::Value* ElementValue::field(const ElementSpec& spec, const std::string& field_name) const {
  for (std::size_t i = 0; i < spec.fields.size() && i < fields.size(); ++i) {
    if (spec.fields[i].name == field_name) return &fields[i];
  }
  return nullptr;
}

const ElementValue* MessageInstance::element(const std::string& element_name) const {
  for (const auto& e : elements_)
    if (e.element == element_name) return &e;
  return nullptr;
}

ElementValue* MessageInstance::element(const std::string& element_name) {
  for (auto& e : elements_)
    if (e.element == element_name) return &e;
  return nullptr;
}

const ElementValue* MessageInstance::element(Symbol element_sym) const {
  for (const auto& e : elements_)
    if (e.element_sym == element_sym) return &e;
  return nullptr;
}

ElementValue* MessageInstance::element(Symbol element_sym) {
  for (auto& e : elements_)
    if (e.element_sym == element_sym) return &e;
  return nullptr;
}

const ta::Value& MessageInstance::field(const std::string& element_name,
                                        const std::string& field_name,
                                        const MessageSpec& spec) const {
  const ElementSpec* es = spec.element(element_name);
  if (es == nullptr)
    throw SpecError("message '" + message_ + "' has no element '" + element_name + "'");
  const ElementValue* ev = element(element_name);
  if (ev == nullptr)
    throw SpecError("instance of '" + message_ + "' is missing element '" + element_name + "'");
  const ta::Value* v = ev->field(*es, field_name);
  if (v == nullptr)
    throw SpecError("element '" + element_name + "' has no field '" + field_name + "'");
  return *v;
}

MessageInstance make_instance(const MessageSpec& spec) {
  MessageInstance inst{spec.name()};
  for (const auto& es : spec.elements()) {
    ElementValue ev;
    ev.element = es.name;
    ev.element_sym = intern_symbol(es.name);
    for (const auto& fs : es.fields) {
      if (fs.static_value) {
        ev.fields.push_back(*fs.static_value);
      } else if (fs.type == FieldType::kString) {
        ev.fields.push_back(ta::Value{std::string{}});
      } else if (fs.type == FieldType::kBoolean) {
        ev.fields.push_back(ta::Value{false});
      } else if (fs.type == FieldType::kFloat32 || fs.type == FieldType::kFloat64) {
        ev.fields.push_back(ta::Value{0.0});
      } else {
        ev.fields.push_back(ta::Value{std::int64_t{0}});
      }
    }
    inst.add_element(std::move(ev));
  }
  return inst;
}

Result<std::vector<std::byte>> encode(const MessageSpec& spec, const MessageInstance& instance) {
  std::vector<std::byte> out;
  if (auto st = encode_into(spec, instance, out); !st.ok()) return st.error();
  return out;
}

Status encode_into(const MessageSpec& spec, const MessageInstance& instance,
                   std::vector<std::byte>& out) {
  if (instance.message() != spec.name())
    return Status::failure("instance of '" + instance.message() + "' encoded against spec '" +
                           spec.name() + "'");
  out.clear();
  out.reserve(spec.wire_size());
  if (instance.elements().size() != spec.elements().size())
    return Status::failure("instance of '" + spec.name() + "' has " +
                           std::to_string(instance.elements().size()) + " elements, spec has " +
                           std::to_string(spec.elements().size()));
  for (std::size_t ei = 0; ei < spec.elements().size(); ++ei) {
    const ElementSpec& es = spec.elements()[ei];
    const ElementValue& ev = instance.elements()[ei];
    if (ev.element != es.name)
      return Status::failure("element order mismatch: expected '" + es.name + "', got '" +
                             ev.element + "'");
    if (ev.fields.size() != es.fields.size())
      return Status::failure("element '" + es.name + "' field count mismatch");
    for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
      if (auto st = encode_field(out, es.fields[fi], ev.fields[fi]); !st.ok()) return st;
    }
  }
  return Status::success();
}

Result<MessageInstance> decode(const MessageSpec& spec, std::span<const std::byte> payload) {
  MessageInstance inst;
  if (auto st = decode_into(spec, payload, inst); !st.ok()) return st.error();
  return inst;
}

Status decode_into(const MessageSpec& spec, std::span<const std::byte> payload,
                   MessageInstance& scratch) {
  if (payload.size() != spec.wire_size())
    return Status::failure("payload size " + std::to_string(payload.size()) +
                           " does not match spec '" + spec.name() + "' (" +
                           std::to_string(spec.wire_size()) + " bytes)");
  // (Re)build the element skeleton only when the scratch instance is not
  // already shaped for this spec; in the steady state the structure
  // matches and only values are overwritten.
  const bool structured = scratch.message_sym().valid() &&
                          scratch.message_sym() == spec.name_sym() &&
                          scratch.elements().size() == spec.elements().size();
  if (!structured) {
    scratch.set_message(spec.name());
    scratch.elements().clear();
    for (const auto& es : spec.elements()) {
      ElementValue ev;
      ev.element = es.name;
      ev.element_sym = intern_symbol(es.name);
      ev.fields.resize(es.fields.size());
      scratch.add_element(std::move(ev));
    }
  }
  std::size_t offset = 0;
  for (std::size_t ei = 0; ei < spec.elements().size(); ++ei) {
    const ElementSpec& es = spec.elements()[ei];
    ElementValue& ev = scratch.elements()[ei];
    if (ev.fields.size() != es.fields.size()) ev.fields.resize(es.fields.size());
    for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
      decode_field_into(ev.fields[fi], payload, offset, es.fields[fi]);
      offset += es.fields[fi].wire_size();
    }
  }
  scratch.set_trace(0, 0);
  return Status::success();
}

bool matches_key(const MessageSpec& spec, std::span<const std::byte> payload) {
  if (payload.size() != spec.wire_size()) return false;
  std::size_t offset = 0;
  bool has_key = false;
  for (const auto& es : spec.elements()) {
    for (const auto& fs : es.fields) {
      if (es.key && fs.static_value) {
        has_key = true;
        const ta::Value decoded = decode_field(payload, offset, fs);
        if (!(decoded == *fs.static_value)) return false;
      }
      offset += fs.wire_size();
    }
  }
  return has_key;
}

}  // namespace decos::spec
