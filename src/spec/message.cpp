#include "spec/message.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "spec/codec_detail.hpp"
#include "spec/wire_layout.hpp"

namespace decos::spec {

using codec_detail::decode_field;
using codec_detail::decode_field_into;
using codec_detail::encode_field;

const ta::Value* ElementValue::field(const ElementSpec& spec, const std::string& field_name) const {
  for (std::size_t i = 0; i < spec.fields.size() && i < fields.size(); ++i) {
    if (spec.fields[i].name == field_name) return &fields[i];
  }
  return nullptr;
}

const ElementValue* MessageInstance::element(const std::string& element_name) const {
  for (const auto& e : elements_)
    if (e.element == element_name) return &e;
  return nullptr;
}

ElementValue* MessageInstance::element(const std::string& element_name) {
  for (auto& e : elements_)
    if (e.element == element_name) return &e;
  return nullptr;
}

const ElementValue* MessageInstance::element(Symbol element_sym) const {
  for (const auto& e : elements_)
    if (e.element_sym == element_sym) return &e;
  return nullptr;
}

ElementValue* MessageInstance::element(Symbol element_sym) {
  for (auto& e : elements_)
    if (e.element_sym == element_sym) return &e;
  return nullptr;
}

const ta::Value& MessageInstance::field(const std::string& element_name,
                                        const std::string& field_name,
                                        const MessageSpec& spec) const {
  const ElementSpec* es = spec.element(element_name);
  if (es == nullptr)
    throw SpecError("message '" + message_ + "' has no element '" + element_name + "'");
  const ElementValue* ev = element(element_name);
  if (ev == nullptr)
    throw SpecError("instance of '" + message_ + "' is missing element '" + element_name + "'");
  const ta::Value* v = ev->field(*es, field_name);
  if (v == nullptr)
    throw SpecError("element '" + element_name + "' has no field '" + field_name + "'");
  return *v;
}

MessageInstance make_instance(const MessageSpec& spec) {
  MessageInstance inst{spec.name()};
  for (const auto& es : spec.elements()) {
    ElementValue ev;
    ev.element = es.name;
    ev.element_sym = intern_symbol(es.name);
    for (const auto& fs : es.fields) {
      if (fs.static_value) {
        ev.fields.push_back(*fs.static_value);
      } else if (fs.type == FieldType::kString) {
        ev.fields.push_back(ta::Value{std::string{}});
      } else if (fs.type == FieldType::kBoolean) {
        ev.fields.push_back(ta::Value{false});
      } else if (fs.type == FieldType::kFloat32 || fs.type == FieldType::kFloat64) {
        ev.fields.push_back(ta::Value{0.0});
      } else {
        ev.fields.push_back(ta::Value{std::int64_t{0}});
      }
    }
    inst.add_element(std::move(ev));
  }
  return inst;
}

Result<std::vector<std::byte>> encode(const MessageSpec& spec, const MessageInstance& instance) {
  std::vector<std::byte> out;
  if (auto st = encode_into(spec, instance, out); !st.ok()) return st.error();
  return out;
}

Status encode_into(const MessageSpec& spec, const MessageInstance& instance,
                   std::vector<std::byte>& out) {
  return spec.layout().encode_into(spec, instance, out);
}

Status encode_fieldwalk_into(const MessageSpec& spec, const MessageInstance& instance,
                             std::vector<std::byte>& out) {
  if (instance.message() != spec.name())
    return Status::failure("instance of '" + instance.message() + "' encoded against spec '" +
                           spec.name() + "'");
  out.clear();
  out.reserve(spec.wire_size());
  if (instance.elements().size() != spec.elements().size())
    return Status::failure("instance of '" + spec.name() + "' has " +
                           std::to_string(instance.elements().size()) + " elements, spec has " +
                           std::to_string(spec.elements().size()));
  for (std::size_t ei = 0; ei < spec.elements().size(); ++ei) {
    const ElementSpec& es = spec.elements()[ei];
    const ElementValue& ev = instance.elements()[ei];
    if (ev.element != es.name)
      return Status::failure("element order mismatch: expected '" + es.name + "', got '" +
                             ev.element + "'");
    if (ev.fields.size() != es.fields.size())
      return Status::failure("element '" + es.name + "' field count mismatch");
    for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
      if (auto st = encode_field(out, es.fields[fi], ev.fields[fi]); !st.ok()) return st;
    }
  }
  return Status::success();
}

Result<MessageInstance> decode(const MessageSpec& spec, std::span<const std::byte> payload) {
  MessageInstance inst;
  if (auto st = decode_into(spec, payload, inst); !st.ok()) return st.error();
  return inst;
}

Status decode_into(const MessageSpec& spec, std::span<const std::byte> payload,
                   MessageInstance& scratch) {
  return spec.layout().decode_into(spec, payload, scratch);
}

Status decode_fieldwalk_into(const MessageSpec& spec, std::span<const std::byte> payload,
                             MessageInstance& scratch) {
  if (payload.size() != spec.wire_size())
    return Status::failure("payload size " + std::to_string(payload.size()) +
                           " does not match spec '" + spec.name() + "' (" +
                           std::to_string(spec.wire_size()) + " bytes)");
  // (Re)build the element skeleton only when the scratch instance is not
  // already shaped for this spec; in the steady state the structure
  // matches and only values are overwritten.
  const bool structured = scratch.message_sym().valid() &&
                          scratch.message_sym() == spec.name_sym() &&
                          scratch.elements().size() == spec.elements().size();
  if (!structured) {
    scratch.set_message(spec.name());
    scratch.elements().clear();
    for (const auto& es : spec.elements()) {
      ElementValue ev;
      ev.element = es.name;
      ev.element_sym = intern_symbol(es.name);
      ev.fields.resize(es.fields.size());
      scratch.add_element(std::move(ev));
    }
  }
  std::size_t offset = 0;
  for (std::size_t ei = 0; ei < spec.elements().size(); ++ei) {
    const ElementSpec& es = spec.elements()[ei];
    ElementValue& ev = scratch.elements()[ei];
    if (ev.fields.size() != es.fields.size()) ev.fields.resize(es.fields.size());
    for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
      decode_field_into(ev.fields[fi], payload, offset, es.fields[fi]);
      offset += es.fields[fi].wire_size();
    }
  }
  scratch.set_trace(0, 0);
  return Status::success();
}

bool matches_key(const MessageSpec& spec, std::span<const std::byte> payload) {
  return spec.layout().matches_key(spec, payload);
}

bool matches_key_fieldwalk(const MessageSpec& spec, std::span<const std::byte> payload) {
  if (payload.size() != spec.wire_size()) return false;
  std::size_t offset = 0;
  bool has_key = false;
  for (const auto& es : spec.elements()) {
    for (const auto& fs : es.fields) {
      if (es.key && fs.static_value) {
        has_key = true;
        const ta::Value decoded = decode_field(payload, offset, fs);
        if (!(decoded == *fs.static_value)) return false;
      }
      offset += fs.wire_size();
    }
  }
  return has_key;
}

}  // namespace decos::spec
