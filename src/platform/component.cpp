#include "platform/component.hpp"

#include <algorithm>

namespace decos::platform {

Job& Partition::add_job(std::unique_ptr<Job> job) {
  if (job->das() != das_)
    throw SpecError("job '" + job->name() + "' of DAS '" + job->das() +
                    "' cannot run in partition '" + name_ + "' of DAS '" + das_ + "'");
  jobs_.push_back(std::move(job));
  return *jobs_.back();
}

Duration Partition::demand() const {
  Duration total = Duration::zero();
  for (const auto& job : jobs_) total += job->execution_time();
  return total;
}

Partition& Component::add_partition(std::string name, std::string das, Duration offset,
                                    Duration budget) {
  partitions_.push_back(
      std::make_unique<Partition>(std::move(name), std::move(das), offset, budget));
  return *partitions_.back();
}

Status Component::validate() const {
  for (const auto& p : partitions_) {
    if (p->offset().is_negative() || p->offset() + p->budget() > period_)
      return Status::failure("partition '" + p->name() + "' exceeds the schedule period");
    if (p->demand() > p->budget())
      return Status::failure("partition '" + p->name() + "' job demand " +
                             p->demand().to_string() + " exceeds budget " +
                             p->budget().to_string());
  }
  // Pairwise disjoint windows (temporal partitioning).
  std::vector<const Partition*> sorted;
  for (const auto& p : partitions_) sorted.push_back(p.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const Partition* a, const Partition* b) { return a->offset() < b->offset(); });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1]->offset() + sorted[i - 1]->budget() > sorted[i]->offset())
      return Status::failure("partitions '" + sorted[i - 1]->name() + "' and '" +
                             sorted[i]->name() + "' overlap");
  }
  return Status::success();
}

void Component::start() {
  validate().check();
  for (auto& p : partitions_) schedule_partition(*p, 0);
}

void Component::schedule_partition(Partition& partition, std::uint64_t cycle) {
  partition.cycle_ = cycle;
  const Instant local_start = Instant::origin() +
                              period_ * static_cast<std::int64_t>(cycle) + partition.offset();
  Instant when = controller_.clock().true_time_for(local_start);
  if (when < simulator_.now()) when = simulator_.now();
  // Self-timed kernel task: one pooled event node per partition for the
  // whole run, re-timed in place each cycle.
  partition.task_ = simulator_.schedule_periodic(when, [this, &partition] { activate(partition); });
}

void Component::activate(Partition& partition) {
  const std::uint64_t cycle = partition.cycle_;
  partition.cycle_ = cycle + 1;
  const Instant local_start = Instant::origin() +
                              period_ * static_cast<std::int64_t>(cycle + 1) + partition.offset();
  Instant when = controller_.clock().true_time_for(local_start);
  if (when < simulator_.now()) when = simulator_.now();
  partition.task_.reschedule_at(when);
  if (controller_.crashed()) return;
  ++activations_;

  // Dispatch the partition's jobs sequentially inside the window; a job
  // whose declared execution time no longer fits is skipped and counted
  // as an overrun -- it cannot spill into the next partition's window.
  Duration used = Duration::zero();
  const Instant local_now = controller_.clock().read(simulator_.now());
  for (const auto& job : partition.jobs()) {
    if (used + job->execution_time() > partition.budget()) {
      partition.count_overrun();
      continue;
    }
    job->step(local_now + used);
    job->count_activation();
    used += job->execution_time();
  }
}

}  // namespace decos::platform
