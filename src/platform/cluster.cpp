#include "platform/cluster.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace decos::platform {

Cluster::Cluster(ClusterConfig config) : config_{std::move(config)} {
  // Stamp log lines with this cluster's simulated time while it lives.
  log::set_time_provider(this, [](const void* owner) {
    const auto* cluster = static_cast<const Cluster*>(owner);
    return (cluster->simulator_.now() - Instant::origin()).ns();
  });
  auto schedule = vn::EncapsulationService::build_schedule(
      config_.round_length, config_.nodes, config_.allocations);
  if (!schedule.ok()) throw SpecError(schedule.error());
  bus_ = std::make_unique<tt::TtBus>(simulator_, std::move(schedule.value()), config_.bus);

  // Derive the kernel's timer-wheel tick from the TDMA granularity: a
  // round split into 256 ticks keeps every slot/round/partition event of
  // the next ~16 rounds (4096-bucket horizon) inside the wheel while the
  // wheel stays sparse. Resolution only affects speed, never dispatch
  // order; clamp to [1us, 1ms] so degenerate round lengths stay sane.
  const Duration tick = std::clamp(config_.round_length / 256, Duration::microseconds(1),
                                   Duration::milliseconds(1));
  simulator_.set_tick_resolution(tick);

  const Duration period =
      config_.component_period.is_zero() ? config_.round_length : config_.component_period;

  for (std::size_t i = 0; i < config_.nodes; ++i) {
    const double drift = i < config_.drift_ppm.size() ? config_.drift_ppm[i] : 0.0;
    controllers_.push_back(std::make_unique<tt::Controller>(
        simulator_, *bus_, static_cast<tt::NodeId>(i), sim::DriftingClock{drift}));
    if (config_.enable_clock_sync) {
      clock_syncs_.push_back(
          std::make_unique<services::ClockSync>(*controllers_.back(), config_.clock_sync));
    }
    if (config_.enable_membership) {
      memberships_.push_back(std::make_unique<services::Membership>(
          *controllers_.back(),
          services::MembershipConfig{config_.nodes, config_.membership_silence_threshold}));
    }
    components_.push_back(
        std::make_unique<Component>(simulator_, *controllers_.back(), period));
  }

  for (const auto& allocation : config_.allocations)
    encapsulation_.register_vn(allocation.vn, allocation.das);
}

Cluster::~Cluster() { log::clear_time_provider(this); }

std::vector<std::size_t> Cluster::vn_slots(tt::VnId vn, tt::NodeId node) const {
  std::vector<std::size_t> out;
  for (const std::size_t s : bus_->schedule().slots_of_vn(vn))
    if (bus_->schedule().slot(s).owner == node) out.push_back(s);
  return out;
}

void Cluster::start() {
  if (started_) throw SpecError("cluster started twice");
  started_ = true;
  for (auto& c : controllers_) c->start();
  for (auto& c : components_) c->start();
}

Duration Cluster::precision() const {
  Duration lo = Duration::max();
  Duration hi = -Duration::max();
  const Instant now = simulator_.now();
  for (const auto& c : controllers_) {
    if (c->crashed()) continue;
    const Duration offset = c->clock().read(now) - now;
    lo = std::min(lo, offset);
    hi = std::max(hi, offset);
  }
  return hi - lo;
}

}  // namespace decos::platform
