#include "platform/cluster.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace decos::platform {

namespace {

std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void uf_union(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  // Root = smaller node index, so partition numbering follows node order.
  const std::size_t ra = uf_find(parent, a);
  const std::size_t rb = uf_find(parent, b);
  if (ra < rb) parent[rb] = ra;
  else parent[ra] = rb;
}

}  // namespace

void derive_partitions(ClusterConfig& config,
                       const std::vector<std::vector<std::size_t>>& couplings) {
  config.partitions = 0;
  config.node_partition.clear();
  if (config.nodes == 0) return;
  std::vector<std::size_t> parent(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) parent[i] = i;
  for (const auto& allocation : config.allocations) {
    for (std::size_t i = 1; i < allocation.sender_slots.size(); ++i)
      uf_union(parent, allocation.sender_slots[0], allocation.sender_slots[i]);
  }
  for (const auto& group : couplings) {
    for (std::size_t i = 1; i < group.size(); ++i) uf_union(parent, group[0], group[i]);
  }
  // Number the islands 1..P in order of their lowest node index.
  std::vector<std::uint32_t> id_of_root(config.nodes, 0);
  std::uint32_t next_id = 0;
  config.node_partition.resize(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    const std::size_t root = uf_find(parent, i);
    if (id_of_root[root] == 0) id_of_root[root] = ++next_id;
    config.node_partition[i] = id_of_root[root];
  }
  if (next_id < 2) {
    // One island: nothing to run in parallel, stay on the classic kernel.
    config.node_partition.clear();
    return;
  }
  config.partitions = next_id;
}

Cluster::Cluster(ClusterConfig config) : config_{std::move(config)} {
  // Stamp log lines with this cluster's simulated time while it lives.
  log::set_time_provider(this, [](const void* owner) {
    const auto* cluster = static_cast<const Cluster*>(owner);
    return (cluster->simulator_.now() - Instant::origin()).ns();
  });
  auto schedule = vn::EncapsulationService::build_schedule(
      config_.round_length, config_.nodes, config_.allocations);
  if (!schedule.ok()) throw SpecError(schedule.error());
  bus_ = std::make_unique<tt::TtBus>(simulator_, std::move(schedule.value()), config_.bus);

  // Derive the kernel's timer-wheel tick from the TDMA granularity: a
  // round split into 256 ticks keeps every slot/round/partition event of
  // the next ~16 rounds (4096-bucket horizon) inside the wheel while the
  // wheel stays sparse. Resolution only affects speed, never dispatch
  // order; clamp to [1us, 1ms] so degenerate round lengths stay sane.
  const Duration tick = std::clamp(config_.round_length / 256, Duration::microseconds(1),
                                   Duration::milliseconds(1));
  simulator_.set_tick_resolution(tick);

  if (config_.partitions > 0) {
    if (config_.node_partition.size() != config_.nodes)
      throw SpecError("node_partition must list one home wheel per node");
    for (const std::uint32_t p : config_.node_partition)
      if (p < 1 || p > config_.partitions)
        throw SpecError("node_partition entries must be in [1, partitions]");
    simulator_.configure_partitions(config_.partitions, config_.sim_jobs);
  }

  const Duration period =
      config_.component_period.is_zero() ? config_.round_length : config_.component_period;

  for (std::size_t i = 0; i < config_.nodes; ++i) {
    // Node-local construction runs under the node's home wheel: the
    // controller (and the bus, at attach) capture their partition
    // affinity from the ambient kernel here.
    sim::KernelScope scope{simulator_, partition_of(i)};
    const double drift = i < config_.drift_ppm.size() ? config_.drift_ppm[i] : 0.0;
    controllers_.push_back(std::make_unique<tt::Controller>(
        simulator_, *bus_, static_cast<tt::NodeId>(i), sim::DriftingClock{drift}));
    if (config_.enable_clock_sync) {
      clock_syncs_.push_back(
          std::make_unique<services::ClockSync>(*controllers_.back(), config_.clock_sync));
    }
    if (config_.enable_membership) {
      memberships_.push_back(std::make_unique<services::Membership>(
          *controllers_.back(),
          services::MembershipConfig{config_.nodes, config_.membership_silence_threshold}));
    }
    components_.push_back(
        std::make_unique<Component>(simulator_, *controllers_.back(), period));
  }

  for (const auto& allocation : config_.allocations)
    encapsulation_.register_vn(allocation.vn, allocation.das);
}

Cluster::~Cluster() { log::clear_time_provider(this); }

std::vector<std::size_t> Cluster::vn_slots(tt::VnId vn, tt::NodeId node) const {
  std::vector<std::size_t> out;
  for (const std::size_t s : bus_->schedule().slots_of_vn(vn))
    if (bus_->schedule().slot(s).owner == node) out.push_back(s);
  return out;
}

void Cluster::start() {
  if (started_) throw SpecError("cluster started twice");
  started_ = true;
  for (std::size_t i = 0; i < controllers_.size(); ++i) {
    sim::KernelScope scope{simulator_, partition_of(i)};
    controllers_[i]->start();
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    sim::KernelScope scope{simulator_, partition_of(i)};
    components_[i]->start();
  }
}

Duration Cluster::precision() const {
  Duration lo = Duration::max();
  Duration hi = -Duration::max();
  const Instant now = simulator_.now();
  for (const auto& c : controllers_) {
    if (c->crashed()) continue;
    const Duration offset = c->clock().read(now) - now;
    lo = std::min(lo, offset);
    hi = std::max(hi, offset);
  }
  return hi - lo;
}

}  // namespace decos::platform
