// Jobs: the basic units of work of a DAS (paper Section II-A).
//
// A job exchanges messages with other jobs of its DAS exclusively through
// ports attached to the DAS's virtual network. Jobs are software fault
// containment regions (Section II-D): a faulty job can violate its port
// specification in the value or time domain, but the partition it runs in
// prevents it from touching other jobs' memory or stealing their CPU time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "spec/port_spec.hpp"
#include "util/time.hpp"
#include "vn/port.hpp"

namespace decos::platform {

class Job {
 public:
  Job(std::string name, std::string das) : name_{std::move(name)}, das_{std::move(das)} {}
  virtual ~Job() = default;

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  const std::string& name() const { return name_; }
  const std::string& das() const { return das_; }

  /// Called once per partition activation, at the job's dispatch instant
  /// (local time of the hosting component).
  virtual void step(Instant now) = 0;

  /// Declared execution time per activation; the partition budget check
  /// and overrun accounting use this (temporal partitioning).
  Duration execution_time() const { return execution_time_; }
  void set_execution_time(Duration t) { execution_time_ = t; }

  /// Create a port owned by this job. Ownership is the spatial
  /// partitioning mechanism: no other job can reach this memory.
  vn::Port& add_port(spec::PortSpec port_spec) {
    ports_.push_back(std::make_unique<vn::Port>(std::move(port_spec)));
    return *ports_.back();
  }
  const std::vector<std::unique_ptr<vn::Port>>& ports() const { return ports_; }

  std::uint64_t activations() const { return activations_; }
  void count_activation() { ++activations_; }

 private:
  std::string name_;
  std::string das_;
  Duration execution_time_ = Duration::microseconds(10);
  std::vector<std::unique_ptr<vn::Port>> ports_;
  std::uint64_t activations_ = 0;
};

/// Adaptor for defining jobs from lambdas (tests, examples, workload
/// generators).
class FunctionJob final : public Job {
 public:
  FunctionJob(std::string name, std::string das, std::function<void(FunctionJob&, Instant)> body)
      : Job{std::move(name), std::move(das)}, body_{std::move(body)} {}

  void step(Instant now) override { body_(*this, now); }

 private:
  std::function<void(FunctionJob&, Instant)> body_;
};

}  // namespace decos::platform
