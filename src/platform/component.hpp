// Components and partitions (paper Section II-B).
//
// A component is a self-contained computational element -- the hardware
// fault containment region -- hosting one or more partitions. Each
// partition is an encapsulated execution environment with a fixed window
// (offset + budget) inside the component's cyclic partition schedule;
// jobs of *different* DASes can share a component, each inside its own
// partition, without temporal or spatial interference.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "platform/job.hpp"
#include "sim/simulator.hpp"
#include "tt/controller.hpp"
#include "util/result.hpp"

namespace decos::platform {

/// One partition: a temporal window of the component's cyclic schedule
/// plus the jobs dispatched inside it.
class Partition {
 public:
  Partition(std::string name, std::string das, Duration offset, Duration budget)
      : name_{std::move(name)}, das_{std::move(das)}, offset_{offset}, budget_{budget} {}

  const std::string& name() const { return name_; }
  const std::string& das() const { return das_; }
  Duration offset() const { return offset_; }
  Duration budget() const { return budget_; }

  /// Add a job; it must belong to the partition's DAS (a partition serves
  /// exactly one DAS).
  Job& add_job(std::unique_ptr<Job> job);

  template <typename F>
  FunctionJob& add_function_job(std::string job_name, F body) {
    auto job = std::make_unique<FunctionJob>(std::move(job_name), das_, std::move(body));
    FunctionJob& ref = *job;
    add_job(std::move(job));
    return ref;
  }

  const std::vector<std::unique_ptr<Job>>& jobs() const { return jobs_; }

  /// Sum of declared job execution times per activation.
  Duration demand() const;

  std::uint64_t overruns() const { return overruns_; }
  void count_overrun() { ++overruns_; }

 private:
  friend class Component;

  std::string name_;
  std::string das_;
  Duration offset_;
  Duration budget_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::uint64_t overruns_ = 0;
  // Self-timed activation event, re-timed each cycle against the node's
  // drifting clock (owned by the hosting Component).
  sim::PeriodicTask task_;
  std::uint64_t cycle_ = 0;  // cycle of the next pending activation
};

/// A node computer: controller + partitions under a cyclic schedule.
class Component {
 public:
  /// `period`: length of the cyclic partition schedule (often the TDMA
  /// round length, but independent of it).
  Component(sim::Simulator& simulator, tt::Controller& controller, Duration period)
      : simulator_{simulator}, controller_{controller}, period_{period} {}

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  tt::NodeId id() const { return controller_.id(); }
  tt::Controller& controller() { return controller_; }
  Duration period() const { return period_; }

  Partition& add_partition(std::string name, std::string das, Duration offset, Duration budget);
  const std::vector<std::unique_ptr<Partition>>& partitions() const { return partitions_; }

  /// Static schedulability check: windows inside the period, pairwise
  /// disjoint, and every partition's job demand within its budget.
  Status validate() const;

  /// Begin dispatching partition activations. Call once, before running
  /// the simulation.
  void start();

  std::uint64_t activations() const { return activations_; }

 private:
  void schedule_partition(Partition& partition, std::uint64_t cycle);
  void activate(Partition& partition);

  sim::Simulator& simulator_;
  tt::Controller& controller_;
  Duration period_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::uint64_t activations_ = 0;
};

}  // namespace decos::platform
