// Cluster assembly: one-stop construction of a simulated DECOS cluster
// (simulator, TDMA bus, per-node controllers with drifting clocks, core
// services, components). Examples, benchmarks and integration tests all
// build on this instead of hand-wiring the substrate.
#pragma once

#include <memory>
#include <vector>

#include "platform/component.hpp"
#include "services/clock_sync.hpp"
#include "services/membership.hpp"
#include "sim/simulator.hpp"
#include "tt/bus.hpp"
#include "tt/controller.hpp"
#include "vn/encapsulation.hpp"

namespace decos::platform {

struct ClusterConfig {
  std::size_t nodes = 4;
  Duration round_length = Duration::milliseconds(10);
  /// Virtual-network bandwidth requests (core life-sign slots are added
  /// automatically, one per node).
  std::vector<vn::VnAllocation> allocations;
  /// Per-node clock drift in ppm; missing entries default to 0.
  std::vector<double> drift_ppm;
  tt::BusConfig bus;
  bool enable_clock_sync = true;
  services::ClockSyncConfig clock_sync;
  bool enable_membership = true;
  std::uint64_t membership_silence_threshold = 1;
  /// Cyclic partition-schedule period; zero = use the round length.
  Duration component_period = Duration::zero();

  // -- S28: partitioned event kernel ----------------------------------------
  /// Number of partition event wheels (0 = classic serial kernel). When
  /// nonzero the simulator runs the conservative parallel loop: node-local
  /// work executes on per-partition wheels between TDMA-lookahead
  /// barriers, byte-identical to `sim_jobs = 1`.
  std::size_t partitions = 0;
  /// Home wheel per node, 1-based, one entry per node. Every pair of
  /// nodes that shares state (same VN, bridged by a gateway) must share a
  /// wheel -- use derive_partitions() to compute this from the deployment.
  std::vector<std::uint32_t> node_partition;
  /// TaskPool workers driving the partition batches (`--sim-jobs`).
  std::size_t sim_jobs = 1;
};

/// Derive the finest valid kernel partitioning from the deployment:
/// union-find over the nodes, merging every allocation's sender set plus
/// each extra `coupling` group (list receiver nodes and gateway hosts
/// there -- anything sharing per-VN or per-gateway state). Fills
/// `partitions`/`node_partition`; a deployment that collapses to fewer
/// than two islands leaves the config classic (partitions = 0).
void derive_partitions(ClusterConfig& config,
                       const std::vector<std::vector<std::size_t>>& couplings = {});

/// A fully assembled cluster. Owns every part; stable addresses.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  tt::TtBus& bus() { return *bus_; }
  /// System-wide observability (hosted by the simulator).
  obs::MetricsRegistry& metrics() { return simulator_.metrics(); }
  obs::TraceCollector& spans() { return simulator_.spans(); }
  const ClusterConfig& config() const { return config_; }
  std::size_t size() const { return controllers_.size(); }

  tt::Controller& controller(std::size_t node) { return *controllers_.at(node); }
  Component& component(std::size_t node) { return *components_.at(node); }
  services::ClockSync* clock_sync(std::size_t node) {
    return node < clock_syncs_.size() ? clock_syncs_[node].get() : nullptr;
  }
  services::Membership* membership(std::size_t node) {
    return node < memberships_.size() ? memberships_[node].get() : nullptr;
  }
  vn::EncapsulationService& encapsulation() { return encapsulation_; }

  /// Home wheel of `node` (0 when the kernel is classic).
  std::uint32_t partition_of(std::size_t node) const {
    return config_.partitions == 0 ? 0 : config_.node_partition[node];
  }

  /// Slots of `vn` owned by `node` (for attaching VN senders).
  std::vector<std::size_t> vn_slots(tt::VnId vn, tt::NodeId node) const;

  /// Start all controllers and components. Call once.
  void start();

  /// Advance the simulation by `duration`.
  void run_for(Duration duration) {
    simulator_.run_until(simulator_.now() + duration);
  }

  /// Worst pairwise local-clock disagreement right now (precision).
  Duration precision() const;

 private:
  ClusterConfig config_;
  sim::Simulator simulator_;
  std::unique_ptr<tt::TtBus> bus_;
  std::vector<std::unique_ptr<tt::Controller>> controllers_;
  std::vector<std::unique_ptr<services::ClockSync>> clock_syncs_;
  std::vector<std::unique_ptr<services::Membership>> memberships_;
  std::vector<std::unique_ptr<Component>> components_;
  vn::EncapsulationService encapsulation_;
  bool started_ = false;
};

}  // namespace decos::platform
