// Physical-layer frames carried by the time-triggered bus.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tt/ids.hpp"
#include "util/time.hpp"

namespace decos::tt {

/// One frame as observed on the physical network. The overlay layer packs
/// virtual-network messages into the payload of the slots assigned to the
/// virtual network.
struct Frame {
  NodeId sender = kNoNode;
  VnId vn = kCoreVn;
  std::uint64_t round = 0;
  std::size_t slot_index = 0;
  std::vector<std::byte> payload;
  Instant sent_at;  // true (global) time the transmission started

  // Causal trace identity of the message instance carried in the payload
  // (0 = untraced). The overlay stamps these when it binds a port to a
  // slot; the bus parents its transmission span under span_id and
  // restamps the delivered copy so downstream spans chain off the bus hop.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

}  // namespace decos::tt
