// TDMA schedule of the time-triggered physical core network.
//
// Communication proceeds in rounds of fixed length; each round is divided
// into slots. A slot belongs to exactly one sending node and carries the
// traffic of exactly one virtual network (the overlay mechanism of [3]:
// the encapsulation service partitions physical bandwidth among virtual
// networks by assigning slots, which is what makes the temporal
// properties of one VN independent of all others).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tt/ids.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace decos::tt {

/// One TDMA slot within the cluster cycle.
struct SlotSpec {
  Duration offset;             // from round start
  Duration duration;           // transmission window
  NodeId owner = kNoNode;      // the only node allowed to send here
  VnId vn = kCoreVn;           // which virtual network the payload belongs to
  std::size_t payload_bytes = 32;  // capacity of the slot
};

/// The static cluster communication schedule, fixed at design time.
class TdmaSchedule {
 public:
  TdmaSchedule() = default;
  explicit TdmaSchedule(Duration round_length) : round_length_{round_length} {}

  Duration round_length() const { return round_length_; }
  void set_round_length(Duration length) { round_length_ = length; }

  std::size_t add_slot(SlotSpec slot) {
    slots_.push_back(slot);
    return slots_.size() - 1;
  }
  const std::vector<SlotSpec>& slots() const { return slots_; }
  const SlotSpec& slot(std::size_t index) const { return slots_.at(index); }
  std::size_t slot_count() const { return slots_.size(); }

  /// Nominal global start instant of `slot_index` in `round`.
  Instant slot_start(std::uint64_t round, std::size_t slot_index) const {
    return Instant::origin() + round_length_ * static_cast<std::int64_t>(round) +
           slots_.at(slot_index).offset;
  }

  /// Slot indices owned by `node`.
  std::vector<std::size_t> slots_of(NodeId node) const;
  /// Slot indices carrying `vn` traffic.
  std::vector<std::size_t> slots_of_vn(VnId vn) const;

  /// Total bytes per round allocated to `vn` (bandwidth partition size).
  std::size_t bytes_per_round(VnId vn) const;

  /// Validation: positive round length, slots sorted, non-overlapping,
  /// contained in the round, owned.
  Status validate() const;

 private:
  Duration round_length_ = Duration::zero();
  std::vector<SlotSpec> slots_;
};

/// Convenience builder: a homogeneous schedule with `slots_per_node`
/// equal slots for each of `nodes` nodes, all carrying `vn`, dividing
/// `round_length` evenly. Used by tests and simple examples.
TdmaSchedule make_uniform_schedule(Duration round_length, std::size_t nodes,
                                   std::size_t slots_per_node, std::size_t payload_bytes,
                                   VnId vn = kCoreVn);

}  // namespace decos::tt
