// Per-node communication controller.
//
// The controller is the node's interface to the time-triggered physical
// network (the paper's "core services for interfacing the time-triggered
// physical network", Fig. 1 bottom layer). It runs off the node's *local*
// drifting clock: transmissions are initiated when the local clock
// reaches the slot start, so an unsynchronized node drifts out of its
// guardian window -- which is exactly the behaviour the clock
// synchronization service (C2) must prevent.
//
// Host interface (CNI-style): per-slot send buffers that the overlay
// layer fills; listener callbacks for frame receptions (with the measured
// arrival-time deviation used by clock sync) and round boundaries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/clock.hpp"
#include "sim/simulator.hpp"
#include "tt/bus.hpp"
#include "tt/frame.hpp"

namespace decos::tt {

/// Buffering discipline of one slot's send buffer.
enum class SlotBuffering {
  kState,  // retain after transmission (update in place, TT semantics)
  kQueue,  // consume one entry per transmission (ET overlay semantics)
};

class Controller {
 public:
  /// Reception listener: frame, local arrival time, and the deviation of
  /// the arrival from its nominal local expectation (clock-sync input).
  using FrameListener = std::function<void(const Frame&, Instant local_arrival, Duration deviation)>;
  /// Invoked at every local round boundary with the completed round index.
  using RoundListener = std::function<void(std::uint64_t round)>;

  Controller(sim::Simulator& simulator, TtBus& bus, NodeId id, sim::DriftingClock clock);

  NodeId id() const { return id_; }
  sim::DriftingClock& clock() { return clock_; }
  const sim::DriftingClock& clock() const { return clock_; }
  sim::Simulator& simulator() { return simulator_; }
  /// The bus this node transmits on (overlay senders use its payload
  /// pool to keep the frame path allocation-free).
  TtBus& bus() { return bus_; }
  const TdmaSchedule& schedule() const { return bus_.schedule(); }
  /// Partition wheel running this node's local work (S28); 0 = global.
  std::uint32_t home_kernel() const { return home_kernel_; }

  /// Begin slot processing immediately, assuming the local clock is
  /// already synchronized to the cluster (round 0 starts at local time
  /// 0). Must be called once before the simulation runs.
  void start();

  /// Cold-start integration: listen for traffic instead of transmitting.
  /// On the first received frame the controller adopts the sender's time
  /// base (state-corrects its clock by the observed deviation) and joins
  /// slot processing from the following round. If the medium stays
  /// silent for `listen_timeout` (local time), the node assumes the role
  /// of the cold-start master and begins transmitting on its own clock.
  /// Stagger the timeout per node to avoid simultaneous masters.
  void start_integration(Duration listen_timeout);

  /// True while the node is still listening (not yet integrated).
  bool integrating() const { return integrating_; }

  // -- host (CNI) interface -------------------------------------------------
  /// Overwrite the state buffer of an owned slot.
  void write_send_buffer(std::size_t slot_index, std::vector<std::byte> payload);
  /// Append to the queue buffer of an owned slot (ET overlay). Returns
  /// false if the queue is full (bounded by `queue_capacity`).
  bool enqueue_send(std::size_t slot_index, std::vector<std::byte> payload);
  void set_slot_buffering(std::size_t slot_index, SlotBuffering mode, std::size_t queue_capacity = 64);
  /// Pending entries in a queue-buffered slot.
  std::size_t queue_depth(std::size_t slot_index) const;

  /// Payload handed back by a slot source, with the causal trace identity
  /// of the message instance it encodes (0 = untraced).
  struct SlotPayload {
    std::vector<std::byte> bytes;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
  };

  /// Pull-style payload source: invoked at the slot's transmission
  /// instant; takes precedence over the slot buffers. Returning nullopt
  /// sends an empty life-sign frame. This is how the overlay layer binds
  /// output ports (TT) and priority queues (ET) to slots.
  using SlotSource = std::function<std::optional<SlotPayload>()>;
  void set_slot_source(std::size_t slot_index, SlotSource source);

  void add_frame_listener(FrameListener listener) { frame_listeners_.push_back(std::move(listener)); }
  void add_round_listener(RoundListener listener) { round_listeners_.push_back(std::move(listener)); }

  // -- fault hooks ------------------------------------------------------
  /// A crashed node neither sends nor receives. Can be cleared again to
  /// model transient outages.
  void set_crashed(bool crashed) { crashed_ = crashed; }
  bool crashed() const { return crashed_; }
  /// Fail silently on sending only (receive still works): omission faults.
  void set_send_omission_rate(double rate, std::uint64_t seed = 1);
  /// Attempt an immediate transmission claiming `slot_index` (babbling /
  /// masquerading; normally stopped by the guardian). Returns guardian verdict.
  bool babble(std::size_t slot_index, VnId vn, std::vector<std::byte> payload);

  // -- bus-side interface -----------------------------------------------
  /// Called by the bus when a frame delivery reaches this node.
  void deliver(const Frame& frame);

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }

 private:
  struct SlotState {
    SlotBuffering buffering = SlotBuffering::kState;
    std::size_t queue_capacity = 64;
    std::optional<std::vector<std::byte>> state_buffer;
    std::deque<std::vector<std::byte>> queue;
    SlotSource source;
    // Self-timed transmit event: the same pooled kernel node fires every
    // round, re-timed against the drifting local clock -- no allocation,
    // no slot lookup on the TDMA hot path.
    sim::PeriodicTask task;
    std::uint64_t round = 0;  // round of the next pending transmission
  };

  void start_from_round(std::uint64_t round);
  void schedule_slot(std::size_t slot_index, SlotState& state, std::uint64_t round);
  void schedule_round_end(std::uint64_t round);
  void transmit_slot(std::size_t slot_index, SlotState& state);
  void round_end();
  /// Simulator event time at which this node's clock shows `local`.
  Instant true_time_for_local(Instant local) const { return clock_.true_time_for(local); }

  sim::Simulator& simulator_;
  TtBus& bus_;
  NodeId id_;
  sim::DriftingClock clock_;
  // Partition wheel owning this node's local work (round boundaries,
  // deliveries); captured from the ambient kernel at construction. Slot
  // transmissions always go to the global wheel regardless.
  std::uint32_t home_kernel_ = 0;
  std::unordered_map<std::size_t, SlotState> slots_;
  std::vector<FrameListener> frame_listeners_;
  std::vector<RoundListener> round_listeners_;
  sim::PeriodicTask round_task_;  // self-timed round-boundary event
  std::uint64_t next_round_ = 0;  // round the pending boundary completes
  bool crashed_ = false;
  bool integrating_ = false;
  sim::EventId integration_timeout_ = 0;
  double send_omission_rate_ = 0.0;
  std::uint64_t omission_rng_state_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

}  // namespace decos::tt
