// The time-triggered broadcast bus with central bus guardian.
//
// Realizes core services C1 (predictable message transport) and C3
// (strong fault isolation): a node may transmit only inside its own slot
// window; the guardian blocks everything else, which is what contains a
// babbling-idiot node to its own bandwidth partition (paper Sections
// II-C/II-D; quantified by experiment E7).
//
// Collision model for guardian-off ablations: two transmissions whose
// intervals on the medium overlap destroy each other -- neither frame is
// delivered, which is the worst-case but physically honest outcome on a
// shared bus.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "tt/frame.hpp"
#include "tt/schedule.hpp"
#include "util/time.hpp"

namespace decos::tt {

class Controller;

/// Physical-layer parameters.
struct BusConfig {
  Duration propagation = Duration::nanoseconds(250);  // ~50m bus
  Duration per_byte = Duration::nanoseconds(80);      // 100 Mbit/s
  /// Guardian acceptance window around the nominal slot start; must cover
  /// the cluster's clock-synchronization precision.
  Duration guardian_tolerance = Duration::microseconds(20);
  bool guardian_enabled = true;
};

/// Broadcast bus connecting all controllers of the cluster.
class TtBus {
 public:
  TtBus(sim::Simulator& simulator, TdmaSchedule schedule, BusConfig config = {});

  const TdmaSchedule& schedule() const { return schedule_; }
  const BusConfig& config() const { return config_; }
  void set_guardian_enabled(bool enabled) { config_.guardian_enabled = enabled; }

  /// Register a receiver. The ambient kernel at attach time (the node's
  /// home partition, S28) picks the wheel that runs this controller's
  /// frame deliveries when the kernel is partitioned.
  void attach(Controller& controller) {
    controllers_.push_back(&controller);
    kernels_.push_back(simulator_.current_kernel());
    groups_.clear();  // delivery groups rebuilt lazily on next use
  }

  /// Attempt a transmission. Returns true if the guardian admitted it.
  /// Called by controllers at their (locally timed) slot starts -- and by
  /// the fault injector at arbitrary instants to model babbling.
  bool transmit(Frame frame);

  sim::TraceRecorder& trace() { return trace_; }

  /// Counters for E7 and the guardian tests.
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_blocked() const { return frames_blocked_; }
  std::uint64_t collisions() const { return collisions_; }

  /// Time a payload of `bytes` occupies the medium (including header).
  Duration transmission_time(std::size_t bytes) const {
    return config_.per_byte * static_cast<std::int64_t>(bytes + 8);
  }

  // -- payload recycling --------------------------------------------------
  /// Warmed payload buffers for the frame path (S29): overlay senders
  /// acquire a buffer, encode into it, and the bus recycles it after the
  /// frame leaves the medium (delivered, blocked or destroyed), so the
  /// steady-state frame path performs no heap allocation. On a
  /// partitioned kernel the pool is bypassed -- senders run on partition
  /// wheels while recycling happens in the global delivery phase, and a
  /// shared free list would race.
  std::vector<std::byte> acquire_payload() {
    if (simulator_.partitioned() || payload_pool_.empty()) return {};
    std::vector<std::byte> buffer = std::move(payload_pool_.back());
    payload_pool_.pop_back();
    buffer.clear();
    return buffer;
  }
  void recycle_payload(std::vector<std::byte>&& payload) {
    if (simulator_.partitioned() || payload.capacity() == 0) return;
    if (payload_pool_.size() >= kPayloadPoolCap) return;
    payload_pool_.push_back(std::move(payload));
  }

 private:
  static constexpr std::size_t kPayloadPoolCap = 64;
  bool guardian_admits(const Frame& frame, Instant now) const;

  /// Receivers grouped by home kernel for the partitioned delivery
  /// fan-out, kernel-ascending so the per-frame injections land in wheel
  /// order (deterministic mailbox merge at the barrier).
  struct DeliveryGroup {
    std::uint32_t kernel = 0;
    std::vector<Controller*> members;
  };
  void ensure_groups();
  void fan_out(const Frame& delivered, Instant delivered_at);

  sim::Simulator& simulator_;
  TdmaSchedule schedule_;
  BusConfig config_;
  std::vector<Controller*> controllers_;
  std::vector<std::uint32_t> kernels_;  // parallel to controllers_
  std::vector<DeliveryGroup> groups_;
  sim::TraceRecorder trace_;

  obs::Counter* frames_sent_metric_;      // tt.frames_sent
  obs::Counter* frames_blocked_metric_;   // tt.frames_blocked
  obs::Counter* collisions_metric_;       // tt.collisions
  obs::Histogram* slot_occupancy_;        // tt.slot_occupancy_bytes

  // In-flight transmission bookkeeping for the collision model.
  struct InFlight {
    Instant start;
    Instant end;
    sim::EventId delivery;
    bool corrupted = false;
  };
  std::vector<InFlight> in_flight_;

  std::vector<std::vector<std::byte>> payload_pool_;

  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_blocked_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace decos::tt
