#include "tt/bus.hpp"

#include <algorithm>

#include "tt/controller.hpp"

namespace decos::tt {

TtBus::TtBus(sim::Simulator& simulator, TdmaSchedule schedule, BusConfig config)
    : simulator_{simulator}, schedule_{std::move(schedule)}, config_{config} {
  schedule_.validate().check();
}

bool TtBus::guardian_admits(const Frame& frame, Instant now) const {
  if (frame.slot_index >= schedule_.slot_count()) return false;
  const SlotSpec& slot = schedule_.slot(frame.slot_index);
  if (slot.owner != frame.sender) return false;
  if (slot.vn != frame.vn) return false;
  if (frame.payload.size() > slot.payload_bytes) return false;
  const Instant nominal = schedule_.slot_start(frame.round, frame.slot_index);
  const Duration deviation = (now - nominal).abs();
  return deviation <= config_.guardian_tolerance;
}

bool TtBus::transmit(Frame frame) {
  const Instant now = simulator_.now();
  frame.sent_at = now;

  if (config_.guardian_enabled && !guardian_admits(frame, now)) {
    ++frames_blocked_;
    trace_.record(now, sim::TraceKind::kFrameBlocked, "node" + std::to_string(frame.sender),
                  "slot " + std::to_string(frame.slot_index), static_cast<std::int64_t>(frame.payload.size()));
    return false;
  }

  const Instant tx_end = now + transmission_time(frame.payload.size());

  // Collision check against transmissions still on the medium. Without
  // the guardian, a babbling node can overlap a legitimate slot; both
  // frames are destroyed.
  // Prune finished transmissions first.
  std::erase_if(in_flight_, [&](const InFlight& f) { return f.end + config_.propagation < now; });
  bool corrupted = false;
  for (auto& other : in_flight_) {
    if (now < other.end && other.start < tx_end) {  // interval overlap
      corrupted = true;
      if (!other.corrupted) {
        other.corrupted = true;
        simulator_.cancel(other.delivery);
        ++collisions_;
      }
    }
  }

  if (corrupted) {
    ++collisions_;
    trace_.record(now, sim::TraceKind::kFrameBlocked, "node" + std::to_string(frame.sender),
                  "collision in slot " + std::to_string(frame.slot_index));
    in_flight_.push_back(InFlight{now, tx_end, 0, true});
    return true;  // the guardian admitted it; the medium destroyed it
  }

  trace_.record(now, sim::TraceKind::kFrameSent, "node" + std::to_string(frame.sender),
                "slot " + std::to_string(frame.slot_index) + " vn " + std::to_string(frame.vn),
                static_cast<std::int64_t>(frame.payload.size()));

  const Instant delivery_time = tx_end + config_.propagation;
  const sim::EventId delivery = simulator_.schedule_at(delivery_time, [this, frame] {
    ++frames_delivered_;
    trace_.record(simulator_.now(), sim::TraceKind::kFrameDelivered,
                  "node" + std::to_string(frame.sender),
                  "slot " + std::to_string(frame.slot_index) + " vn " + std::to_string(frame.vn),
                  static_cast<std::int64_t>(frame.payload.size()));
    for (Controller* controller : controllers_) controller->deliver(frame);
  });
  in_flight_.push_back(InFlight{now, tx_end, delivery, false});
  return true;
}

}  // namespace decos::tt
