#include "tt/bus.hpp"

#include <algorithm>
#include <memory>

#include "tt/controller.hpp"

namespace decos::tt {

TtBus::TtBus(sim::Simulator& simulator, TdmaSchedule schedule, BusConfig config)
    : simulator_{simulator},
      schedule_{std::move(schedule)},
      config_{config},
      frames_sent_metric_{&simulator.metrics().counter("tt.frames_sent")},
      frames_blocked_metric_{&simulator.metrics().counter("tt.frames_blocked")},
      collisions_metric_{&simulator.metrics().counter("tt.collisions")},
      slot_occupancy_{&simulator.metrics().histogram("tt.slot_occupancy_bytes")} {
  schedule_.validate().check();
}

bool TtBus::guardian_admits(const Frame& frame, Instant now) const {
  if (frame.slot_index >= schedule_.slot_count()) return false;
  const SlotSpec& slot = schedule_.slot(frame.slot_index);
  if (slot.owner != frame.sender) return false;
  if (slot.vn != frame.vn) return false;
  if (frame.payload.size() > slot.payload_bytes) return false;
  const Instant nominal = schedule_.slot_start(frame.round, frame.slot_index);
  const Duration deviation = (now - nominal).abs();
  return deviation <= config_.guardian_tolerance;
}

bool TtBus::transmit(Frame frame) {
  const Instant now = simulator_.now();
  frame.sent_at = now;

  if (config_.guardian_enabled && !guardian_admits(frame, now)) {
    ++frames_blocked_;
    frames_blocked_metric_->add();
    DECOS_TRACE(trace_, now, sim::TraceKind::kFrameBlocked, "node" + std::to_string(frame.sender),
                "slot " + std::to_string(frame.slot_index),
                static_cast<std::int64_t>(frame.payload.size()));
    recycle_payload(std::move(frame.payload));
    return false;
  }

  const Instant tx_end = now + transmission_time(frame.payload.size());

  // Collision check against transmissions still on the medium. Without
  // the guardian, a babbling node can overlap a legitimate slot; both
  // frames are destroyed.
  // Prune finished transmissions first.
  std::erase_if(in_flight_, [&](const InFlight& f) { return f.end + config_.propagation < now; });
  bool corrupted = false;
  for (auto& other : in_flight_) {
    if (now < other.end && other.start < tx_end) {  // interval overlap
      corrupted = true;
      if (!other.corrupted) {
        other.corrupted = true;
        simulator_.cancel(other.delivery);
        ++collisions_;
        collisions_metric_->add();
      }
    }
  }

  if (corrupted) {
    ++collisions_;
    collisions_metric_->add();
    DECOS_TRACE(trace_, now, sim::TraceKind::kFrameBlocked, "node" + std::to_string(frame.sender),
                "collision in slot " + std::to_string(frame.slot_index));
    in_flight_.push_back(InFlight{now, tx_end, 0, true});
    recycle_payload(std::move(frame.payload));
    return true;  // the guardian admitted it; the medium destroyed it
  }

  frames_sent_metric_->add();
  slot_occupancy_->observe(static_cast<std::int64_t>(frame.payload.size()));
  DECOS_TRACE(trace_, now, sim::TraceKind::kFrameSent, "node" + std::to_string(frame.sender),
              "slot " + std::to_string(frame.slot_index) + " vn " + std::to_string(frame.vn),
              static_cast<std::int64_t>(frame.payload.size()));

  const Instant delivery_time = tx_end + config_.propagation;
  // The frame is move-captured: the delivery event owns the payload
  // buffer, restamps the trace in place (no copies) and hands the buffer
  // back to the pool once every receiver has seen it.
  const sim::EventId delivery = simulator_.schedule_at(delivery_time, [this, frame = std::move(frame)]() mutable {
    ++frames_delivered_;
    const Instant delivered_at = simulator_.now();
    DECOS_TRACE(trace_, delivered_at, sim::TraceKind::kFrameDelivered,
                "node" + std::to_string(frame.sender),
                "slot " + std::to_string(frame.slot_index) + " vn " + std::to_string(frame.vn),
                static_cast<std::int64_t>(frame.payload.size()));
    if (frame.trace_id != 0) {
      // The bus hop is one span: transmission start to delivery at the
      // receivers. Downstream spans (overlay delivery, gateway dissect)
      // parent under it, so restamp the frame before fan-out.
      frame.span_id = simulator_.spans().emit(
          frame.trace_id, frame.span_id, obs::Phase::kBus, "bus",
          "slot " + std::to_string(frame.slot_index), frame.sent_at, delivered_at,
          static_cast<std::int64_t>(frame.payload.size()));
    }
    fan_out(frame, delivered_at);
    recycle_payload(std::move(frame.payload));
  });
  in_flight_.push_back(InFlight{now, tx_end, delivery, false});
  return true;
}

void TtBus::ensure_groups() {
  if (!groups_.empty()) return;
  for (std::size_t i = 0; i < controllers_.size(); ++i) {
    auto it = std::find_if(groups_.begin(), groups_.end(),
                           [&](const DeliveryGroup& g) { return g.kernel == kernels_[i]; });
    if (it == groups_.end()) {
      groups_.push_back(DeliveryGroup{kernels_[i], {}});
      it = std::prev(groups_.end());
    }
    it->members.push_back(controllers_[i]);
  }
  std::sort(groups_.begin(), groups_.end(),
            [](const DeliveryGroup& a, const DeliveryGroup& b) { return a.kernel < b.kernel; });
}

void TtBus::fan_out(const Frame& delivered, Instant delivered_at) {
  if (!simulator_.partitioned()) {
    for (Controller* controller : controllers_) controller->deliver(delivered);
    return;
  }
  // Partitioned kernel (S28): the delivery event runs in the global
  // phase; receptions are node-local work, so each partition's receivers
  // get the frame on their own wheel. Injections target the delivery
  // instant itself -- the partition batch of the *next* lookahead window
  // runs them, preserving the global-before-partition order at equal
  // instants that the inline (sim-jobs 1) run uses too.
  ensure_groups();
  auto shared = std::make_shared<const Frame>(delivered);
  for (const DeliveryGroup& group : groups_) {
    if (group.kernel == 0) {
      for (Controller* controller : group.members) controller->deliver(*shared);
      continue;
    }
    // `group` outlives the event: attaches (which rebuild groups_) only
    // happen while the cluster is wired up, before the first transmission.
    const DeliveryGroup* members = &group;
    simulator_.schedule_on(group.kernel, delivered_at, [members, shared] {
      for (Controller* controller : members->members) controller->deliver(*shared);
    });
  }
}

}  // namespace decos::tt
