#include "tt/schedule.hpp"

#include <algorithm>

namespace decos::tt {

std::vector<std::size_t> TdmaSchedule::slots_of(NodeId node) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].owner == node) out.push_back(i);
  return out;
}

std::vector<std::size_t> TdmaSchedule::slots_of_vn(VnId vn) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].vn == vn) out.push_back(i);
  return out;
}

std::size_t TdmaSchedule::bytes_per_round(VnId vn) const {
  std::size_t total = 0;
  for (const auto& s : slots_)
    if (s.vn == vn) total += s.payload_bytes;
  return total;
}

Status TdmaSchedule::validate() const {
  if (round_length_ <= Duration::zero())
    return Status::failure("TDMA schedule needs a positive round length");
  if (slots_.empty()) return Status::failure("TDMA schedule has no slots");
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const auto& s = slots_[i];
    if (s.owner == kNoNode)
      return Status::failure("slot " + std::to_string(i) + " has no owner");
    if (s.duration <= Duration::zero())
      return Status::failure("slot " + std::to_string(i) + " has non-positive duration");
    if (s.offset.is_negative() || s.offset + s.duration > round_length_)
      return Status::failure("slot " + std::to_string(i) + " exceeds the round");
    if (s.payload_bytes == 0)
      return Status::failure("slot " + std::to_string(i) + " has zero payload capacity");
  }
  // Non-overlap: check in sorted order without mutating the schedule.
  std::vector<std::size_t> order(slots_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return slots_[a].offset < slots_[b].offset; });
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto& prev = slots_[order[i - 1]];
    const auto& cur = slots_[order[i]];
    if (prev.offset + prev.duration > cur.offset)
      return Status::failure("slots " + std::to_string(order[i - 1]) + " and " +
                             std::to_string(order[i]) + " overlap");
  }
  return Status::success();
}

TdmaSchedule make_uniform_schedule(Duration round_length, std::size_t nodes,
                                   std::size_t slots_per_node, std::size_t payload_bytes,
                                   VnId vn) {
  TdmaSchedule schedule{round_length};
  const std::size_t total = nodes * slots_per_node;
  const Duration slot_len = round_length / static_cast<std::int64_t>(total);
  for (std::size_t i = 0; i < total; ++i) {
    SlotSpec slot;
    slot.offset = slot_len * static_cast<std::int64_t>(i);
    slot.duration = slot_len;
    slot.owner = static_cast<NodeId>(i % nodes);
    slot.vn = vn;
    slot.payload_bytes = payload_bytes;
    schedule.add_slot(slot);
  }
  return schedule;
}

}  // namespace decos::tt
