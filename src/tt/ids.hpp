// Identifier types shared across the physical and overlay layers.
#pragma once

#include <cstdint>
#include <limits>

namespace decos::tt {

/// Physical node (component) identifier. A component is a hardware fault
/// containment region (paper Section II-D).
using NodeId = std::uint32_t;

/// Virtual-network identifier. VnId 0 is reserved for core-service
/// traffic (clock sync / membership life-signs).
using VnId = std::uint32_t;

inline constexpr VnId kCoreVn = 0;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

}  // namespace decos::tt
