#include "tt/controller.hpp"

namespace decos::tt {

Controller::Controller(sim::Simulator& simulator, TtBus& bus, NodeId id, sim::DriftingClock clock)
    : simulator_{simulator},
      bus_{bus},
      id_{id},
      clock_{clock},
      home_kernel_{simulator.current_kernel()} {
  bus_.attach(*this);
  for (const std::size_t slot_index : bus_.schedule().slots_of(id_)) {
    slots_.emplace(slot_index, SlotState{});
  }
}

void Controller::start() { start_from_round(0); }

void Controller::start_from_round(std::uint64_t round) {
  for (auto& [slot_index, state] : slots_) schedule_slot(slot_index, state, round);
  schedule_round_end(round);
}

void Controller::start_integration(Duration listen_timeout) {
  if (simulator_.partitioned())
    throw SpecError("cold-start integration is not supported on a partitioned kernel; "
                    "start() nodes synchronized or run the cell classic (partitions = 0)");
  integrating_ = true;
  // Silence watchdog runs on the (still unsynchronized) local clock.
  const Instant local_deadline = clock_.read(simulator_.now()) + listen_timeout;
  Instant when = true_time_for_local(local_deadline);
  if (when < simulator_.now()) when = simulator_.now();
  integration_timeout_ = simulator_.schedule_at(when, [this] {
    if (!integrating_) return;
    // Cold-start master: nobody is talking; this node's clock *defines*
    // the cluster time base from here on. The simulation's nominal
    // timeline (which the central guardian checks against) is an
    // arbitrary choice of coordinates, so we align the master's offset
    // to it -- physically this is the guardian adopting the first
    // transmitter's base, expressed as a coordinate change.
    integrating_ = false;
    clock_.become_reference();
    const Duration elapsed = clock_.read(simulator_.now()) - Instant::origin();
    const auto next_round =
        static_cast<std::uint64_t>(elapsed / bus_.schedule().round_length()) + 1;
    start_from_round(next_round);
  });
}

void Controller::write_send_buffer(std::size_t slot_index, std::vector<std::byte> payload) {
  auto it = slots_.find(slot_index);
  if (it == slots_.end())
    throw SpecError("node " + std::to_string(id_) + " does not own slot " +
                    std::to_string(slot_index));
  it->second.state_buffer = std::move(payload);
}

bool Controller::enqueue_send(std::size_t slot_index, std::vector<std::byte> payload) {
  auto it = slots_.find(slot_index);
  if (it == slots_.end())
    throw SpecError("node " + std::to_string(id_) + " does not own slot " +
                    std::to_string(slot_index));
  SlotState& state = it->second;
  if (state.queue.size() >= state.queue_capacity) return false;
  state.queue.push_back(std::move(payload));
  return true;
}

void Controller::set_slot_buffering(std::size_t slot_index, SlotBuffering mode,
                                    std::size_t queue_capacity) {
  auto it = slots_.find(slot_index);
  if (it == slots_.end())
    throw SpecError("node " + std::to_string(id_) + " does not own slot " +
                    std::to_string(slot_index));
  it->second.buffering = mode;
  it->second.queue_capacity = queue_capacity;
}

std::size_t Controller::queue_depth(std::size_t slot_index) const {
  const auto it = slots_.find(slot_index);
  return it == slots_.end() ? 0 : it->second.queue.size();
}

void Controller::set_slot_source(std::size_t slot_index, SlotSource source) {
  auto it = slots_.find(slot_index);
  if (it == slots_.end())
    throw SpecError("node " + std::to_string(id_) + " does not own slot " +
                    std::to_string(slot_index));
  it->second.source = std::move(source);
}

void Controller::set_send_omission_rate(double rate, std::uint64_t seed) {
  send_omission_rate_ = rate;
  omission_rng_state_ = seed * 2654435769ULL + 1;
}

void Controller::schedule_slot(std::size_t slot_index, SlotState& state, std::uint64_t round) {
  state.round = round;
  const Instant local_start = bus_.schedule().slot_start(round, slot_index);
  Instant when = true_time_for_local(local_start);
  if (when < simulator_.now()) when = simulator_.now();
  // Self-timed: each firing re-times the same kernel node against the
  // drifting (and sync-corrected) local clock. Assigning the task here
  // cancels a previous incarnation (re-integration restarts cleanly).
  //
  // Slot transmissions live on the *global* wheel: transmit_slot needs a
  // synchronous guardian verdict and fans the frame out across
  // partitions, so it must run in the single-threaded global phase.
  sim::KernelScope scope{simulator_, 0};
  state.task = simulator_.schedule_periodic(
      when, [this, slot_index, &state] { transmit_slot(slot_index, state); });
}

void Controller::schedule_round_end(std::uint64_t round) {
  next_round_ = round;
  const Instant local_end =
      Instant::origin() + bus_.schedule().round_length() * static_cast<std::int64_t>(round + 1);
  Instant when = true_time_for_local(local_end);
  if (when < simulator_.now()) when = simulator_.now();
  // Round boundaries are node-local work (clock-sync correction, overlay
  // dispatch): they run on the node's home partition wheel.
  sim::KernelScope scope{simulator_, home_kernel_};
  round_task_ = simulator_.schedule_periodic(when, [this] { round_end(); });
}

void Controller::round_end() {
  const std::uint64_t round = next_round_;
  if (!crashed_) {
    for (const auto& listener : round_listeners_) listener(round);
  }
  // Re-arm *after* the listeners: the clock-sync round hook corrects the
  // local clock, and the next boundary must be computed on the corrected
  // clock (same ordering as the old self-chaining event).
  next_round_ = round + 1;
  const Instant local_end =
      Instant::origin() + bus_.schedule().round_length() * static_cast<std::int64_t>(round + 2);
  Instant when = true_time_for_local(local_end);
  if (when < simulator_.now()) when = simulator_.now();
  round_task_.reschedule_at(when);
}

void Controller::transmit_slot(std::size_t slot_index, SlotState& state) {
  const std::uint64_t round = state.round;
  // Re-arm for the next round first so a blocked frame does not silence
  // the node forever.
  state.round = round + 1;
  const Instant local_start = bus_.schedule().slot_start(round + 1, slot_index);
  Instant when = true_time_for_local(local_start);
  if (when < simulator_.now()) when = simulator_.now();
  state.task.reschedule_at(when);

  if (crashed_) return;
  if (send_omission_rate_ > 0.0) {
    // Cheap deterministic per-slot coin flip (xorshift).
    omission_rng_state_ ^= omission_rng_state_ << 13;
    omission_rng_state_ ^= omission_rng_state_ >> 7;
    omission_rng_state_ ^= omission_rng_state_ << 17;
    const double u = static_cast<double>(omission_rng_state_ >> 11) * 0x1.0p-53;
    if (u < send_omission_rate_) return;
  }

  Frame frame;
  frame.sender = id_;
  frame.vn = bus_.schedule().slot(slot_index).vn;
  frame.round = round;
  frame.slot_index = slot_index;
  if (state.source) {
    if (auto payload = state.source()) {
      frame.payload = std::move(payload->bytes);
      frame.trace_id = payload->trace_id;
      frame.span_id = payload->span_id;
    }
  } else if (state.buffering == SlotBuffering::kState) {
    if (state.state_buffer) {
      // State buffers retransmit every round: copy into a pooled buffer
      // instead of allocating a fresh vector per transmission.
      frame.payload = bus_.acquire_payload();
      frame.payload.assign(state.state_buffer->begin(), state.state_buffer->end());
    }
  } else if (!state.queue.empty()) {
    frame.payload = std::move(state.queue.front());
    state.queue.pop_front();
  }
  // Even with an empty payload the frame is sent: it is the node's
  // life-sign for the membership service (core service C4).
  if (bus_.transmit(std::move(frame))) ++frames_sent_;
}

bool Controller::babble(std::size_t slot_index, VnId vn, std::vector<std::byte> payload) {
  Frame frame;
  frame.sender = id_;
  frame.vn = vn;
  frame.slot_index = slot_index;
  // Claim the round that would make the slot "current" -- a babbling
  // node lies about timing, so the round field is its best forgery.
  const Duration elapsed = simulator_.now() - Instant::origin();
  frame.round = static_cast<std::uint64_t>(elapsed / bus_.schedule().round_length());
  frame.payload = std::move(payload);
  return bus_.transmit(std::move(frame));
}

void Controller::deliver(const Frame& frame) {
  if (crashed_) return;
  ++frames_received_;
  const Instant true_now = simulator_.now();
  const Instant local_arrival = clock_.read(true_now);
  // Nominal local arrival: slot start + transmission + propagation, all
  // on the (ideal) global timeline which a perfectly synchronized local
  // clock would reproduce.
  const Instant nominal = bus_.schedule().slot_start(frame.round, frame.slot_index) +
                          bus_.transmission_time(frame.payload.size()) +
                          bus_.config().propagation;
  const Duration deviation = local_arrival - nominal;

  if (integrating_) {
    // Integration: the frame header carries the sender's global position
    // in the cluster cycle (round, slot); adopt that time base by
    // state-correcting the local clock and join from the next round.
    integrating_ = false;
    simulator_.cancel(integration_timeout_);
    clock_.correct(-deviation);
    start_from_round(frame.round + 1);
    // Fall through: the frame is still a normal reception (deviation is
    // now zero by construction).
    for (const auto& listener : frame_listeners_)
      listener(frame, clock_.read(true_now), Duration::zero());
    return;
  }

  for (const auto& listener : frame_listeners_) listener(frame, local_arrival, deviation);
}

}  // namespace decos::tt
