// Reference event kernel: the pre-PR-4 binary-heap + unordered_map
// implementation, preserved verbatim (minus metrics) as an executable
// model of the dispatch-order contract.
//
// It exists for two consumers:
//   - tests/sim/kernel_equivalence_test.cpp drives randomized schedules
//     through this model and the production wheel kernel in lockstep and
//     requires identical fire logs;
//   - bench/bench_e20_kernel.cpp measures the production kernel against
//     it (the old per-fire std::function allocation and map probes are
//     exactly what the refactor removed).
//
// Do not "improve" this type: its value is being the old semantics.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace decos::sim {

/// The old kernel: priority_queue of (when, seq, id) entries with the
/// callables in an id-keyed hash map; cancel erases the map entry and
/// leaves a tombstone in the heap.
class ReferenceKernel {
 public:
  using EventId = std::uint64_t;
  using Action = std::function<void()>;

  Instant now() const { return now_; }

  EventId schedule_at(Instant when, Action action) {
    if (when < now_) when = now_;
    const EventId id = next_id_++;
    queue_.push(Entry{when, next_seq_++, id});
    actions_.emplace(id, std::move(action));
    ++live_;
    return id;
  }

  EventId schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  bool cancel(EventId id) {
    const auto it = actions_.find(id);
    if (it == actions_.end()) return false;
    actions_.erase(it);
    --live_;
    return true;
  }

  bool step() {
    while (!queue_.empty()) {
      const Entry entry = queue_.top();
      queue_.pop();
      if (actions_.find(entry.id) == actions_.end()) continue;  // tombstone
      dispatch(entry);
      return true;
    }
    return false;
  }

  void run_until(Instant deadline) {
    while (!queue_.empty()) {
      const Entry entry = queue_.top();
      if (entry.when > deadline) break;
      queue_.pop();
      dispatch(entry);
    }
    if (now_ < deadline) now_ = deadline;
  }

  std::uint64_t dispatched() const { return dispatched_; }
  std::size_t pending() const { return live_; }

 private:
  struct Entry {
    Instant when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-instant events
    EventId id;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void dispatch(const Entry& entry) {
    const auto it = actions_.find(entry.id);
    if (it == actions_.end()) return;  // cancelled
    Action action = std::move(it->second);
    actions_.erase(it);
    --live_;
    now_ = entry.when;
    ++dispatched_;
    action();
  }

  Instant now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_map<EventId, Action> actions_;
};

}  // namespace decos::sim
