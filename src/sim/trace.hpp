// Structured trace recording. Modules emit typed trace records; tests and
// benches query them to measure latencies and verify orderings without
// string parsing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace decos::sim {

/// Categories of traced occurrences across the stack.
enum class TraceKind {
  kFrameSent,        // a frame entered the physical bus
  kFrameDelivered,   // a frame was delivered to receivers
  kFrameBlocked,     // bus guardian blocked an out-of-slot transmission
  kMessageSent,      // a job/gateway handed a message to a port
  kMessageReceived,  // a message reached an input port
  kGatewayForwarded, // gateway constructed and emitted a message
  kGatewayBlocked,   // gateway suppressed a message (filter/error)
  kAutomatonError,   // a timed automaton entered its error state
  kFaultInjected,    // fault injector acted
  kClockSync,        // resynchronization applied
  kMembershipChange, // membership vector changed
};

/// One trace record. `subject` identifies the entity (message or node
/// name); `detail` carries a kind-specific annotation.
struct TraceRecord {
  Instant when;
  TraceKind kind;
  std::string subject;
  std::string detail;
  std::int64_t value = 0;  // kind-specific numeric payload (e.g. bytes)
};

/// Append-only trace sink with simple query helpers.
class TraceRecorder {
 public:
  void record(Instant when, TraceKind kind, std::string subject, std::string detail = {},
              std::int64_t value = 0) {
    if (!enabled_) return;
    records_.push_back(TraceRecord{when, kind, std::move(subject), std::move(detail), value});
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  std::size_t count(TraceKind kind) const {
    std::size_t n = 0;
    for (const auto& r : records_)
      if (r.kind == kind) ++n;
    return n;
  }

  std::size_t count(TraceKind kind, const std::string& subject) const {
    std::size_t n = 0;
    for (const auto& r : records_)
      if (r.kind == kind && r.subject == subject) ++n;
    return n;
  }

  /// Invoke `fn` for every record of the given kind.
  void for_each(TraceKind kind, const std::function<void(const TraceRecord&)>& fn) const {
    for (const auto& r : records_)
      if (r.kind == kind) fn(r);
  }

 private:
  bool enabled_ = true;
  std::vector<TraceRecord> records_;
};

}  // namespace decos::sim
