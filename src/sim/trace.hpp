// Compatibility shim: the trace recorder moved into the observability
// layer (src/obs/trace.hpp) when metrics and causal spans were added.
// Existing decos::sim::TraceRecorder users keep compiling unchanged.
#pragma once

#include "obs/trace.hpp"

namespace decos::sim {

using obs::TraceKind;
using obs::TraceRecord;
using obs::TraceRecorder;

}  // namespace decos::sim
