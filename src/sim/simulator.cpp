#include "sim/simulator.hpp"

#include <algorithm>

namespace decos::sim {

Simulator::Simulator()
    : events_dispatched_{&metrics_.counter("sim.events_dispatched")},
      queue_depth_{&metrics_.gauge("sim.queue_depth")},
      handler_ns_{&metrics_.histogram("sim.handler_ns", obs::Determinism::kHostTime,
                                      kHandlerSampleMask + 1)} {}

obs::WindowAggregator& Simulator::enable_telemetry(obs::TelemetryConfig config) {
  if (telemetry_ == nullptr) {
    telemetry_ = std::make_unique<obs::WindowAggregator>(&metrics_, &spans_, config);
    spans_.set_sink(telemetry_.get());
    for (auto& hook : telemetry_hooks_) hook(*telemetry_);
    telemetry_hooks_.clear();
  }
  return *telemetry_;
}

void Simulator::on_telemetry(std::function<void(obs::WindowAggregator&)> hook) {
  if (telemetry_ != nullptr) {
    hook(*telemetry_);
    return;
  }
  telemetry_hooks_.push_back(std::move(hook));
}

void Simulator::configure_partitions(std::size_t count, std::size_t sim_jobs) {
  assert(partitions_.empty() && "kernel already partitioned");
  assert(pending() == 0 && "partition the kernel before scheduling events");
  if (count == 0) return;
  sim_jobs_ = std::max<std::size_t>(1, sim_jobs);
  for (std::size_t i = 1; i <= count; ++i) {
    partitions_.emplace_back();
    Kernel& k = partitions_.back();
    k.index = static_cast<std::uint32_t>(i);
    k.now = global_.now;
    k.queue.set_kernel(k.index);
    k.queue.set_resolution(global_.queue.resolution(), k.now);
  }
  partitioned_ = true;
  spans_.configure_partitions(count);
  // Eager registration: a parallel phase must never be the first to
  // register an instrument (registration order feeds the telemetry fold
  // order, which must not depend on thread interleaving).
  past_clamped_ = &metrics_.counter("sim.schedule_past_clamped");
  pool_ = std::make_unique<util::TaskPool>(sim_jobs_);  // <=1 workers: inline
}

void Simulator::note_past_clamp(Kernel& k) {
  ++k.past_clamps;
  if (in_partition_batch()) return;  // published at the barrier commit
  // Registered lazily so the counter only appears in snapshots of runs
  // that actually clamped (healthy runs keep their dead-instrument audit
  // clean). Partitioned kernels pre-register it at configure time.
  if (past_clamped_ == nullptr) past_clamped_ = &metrics_.counter("sim.schedule_past_clamped");
  past_clamped_->add();
  k.published_clamps = k.past_clamps;
}

void Simulator::file(Kernel& k, EventNode* n, Instant when) {
  if (when < k.now) {
    when = k.now;
    note_past_clamp(k);
  }
  k.queue.insert(n, when);
  update_depth();
}

bool Simulator::cancel(EventId id) {
  Kernel& k = kernel_at(EventQueue::kernel_of(id));
  assert((!in_partition_batch() || detail::t_active_kernel.index == k.index) &&
         "partition batches may only cancel events of their own wheel");
  EventNode* n = k.queue.resolve(id);
  if (n == nullptr || n->cancelled) return false;
  if (n == k.firing) {
    // A one-shot cancelling itself mid-flight already fired: report
    // false, like the old kernel whose dispatch erased the map entry
    // before invoking.
    if (n->kind == EventKind::kOneShot) return false;
    // Unfile the pre-filed next occurrence (periodic) if any; defer the
    // node release until its running callback returns -- releasing now
    // would destroy the callable that is executing.
    k.queue.remove(n);
    n->cancelled = true;
    update_depth();
    return true;
  }
  k.queue.remove(n);
  k.queue.release(n);
  update_depth();
  return true;
}

void Simulator::fire(Kernel& k, EventNode* n) {
  k.now = n->when;
  ++k.dispatched;
  // The counter is published from the per-wheel tallies with a plain
  // store (no RMW per event). Partition batches skip it entirely; the
  // barrier commit folds their counts in before telemetry reads them.
  if (!partitioned_) {
    events_dispatched_->publish(k.dispatched);
  } else if (!in_partition_batch()) {
    events_dispatched_->publish(partition_dispatched_ + global_.dispatched);
  }
  if (n->kind == EventKind::kPeriodic) {
    // File the next occurrence before the callback: same seq-assignment
    // point as the re-arm-first idiom clients used on the old kernel,
    // and it lets the callback cancel/re-time "the next fire" naturally.
    k.queue.insert(n, n->when + n->period);
  }
  k.firing = n;
  try {
    if ((k.dispatched & kHandlerSampleMask) == 0) {
      obs::ScopedTimer timer{*handler_ns_};
      n->action();
    } else {
      n->action();
    }
  } catch (...) {
    k.firing = nullptr;
    finish(k, n);
    throw;
  }
  k.firing = nullptr;
  finish(k, n);
}

void Simulator::finish(Kernel& k, EventNode* n) {
  if (n->cancelled) {
    k.queue.remove(n);  // no-op if the cancel already unfiled it
    k.queue.release(n);
  } else if (n->state == NodeState::kLimbo) {
    // One-shot done, or a self-timed task that chose not to reschedule.
    k.queue.release(n);
  }
  update_depth();
}

bool Simulator::step() {
  assert(!partitioned() && "step() is a classic-kernel operation");
  EventNode* n = global_.queue.pop_next(Instant::max());
  if (n == nullptr) return false;
  fire(global_, n);
  return true;
}

void Simulator::run_until(Instant deadline) {
  if (partitioned()) {
    run_partitioned(deadline);
    return;
  }
  while (EventNode* n = global_.queue.pop_next(deadline)) fire(global_, n);
  if (global_.now < deadline) global_.now = deadline;
  global_.queue.advance_to(deadline);
}

void Simulator::run_partition_batch(Kernel& k, Instant limit) {
  // RAII so a throwing handler still detaches the thread context (the
  // TaskPool carries the exception across the barrier).
  struct BatchScope {
    Simulator* sim;
    ~BatchScope() {
      sim->spans_.end_partition();
      detail::t_active_kernel = detail::ActiveKernel{};
    }
  } scope{this};
  detail::t_active_kernel = detail::ActiveKernel{this, &k, k.index};
  spans_.begin_partition(k.index);
  while (EventNode* n = k.queue.pop_next(limit)) fire(k, n);
}

void Simulator::commit_phase() {
  // Fixed order at every barrier -- this is what makes the parallel run
  // byte-identical to the inline run:
  //  0. the dispatch counter catches up with the per-wheel tallies of
  //     the finished parallel phase *before* the span/telemetry fold, so
  //     windows observe the same totals they would with live updates;
  partition_dispatched_ = 0;
  for (const Kernel& k : partitions_) partition_dispatched_ += k.dispatched;
  events_dispatched_->publish(partition_dispatched_ + global_.dispatched);
  //  1. partition span buffers merge canonically into the shared stream
  //     (telemetry windows fold here, single-threaded);
  spans_.commit_partitions();
  //  2. upward mailboxes drain in wheel order (global first, then
  //     partition index), posting order within a wheel; the posts run in
  //     global context and may schedule or re-post. A re-post lands in
  //     the *global* mailbox (that is the posting context), so the outer
  //     loop keeps draining until the commit is quiescent -- follow-up
  //     posts run at this barrier, not one lookahead window later;
  const auto drain = [](Kernel& k) {
    while (!k.mailbox.empty()) {
      std::vector<std::function<void()>> posts = std::move(k.mailbox);
      k.mailbox.clear();
      for (auto& fn : posts) fn();
    }
  };
  for (;;) {
    drain(global_);
    for (Kernel& k : partitions_) drain(k);
    if (global_.mailbox.empty()) break;
  }
  //  3. deferred per-wheel metrics publish in partition order.
  for (Kernel& k : partitions_) {
    if (const std::uint64_t delta = k.past_clamps - k.published_clamps; delta != 0) {
      past_clamped_->add(delta);
      k.published_clamps = k.past_clamps;
    }
  }
  queue_depth_->set(static_cast<std::int64_t>(pending()));
}

void Simulator::run_partitioned(Instant deadline) {
  // Barrier commits and the global phase run in global context whatever
  // ambient kernel setup code left behind.
  KernelScope coordinate{*this, 0};
  for (;;) {
    const Instant horizon = global_.queue.earliest_time();
    const bool final_window = horizon > deadline;
    // Partitions may run strictly *before* the next global instant
    // (conservative lookahead); the final window is deadline-inclusive.
    const Instant limit = final_window ? deadline : horizon - Duration::nanoseconds(1);
    due_.clear();
    for (Kernel& k : partitions_) {
      if (k.queue.earliest_time() <= limit) due_.push_back(&k);
    }
    if (!due_.empty()) {
      pool_->run_wave(due_.size(),
                      [this, limit](std::size_t i) { run_partition_batch(*due_[i], limit); });
    }
    commit_phase();
    if (final_window) break;
    // Global phase: single-threaded; everything due at the horizon,
    // including events it schedules at the horizon itself.
    while (EventNode* n = global_.queue.pop_next(horizon)) fire(global_, n);
  }
  if (global_.now < deadline) global_.now = deadline;
  global_.queue.advance_to(deadline);
  for (Kernel& k : partitions_) {
    if (k.now < deadline) k.now = deadline;
    k.queue.advance_to(deadline);
  }
}

bool Simulator::task_active(EventId id) const {
  const EventNode* n = kernel_at(EventQueue::kernel_of(id)).queue.resolve(id);
  return n != nullptr && !n->cancelled;
}

void Simulator::task_reschedule(EventId id, Instant when) {
  Kernel& k = kernel_at(EventQueue::kernel_of(id));
  assert((!in_partition_batch() || detail::t_active_kernel.index == k.index) &&
         "partition batches may only re-time events of their own wheel");
  EventNode* n = k.queue.resolve(id);
  assert(n != nullptr && "reschedule_at on a completed task");
  if (n == nullptr || n->cancelled) return;
  k.queue.remove(n);  // no-op while in limbo (self-timed re-arm mid-fire)
  file(k, n, when);
}

Instant Simulator::task_next_fire(EventId id) const {
  const EventNode* n = kernel_at(EventQueue::kernel_of(id)).queue.resolve(id);
  assert(n != nullptr && "next_fire on a completed task");
  return n == nullptr ? Instant::origin() : n->when;
}

}  // namespace decos::sim
