#include "sim/simulator.hpp"

#include <cassert>

namespace decos::sim {

Simulator::Simulator()
    : events_dispatched_{&metrics_.counter("sim.events_dispatched")},
      queue_depth_{&metrics_.gauge("sim.queue_depth")},
      handler_ns_{&metrics_.histogram("sim.handler_ns", obs::Determinism::kHostTime)} {}

EventId Simulator::schedule_at(Instant when, Action action) {
  assert(when >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  ++live_;
  queue_depth_->set(static_cast<std::int64_t>(live_));
  return id;
}

bool Simulator::cancel(EventId id) {
  const auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  --live_;
  return true;
}

void Simulator::dispatch(const Entry& entry) {
  const auto it = actions_.find(entry.id);
  if (it == actions_.end()) return;  // cancelled
  Action action = std::move(it->second);
  actions_.erase(it);
  --live_;
  now_ = entry.when;
  ++dispatched_;
  events_dispatched_->add();
  {
    obs::ScopedTimer timer{*handler_ns_};
    action();
  }
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (actions_.find(entry.id) == actions_.end()) continue;  // tombstone
    dispatch(entry);
    return true;
  }
  return false;
}

void Simulator::run_until(Instant deadline) {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    if (entry.when > deadline) break;
    queue_.pop();
    dispatch(entry);
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace decos::sim
