#include "sim/simulator.hpp"

namespace decos::sim {

Simulator::Simulator()
    : events_dispatched_{&metrics_.counter("sim.events_dispatched")},
      queue_depth_{&metrics_.gauge("sim.queue_depth")},
      handler_ns_{&metrics_.histogram("sim.handler_ns", obs::Determinism::kHostTime,
                                      kHandlerSampleMask + 1)} {}

obs::WindowAggregator& Simulator::enable_telemetry(obs::TelemetryConfig config) {
  if (telemetry_ == nullptr) {
    telemetry_ = std::make_unique<obs::WindowAggregator>(&metrics_, &spans_, config);
    spans_.set_sink(telemetry_.get());
    for (auto& hook : telemetry_hooks_) hook(*telemetry_);
    telemetry_hooks_.clear();
  }
  return *telemetry_;
}

void Simulator::on_telemetry(std::function<void(obs::WindowAggregator&)> hook) {
  if (telemetry_ != nullptr) {
    hook(*telemetry_);
    return;
  }
  telemetry_hooks_.push_back(std::move(hook));
}

void Simulator::note_past_clamp() {
  ++past_clamps_;
  // Registered lazily so the counter only appears in snapshots of runs
  // that actually clamped (healthy runs keep their dead-instrument audit
  // clean).
  if (past_clamped_ == nullptr) past_clamped_ = &metrics_.counter("sim.schedule_past_clamped");
  past_clamped_->add();
}

void Simulator::file(EventNode* n, Instant when) {
  if (when < now_) {
    when = now_;
    note_past_clamp();
  }
  queue_.insert(n, when);
  update_depth();
}

bool Simulator::cancel(EventId id) {
  EventNode* n = queue_.resolve(id);
  if (n == nullptr || n->cancelled) return false;
  if (n == firing_) {
    // A one-shot cancelling itself mid-flight already fired: report
    // false, like the old kernel whose dispatch erased the map entry
    // before invoking.
    if (n->kind == EventKind::kOneShot) return false;
    // Unfile the pre-filed next occurrence (periodic) if any; defer the
    // node release until its running callback returns -- releasing now
    // would destroy the callable that is executing.
    queue_.remove(n);
    n->cancelled = true;
    update_depth();
    return true;
  }
  queue_.remove(n);
  queue_.release(n);
  update_depth();
  return true;
}

void Simulator::fire(EventNode* n) {
  now_ = n->when;
  ++dispatched_;
  events_dispatched_->add();
  if (n->kind == EventKind::kPeriodic) {
    // File the next occurrence before the callback: same seq-assignment
    // point as the re-arm-first idiom clients used on the old kernel,
    // and it lets the callback cancel/re-time "the next fire" naturally.
    queue_.insert(n, n->when + n->period);
  }
  firing_ = n;
  try {
    if ((dispatched_ & kHandlerSampleMask) == 0) {
      obs::ScopedTimer timer{*handler_ns_};
      n->action();
    } else {
      n->action();
    }
  } catch (...) {
    firing_ = nullptr;
    finish(n);
    throw;
  }
  firing_ = nullptr;
  finish(n);
}

void Simulator::finish(EventNode* n) {
  if (n->cancelled) {
    queue_.remove(n);  // no-op if the cancel already unfiled it
    queue_.release(n);
  } else if (n->state == NodeState::kLimbo) {
    // One-shot done, or a self-timed task that chose not to reschedule.
    queue_.release(n);
  }
  update_depth();
}

bool Simulator::step() {
  EventNode* n = queue_.pop_next(Instant::max());
  if (n == nullptr) return false;
  fire(n);
  return true;
}

void Simulator::run_until(Instant deadline) {
  while (EventNode* n = queue_.pop_next(deadline)) fire(n);
  if (now_ < deadline) now_ = deadline;
  queue_.advance_to(deadline);
}

bool Simulator::task_active(EventId id) const {
  const EventNode* n = queue_.resolve(id);
  return n != nullptr && !n->cancelled;
}

void Simulator::task_reschedule(EventId id, Instant when) {
  EventNode* n = queue_.resolve(id);
  assert(n != nullptr && "reschedule_at on a completed task");
  if (n == nullptr || n->cancelled) return;
  queue_.remove(n);  // no-op while in limbo (self-timed re-arm mid-fire)
  file(n, when);
}

Instant Simulator::task_next_fire(EventId id) const {
  const EventNode* n = queue_.resolve(id);
  assert(n != nullptr && "next_fire on a completed task");
  return n == nullptr ? Instant::origin() : n->when;
}

}  // namespace decos::sim
