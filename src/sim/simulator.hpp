// Deterministic discrete-event simulation kernel.
//
// This is the substrate substituting for the paper's physical TTA cluster
// (DESIGN.md, substitution 1). Global time is the *true* physical time of
// the modelled cluster; per-node clocks with drift are layered on top in
// clock.hpp. Events scheduled for the same instant fire in insertion
// order, which makes every run bit-reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/time.hpp"

namespace decos::sim {

/// Handle to a scheduled event; can be used to cancel it.
using EventId = std::uint64_t;

/// Single-threaded event-driven simulator with a monotone global clock.
///
/// The simulator is the one object every part of a simulated system can
/// reach, so it also hosts the system-wide observability state: the
/// metrics registry and the causal span collector. Modules register
/// instruments / emit spans through the simulator they run on.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator();

  /// Current global (true) time.
  Instant now() const { return now_; }

  /// System-wide metrics registry (instruments registered by tt, vn,
  /// core, services and the simulator itself).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// System-wide causal span collector (per-message trace ids).
  obs::TraceCollector& spans() { return spans_; }
  const obs::TraceCollector& spans() const { return spans_; }

  /// Schedule `action` at absolute time `when`. Precondition: when >= now().
  EventId schedule_at(Instant when, Action action);

  /// Schedule `action` after `delay` from now. Precondition: delay >= 0.
  EventId schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event. Returns false if it already fired or never
  /// existed. Cancellation is O(1) (lazy: the tombstone is skipped at pop).
  bool cancel(EventId id);

  /// Run all events up to and including `deadline`; afterwards now() ==
  /// deadline even if the queue drained early.
  void run_until(Instant deadline);

  /// Run a single event; returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (for perf accounting).
  std::uint64_t dispatched() const { return dispatched_; }
  /// Number of events currently pending.
  std::size_t pending() const { return live_; }

 private:
  struct Entry {
    Instant when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-instant events
    EventId id;
    // Ordering for a min-heap via std::greater.
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void dispatch(const Entry& entry);

  Instant now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  // id -> action; erased on cancel so the popped tombstone is skipped.
  std::unordered_map<EventId, Action> actions_;

  obs::MetricsRegistry metrics_;
  obs::TraceCollector spans_;
  obs::Counter* events_dispatched_;  // sim.events_dispatched
  obs::Gauge* queue_depth_;          // sim.queue_depth (high-water)
  obs::Histogram* handler_ns_;       // sim.handler_ns (host time)
};

}  // namespace decos::sim
