// Deterministic discrete-event simulation kernel.
//
// This is the substrate substituting for the paper's physical TTA cluster
// (DESIGN.md, substitution 1). Global time is the *true* physical time of
// the modelled cluster; per-node clocks with drift are layered on top in
// clock.hpp. Events scheduled for the same instant fire in insertion
// order, which makes every run bit-reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace decos::sim {

/// Handle to a scheduled event; can be used to cancel it.
using EventId = std::uint64_t;

/// Single-threaded event-driven simulator with a monotone global clock.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current global (true) time.
  Instant now() const { return now_; }

  /// Schedule `action` at absolute time `when`. Precondition: when >= now().
  EventId schedule_at(Instant when, Action action);

  /// Schedule `action` after `delay` from now. Precondition: delay >= 0.
  EventId schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event. Returns false if it already fired or never
  /// existed. Cancellation is O(1) (lazy: the tombstone is skipped at pop).
  bool cancel(EventId id);

  /// Run all events up to and including `deadline`; afterwards now() ==
  /// deadline even if the queue drained early.
  void run_until(Instant deadline);

  /// Run a single event; returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (for perf accounting).
  std::uint64_t dispatched() const { return dispatched_; }
  /// Number of events currently pending.
  std::size_t pending() const { return live_; }

 private:
  struct Entry {
    Instant when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-instant events
    EventId id;
    // Ordering for a min-heap via std::greater.
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void dispatch(const Entry& entry);

  Instant now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  // id -> action; erased on cancel so the popped tombstone is skipped.
  std::unordered_map<EventId, Action> actions_;
};

}  // namespace decos::sim
