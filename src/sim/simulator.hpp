// Deterministic discrete-event simulation kernel.
//
// This is the substrate substituting for the paper's physical TTA cluster
// (DESIGN.md, substitution 1). Global time is the *true* physical time of
// the modelled cluster; per-node clocks with drift are layered on top in
// clock.hpp. Events scheduled for the same instant fire in insertion
// order, which makes every run bit-reproducible for a fixed seed.
//
// Storage is the typed event kernel of event_queue.hpp: pooled intrusive
// nodes in a timer wheel, with the callable constructed in place inside
// the node (action.hpp). Periodic work uses a PeriodicTask handle that
// the kernel re-files in place -- the steady state of a TDMA cluster
// (slots, rounds, partition activations, gateway ticks) therefore runs
// with zero allocation and zero hashing per firing.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace decos::sim {

class Simulator;

/// Move-only owner of a recurring event. Obtained from
/// Simulator::schedule_periodic; destroying (or cancelling) the handle
/// stops the recurrence. Two flavours share this handle:
///
///  - fixed period: the kernel re-files the event at when + period
///    *before* invoking the callback (so the callback observes the next
///    occurrence already pending, exactly like the re-arm-first idiom the
///    TDMA clients used on the old kernel);
///  - self-timed: the callback calls reschedule_at() with whatever
///    instant its (drifting, re-synchronised) local clock dictates. If it
///    returns without rescheduling, the task completes and the node is
///    released.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(PeriodicTask&& o) noexcept : sim_{o.sim_}, id_{o.id_} {
    o.sim_ = nullptr;
    o.id_ = 0;
  }
  PeriodicTask& operator=(PeriodicTask&& o) noexcept;
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask();

  /// True while the task still has a pending (or currently firing)
  /// occurrence.
  bool active() const;

  /// Stop the recurrence. Safe from inside the task's own callback (the
  /// node is reclaimed after the callback returns). Returns false if the
  /// task already completed or was never started.
  bool cancel();

  /// Re-time the next occurrence (self-timed tasks call this from their
  /// callback; it also re-times a pending occurrence from outside).
  /// Instants in the past clamp to now.
  void reschedule_at(Instant when);

  /// Instant of the next pending occurrence (the current one while the
  /// callback runs). Only valid while active().
  Instant next_fire() const;

 private:
  friend class Simulator;
  PeriodicTask(Simulator* sim, EventId id) : sim_{sim}, id_{id} {}

  Simulator* sim_ = nullptr;
  EventId id_ = 0;
};

/// Single-threaded event-driven simulator with a monotone global clock.
///
/// The simulator is the one object every part of a simulated system can
/// reach, so it also hosts the system-wide observability state: the
/// metrics registry and the causal span collector. Modules register
/// instruments / emit spans through the simulator they run on.
class Simulator {
 public:
  /// Compatibility alias; schedule_at accepts any callable, a
  /// std::function is just one (inline-stored) possibility.
  using Action = std::function<void()>;

  Simulator();

  /// Current global (true) time.
  Instant now() const { return now_; }

  /// System-wide metrics registry (instruments registered by tt, vn,
  /// core, services and the simulator itself).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// System-wide causal span collector (per-message trace ids).
  obs::TraceCollector& spans() { return spans_; }
  const obs::TraceCollector& spans() const { return spans_; }

  /// Create the streaming telemetry aggregator and install it as the
  /// span collector's sink. Idempotent (later calls return the existing
  /// aggregator; the first config wins). Queued on_telemetry hooks run
  /// on first creation.
  obs::WindowAggregator& enable_telemetry(obs::TelemetryConfig config = {});

  /// The aggregator, or nullptr while telemetry is not enabled.
  obs::WindowAggregator* telemetry() { return telemetry_.get(); }
  const obs::WindowAggregator* telemetry() const { return telemetry_.get(); }

  /// Register a hook that configures the aggregator (deadlines, bounds,
  /// flow registration). Runs immediately if telemetry is already
  /// enabled, otherwise when enable_telemetry is first called -- so
  /// modules can bind observability without caring whether the harness
  /// enables telemetry before or after wiring.
  void on_telemetry(std::function<void(obs::WindowAggregator&)> hook);

  /// Schedule `action` once at absolute time `when`. Instants in the
  /// past clamp to now() and count in sim.schedule_past_clamped.
  template <typename F>
  EventId schedule_at(Instant when, F&& action) {
    EventNode* n = queue_.acquire();
    n->action.emplace(std::forward<F>(action));
    n->kind = EventKind::kOneShot;
    file(n, when);
    return EventQueue::id_of(n);
  }

  /// Schedule `action` once after `delay` from now.
  template <typename F>
  EventId schedule_after(Duration delay, F&& action) {
    return schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Fixed-period recurring event: first occurrence at `first`, then
  /// every `period` (> 0) until the returned handle is cancelled. The
  /// next occurrence is filed *before* the callback runs.
  template <typename F>
  PeriodicTask schedule_periodic(Instant first, Duration period, F&& action) {
    assert(period > Duration::zero() && "periodic tasks need a positive period");
    EventNode* n = queue_.acquire();
    n->action.emplace(std::forward<F>(action));
    n->kind = EventKind::kPeriodic;
    n->period = period;
    file(n, first);
    return PeriodicTask{this, EventQueue::id_of(n)};
  }

  /// Self-timed recurring event: fires at `first`; each callback either
  /// calls PeriodicTask::reschedule_at for the next occurrence or lets
  /// the task complete. This is the handle for TDMA clients whose next
  /// fire depends on a drifting local clock.
  template <typename F>
  PeriodicTask schedule_periodic(Instant first, F&& action) {
    EventNode* n = queue_.acquire();
    n->action.emplace(std::forward<F>(action));
    n->kind = EventKind::kDriven;
    file(n, first);
    return PeriodicTask{this, EventQueue::id_of(n)};
  }

  /// Cancel a pending event. Returns false if it already fired or never
  /// existed. O(1): the node is unlinked eagerly, no tombstones remain.
  bool cancel(EventId id);

  /// Run all events up to and including `deadline`; afterwards now() ==
  /// deadline even if the queue drained early.
  void run_until(Instant deadline);

  /// Run a single event; returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (for perf accounting).
  std::uint64_t dispatched() const { return dispatched_; }
  /// Number of events currently pending.
  std::size_t pending() const { return queue_.live(); }

  /// Times a schedule target in the past was clamped to now (also
  /// surfaced as the sim.schedule_past_clamped counter once non-zero).
  std::uint64_t past_clamps() const { return past_clamps_; }

  /// Tick granularity of the timer wheel -- a pure performance knob
  /// (dispatch order is exact at any resolution). platform::Cluster
  /// derives it from the TDMA round layout. Only callable while no
  /// events are pending.
  void set_tick_resolution(Duration resolution) {
    assert(pending() == 0 && "re-ticking requires an empty queue");
    queue_.set_resolution(resolution, now_);
  }
  Duration tick_resolution() const { return queue_.resolution(); }

 private:
  friend class PeriodicTask;

  /// Host-time handler histogram is sampled 1-in-16: two steady_clock
  /// reads per event would dominate the dispatch cost the kernel is
  /// built to avoid.
  static constexpr std::uint64_t kHandlerSampleMask = 15;

  void file(EventNode* n, Instant when);
  void fire(EventNode* n);
  void finish(EventNode* n);
  void note_past_clamp();
  void update_depth() {
    queue_depth_->set(static_cast<std::int64_t>(queue_.live()));
  }

  bool task_active(EventId id) const;
  bool task_cancel(EventId id) { return cancel(id); }
  void task_reschedule(EventId id, Instant when);
  Instant task_next_fire(EventId id) const;

  Instant now_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t past_clamps_ = 0;
  EventQueue queue_;
  EventNode* firing_ = nullptr;  // node whose callback is on the stack

  obs::MetricsRegistry metrics_;
  obs::TraceCollector spans_;
  std::unique_ptr<obs::WindowAggregator> telemetry_;
  std::vector<std::function<void(obs::WindowAggregator&)>> telemetry_hooks_;
  obs::Counter* events_dispatched_;         // sim.events_dispatched
  obs::Gauge* queue_depth_;                 // sim.queue_depth (live depth)
  obs::Histogram* handler_ns_;              // sim.handler_ns (host time, sampled)
  obs::Counter* past_clamped_ = nullptr;    // sim.schedule_past_clamped (lazy)
};

inline PeriodicTask& PeriodicTask::operator=(PeriodicTask&& o) noexcept {
  if (this != &o) {
    cancel();
    sim_ = o.sim_;
    id_ = o.id_;
    o.sim_ = nullptr;
    o.id_ = 0;
  }
  return *this;
}

inline PeriodicTask::~PeriodicTask() { cancel(); }

inline bool PeriodicTask::active() const {
  return sim_ != nullptr && sim_->task_active(id_);
}

inline bool PeriodicTask::cancel() {
  if (sim_ == nullptr) return false;
  const bool cancelled = sim_->task_cancel(id_);
  sim_ = nullptr;
  id_ = 0;
  return cancelled;
}

inline void PeriodicTask::reschedule_at(Instant when) {
  assert(sim_ != nullptr && "reschedule_at on an empty task");
  sim_->task_reschedule(id_, when);
}

inline Instant PeriodicTask::next_fire() const {
  assert(sim_ != nullptr && "next_fire on an empty task");
  return sim_->task_next_fire(id_);
}

}  // namespace decos::sim
