// Deterministic discrete-event simulation kernel.
//
// This is the substrate substituting for the paper's physical TTA cluster
// (DESIGN.md, substitution 1). Global time is the *true* physical time of
// the modelled cluster; per-node clocks with drift are layered on top in
// clock.hpp. Events scheduled for the same instant fire in insertion
// order, which makes every run bit-reproducible for a fixed seed.
//
// Storage is the typed event kernel of event_queue.hpp: pooled intrusive
// nodes in a timer wheel, with the callable constructed in place inside
// the node (action.hpp). Periodic work uses a PeriodicTask handle that
// the kernel re-files in place -- the steady state of a TDMA cluster
// (slots, rounds, partition activations, gateway ticks) therefore runs
// with zero allocation and zero hashing per firing.
//
// Partitioned mode (S28): configure_partitions() splits the substrate
// into one *global* wheel plus N *partition* wheels (one per disjoint
// node group of the deployment) and turns run_until into a conservative
// parallel loop. The TDMA structure provides the lookahead: all
// cross-partition interaction flows through events on the global wheel
// (slot transmissions, bus deliveries, fault bursts), so every partition
// may safely run its private events up to -- but not including -- the
// next global instant t_g. One loop iteration is
//
//   1. parallel phase  -- each partition wheel drains events with
//      when < t_g on a TaskPool worker (inline at --sim-jobs 1);
//   2. barrier commit  -- single-threaded, in fixed order: partition
//      span buffers merge canonically (obs/span.hpp), partition->global
//      mailboxes drain in partition order, deferred per-wheel metrics
//      (past clamps, aggregate queue depth) publish;
//   3. global phase    -- all global events at t_g fire on the calling
//      thread; they may inject events into partition wheels directly
//      (schedule_on), which is the downward mailbox.
//
// The schedule is deterministic at any worker count by construction
// (each wheel is sequential, commits are ordered, the global phase is
// single-threaded), so every artifact -- span stream, metrics
// fingerprint, telemetry JSONL -- is byte-identical from --sim-jobs 1
// to N. Ordering rule at equal instants: global events at t fire before
// partition events at t (the partition horizon is exclusive).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "sim/event_queue.hpp"
#include "util/task_pool.hpp"
#include "util/time.hpp"

namespace decos::sim {

class Simulator;

namespace detail {
/// Thread-local execution context: which kernel (wheel) of which
/// simulator the calling thread is currently firing events for. Set by
/// the partition-phase driver around each batch; empty on the
/// coordinating thread, where the *ambient* kernel applies instead.
struct ActiveKernel {
  const void* simulator = nullptr;
  void* kernel = nullptr;
  std::uint32_t index = 0;
};
inline thread_local ActiveKernel t_active_kernel{};
}  // namespace detail

/// Move-only owner of a recurring event. Obtained from
/// Simulator::schedule_periodic; destroying (or cancelling) the handle
/// stops the recurrence. Two flavours share this handle:
///
///  - fixed period: the kernel re-files the event at when + period
///    *before* invoking the callback (so the callback observes the next
///    occurrence already pending, exactly like the re-arm-first idiom the
///    TDMA clients used on the old kernel);
///  - self-timed: the callback calls reschedule_at() with whatever
///    instant its (drifting, re-synchronised) local clock dictates. If it
///    returns without rescheduling, the task completes and the node is
///    released.
///
/// The id carries the owning wheel in its kernel byte, so handles created
/// under any partition stay valid and route to the right wheel.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  PeriodicTask(PeriodicTask&& o) noexcept : sim_{o.sim_}, id_{o.id_} {
    o.sim_ = nullptr;
    o.id_ = 0;
  }
  PeriodicTask& operator=(PeriodicTask&& o) noexcept;
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask();

  /// True while the task still has a pending (or currently firing)
  /// occurrence.
  bool active() const;

  /// Stop the recurrence. Safe from inside the task's own callback (the
  /// node is reclaimed after the callback returns). Returns false if the
  /// task already completed or was never started.
  bool cancel();

  /// Re-time the next occurrence (self-timed tasks call this from their
  /// callback; it also re-times a pending occurrence from outside).
  /// Instants in the past clamp to now.
  void reschedule_at(Instant when);

  /// Instant of the next pending occurrence (the current one while the
  /// callback runs). Only valid while active().
  Instant next_fire() const;

 private:
  friend class Simulator;
  PeriodicTask(Simulator* sim, EventId id) : sim_{sim}, id_{id} {}

  Simulator* sim_ = nullptr;
  EventId id_ = 0;
};

/// Event-driven simulator with a monotone global clock -- single-threaded
/// by default, a coordinator over partitioned kernels after
/// configure_partitions() (see the file comment).
///
/// The simulator is the one object every part of a simulated system can
/// reach, so it also hosts the system-wide observability state: the
/// metrics registry and the causal span collector. Modules register
/// instruments / emit spans through the simulator they run on.
class Simulator {
 public:
  /// Compatibility alias; schedule_at accepts any callable, a
  /// std::function is just one (inline-stored) possibility.
  using Action = std::function<void()>;

  Simulator();

  /// Current time of the calling context's wheel. On the classic
  /// (unpartitioned) kernel and between phases this is the global
  /// simulation time; inside a partition batch it is that partition's
  /// local time (always within the current lookahead window).
  Instant now() const { return ctx().now; }

  /// System-wide metrics registry (instruments registered by tt, vn,
  /// core, services and the simulator itself).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// System-wide causal span collector (per-message trace ids).
  obs::TraceCollector& spans() { return spans_; }
  const obs::TraceCollector& spans() const { return spans_; }

  /// Create the streaming telemetry aggregator and install it as the
  /// span collector's sink. Idempotent (later calls return the existing
  /// aggregator; the first config wins). Queued on_telemetry hooks run
  /// on first creation.
  obs::WindowAggregator& enable_telemetry(obs::TelemetryConfig config = {});

  /// The aggregator, or nullptr while telemetry is not enabled.
  obs::WindowAggregator* telemetry() { return telemetry_.get(); }
  const obs::WindowAggregator* telemetry() const { return telemetry_.get(); }

  /// Register a hook that configures the aggregator (deadlines, bounds,
  /// flow registration). Runs immediately if telemetry is already
  /// enabled, otherwise when enable_telemetry is first called -- so
  /// modules can bind observability without caring whether the harness
  /// enables telemetry before or after wiring.
  void on_telemetry(std::function<void(obs::WindowAggregator&)> hook);

  // -- Partitioned kernel (S28) --------------------------------------

  /// Split the substrate into `count` partition wheels next to the
  /// global wheel and run partition batches on `sim_jobs` TaskPool
  /// workers (1 = inline on the calling thread -- same loop, same
  /// artifacts). Call once, before any event is scheduled; partition
  /// affinity of subsequent scheduling follows the ambient kernel (see
  /// KernelScope). Pre-registers sim.schedule_past_clamped so lazy
  /// registration order cannot depend on phase interleaving.
  void configure_partitions(std::size_t count, std::size_t sim_jobs = 1);
  bool partitioned() const { return partitioned_; }
  std::size_t partition_count() const { return partitions_.size(); }
  std::size_t sim_jobs() const { return sim_jobs_; }

  /// Kernel new events are filed into when the calling thread is not a
  /// partition worker: 0 = global wheel, 1..count = partition wheels.
  /// Setup code pins controllers/components to their node's partition by
  /// wrapping construction in a KernelScope.
  void set_ambient_kernel(std::uint32_t kernel) {
    assert(kernel <= partitions_.size() && "ambient kernel out of range");
    ambient_ = kernel;
  }
  std::uint32_t ambient_kernel() const { return ambient_; }

  /// Wheel the calling context schedules onto (partition workers ignore
  /// the ambient kernel).
  std::uint32_t current_kernel() const {
    // Classic kernels skip the TLS probe: the thread context is only
    // ever set by partition batches, which require partitioned().
    if (!partitioned_) return 0;
    if (detail::t_active_kernel.simulator == this) return detail::t_active_kernel.index;
    return ambient_;
  }

  /// Schedule `action` once at absolute time `when`. Instants in the
  /// past clamp to now() and count in sim.schedule_past_clamped.
  template <typename F>
  EventId schedule_at(Instant when, F&& action) {
    return schedule_on(current_kernel(), when, std::forward<F>(action));
  }

  /// Schedule onto an explicit wheel: the *downward mailbox* of the
  /// partitioned loop (the global phase injects frame deliveries into
  /// receiver partitions this way). Partition batches may only schedule
  /// onto their own wheel -- cross-partition writes would race; upward
  /// communication goes through post_to_global().
  template <typename F>
  EventId schedule_on(std::uint32_t kernel, Instant when, F&& action) {
    Kernel& k = kernel_at(kernel);
    assert((detail::t_active_kernel.simulator != this ||
            detail::t_active_kernel.index == kernel) &&
           "partition batches may only schedule onto their own wheel");
    EventNode* n = k.queue.acquire();
    n->action.emplace(std::forward<F>(action));
    n->kind = EventKind::kOneShot;
    file(k, n, when);
    return EventQueue::id_of(n);
  }

  /// Schedule `action` once after `delay` from now.
  template <typename F>
  EventId schedule_after(Duration delay, F&& action) {
    return schedule_at(now() + delay, std::forward<F>(action));
  }

  /// Fixed-period recurring event: first occurrence at `first`, then
  /// every `period` (> 0) until the returned handle is cancelled. The
  /// next occurrence is filed *before* the callback runs.
  template <typename F>
  PeriodicTask schedule_periodic(Instant first, Duration period, F&& action) {
    assert(period > Duration::zero() && "periodic tasks need a positive period");
    Kernel& k = kernel_at(current_kernel());
    EventNode* n = k.queue.acquire();
    n->action.emplace(std::forward<F>(action));
    n->kind = EventKind::kPeriodic;
    n->period = period;
    file(k, n, first);
    return PeriodicTask{this, EventQueue::id_of(n)};
  }

  /// Self-timed recurring event: fires at `first`; each callback either
  /// calls PeriodicTask::reschedule_at for the next occurrence or lets
  /// the task complete. This is the handle for TDMA clients whose next
  /// fire depends on a drifting local clock.
  template <typename F>
  PeriodicTask schedule_periodic(Instant first, F&& action) {
    Kernel& k = kernel_at(current_kernel());
    EventNode* n = k.queue.acquire();
    n->action.emplace(std::forward<F>(action));
    n->kind = EventKind::kDriven;
    file(k, n, first);
    return PeriodicTask{this, EventQueue::id_of(n)};
  }

  /// Upward mailbox: a partition batch posts `fn` to run on the global
  /// wheel's context at the next barrier commit. Posts drain in the
  /// fixed merge order (partition index, then posting order within the
  /// partition), so cross-partition effects are deterministic at any
  /// worker count. Callable between phases too (runs at the next
  /// commit).
  void post_to_global(std::function<void()> fn) {
    kernel_at(current_kernel()).mailbox.push_back(std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or never
  /// existed. O(1): the node is unlinked eagerly, no tombstones remain.
  bool cancel(EventId id);

  /// Run all events up to and including `deadline`; afterwards now() ==
  /// deadline even if the queue drained early.
  void run_until(Instant deadline);

  /// Run a single event; returns false if the queue is empty. Classic
  /// kernel only (the partitioned loop has no single-event notion).
  bool step();

  /// Number of events dispatched so far, across every wheel (for perf
  /// accounting).
  std::uint64_t dispatched() const {
    std::uint64_t total = global_.dispatched;
    for (const Kernel& k : partitions_) total += k.dispatched;
    return total;
  }
  /// Number of events currently pending, across every wheel.
  std::size_t pending() const {
    std::size_t total = global_.queue.live();
    for (const Kernel& k : partitions_) total += k.queue.live();
    return total;
  }

  /// Times a schedule target in the past was clamped to now (also
  /// surfaced as the sim.schedule_past_clamped counter once non-zero).
  std::uint64_t past_clamps() const {
    std::uint64_t total = global_.past_clamps;
    for (const Kernel& k : partitions_) total += k.past_clamps;
    return total;
  }

  /// Tick granularity of the timer wheel -- a pure performance knob
  /// (dispatch order is exact at any resolution). platform::Cluster
  /// derives it from the TDMA round layout. Only callable while no
  /// events are pending; applies to every wheel.
  void set_tick_resolution(Duration resolution) {
    assert(pending() == 0 && "re-ticking requires an empty queue");
    global_.queue.set_resolution(resolution, global_.now);
    for (Kernel& k : partitions_) k.queue.set_resolution(resolution, k.now);
  }
  Duration tick_resolution() const { return global_.queue.resolution(); }

 private:
  friend class PeriodicTask;

  /// Host-time handler histogram is sampled 1-in-16: two steady_clock
  /// reads per event would dominate the dispatch cost the kernel is
  /// built to avoid.
  static constexpr std::uint64_t kHandlerSampleMask = 15;

  /// One event wheel plus its per-wheel dispatch state. The global
  /// wheel doubles as the whole classic (unpartitioned) kernel.
  struct Kernel {
    EventQueue queue;
    Instant now;
    std::uint64_t dispatched = 0;
    std::uint64_t past_clamps = 0;
    std::uint64_t published_clamps = 0;  // folded into the counter so far
    EventNode* firing = nullptr;         // node whose callback is on the stack
    std::uint32_t index = 0;             // 0 = global
    std::vector<std::function<void()>> mailbox;  // partition -> global posts
  };

  Kernel& kernel_at(std::uint32_t kernel) {
    assert(kernel <= partitions_.size() && "kernel index out of range");
    return kernel == 0 ? global_ : partitions_[kernel - 1];
  }
  const Kernel& kernel_at(std::uint32_t kernel) const {
    assert(kernel <= partitions_.size() && "kernel index out of range");
    return kernel == 0 ? global_ : partitions_[kernel - 1];
  }
  Kernel& ctx() {
    if (!partitioned_) return global_;
    if (detail::t_active_kernel.simulator == this)
      return *static_cast<Kernel*>(detail::t_active_kernel.kernel);
    return kernel_at(ambient_);
  }
  const Kernel& ctx() const { return const_cast<Simulator*>(this)->ctx(); }
  bool in_partition_batch() const {
    return partitioned_ && detail::t_active_kernel.simulator == this;
  }

  void file(Kernel& k, EventNode* n, Instant when);
  void fire(Kernel& k, EventNode* n);
  void finish(Kernel& k, EventNode* n);
  void note_past_clamp(Kernel& k);
  void update_depth() {
    // Classic fast path: one wheel, no TLS probe, no partition walk.
    // Single-writer publish everywhere: the gauge only moves outside
    // parallel phases, so it never needs the RMW form of set().
    if (!partitioned_) {
      queue_depth_->publish(static_cast<std::int64_t>(global_.queue.live()));
      return;
    }
    // Inside a parallel phase the gauge is left alone; the barrier
    // commit publishes the across-wheels sum (deterministic order).
    if (in_partition_batch()) return;
    queue_depth_->publish(static_cast<std::int64_t>(pending()));
  }

  void run_partitioned(Instant deadline);
  void run_partition_batch(Kernel& k, Instant limit);
  void commit_phase();

  bool task_active(EventId id) const;
  bool task_cancel(EventId id) { return cancel(id); }
  void task_reschedule(EventId id, Instant when);
  Instant task_next_fire(EventId id) const;

  Kernel global_;
  std::deque<Kernel> partitions_;  // deque: stable addresses in TLS slots
  bool partitioned_ = false;       // cached !partitions_.empty() for hot paths
  std::uint64_t partition_dispatched_ = 0;  // sum over partitions at last barrier
  std::uint32_t ambient_ = 0;
  std::size_t sim_jobs_ = 1;
  std::unique_ptr<util::TaskPool> pool_;
  std::vector<Kernel*> due_;  // scratch: partitions with work this phase

  obs::MetricsRegistry metrics_;
  obs::TraceCollector spans_;
  std::unique_ptr<obs::WindowAggregator> telemetry_;
  std::vector<std::function<void(obs::WindowAggregator&)>> telemetry_hooks_;
  obs::Counter* events_dispatched_;         // sim.events_dispatched
  obs::Gauge* queue_depth_;                 // sim.queue_depth (live depth)
  obs::Histogram* handler_ns_;              // sim.handler_ns (host time, sampled)
  obs::Counter* past_clamped_ = nullptr;    // sim.schedule_past_clamped (lazy)
};

/// RAII ambient-kernel switch for setup code: everything scheduled in
/// scope files onto `kernel`'s wheel. Nest freely; single-threaded.
class KernelScope {
 public:
  KernelScope(Simulator& sim, std::uint32_t kernel)
      : sim_{&sim}, previous_{sim.ambient_kernel()} {
    sim.set_ambient_kernel(kernel);
  }
  ~KernelScope() { sim_->set_ambient_kernel(previous_); }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  Simulator* sim_;
  std::uint32_t previous_;
};

inline PeriodicTask& PeriodicTask::operator=(PeriodicTask&& o) noexcept {
  if (this != &o) {
    cancel();
    sim_ = o.sim_;
    id_ = o.id_;
    o.sim_ = nullptr;
    o.id_ = 0;
  }
  return *this;
}

inline PeriodicTask::~PeriodicTask() { cancel(); }

inline bool PeriodicTask::active() const {
  return sim_ != nullptr && sim_->task_active(id_);
}

inline bool PeriodicTask::cancel() {
  if (sim_ == nullptr) return false;
  const bool cancelled = sim_->task_cancel(id_);
  sim_ = nullptr;
  id_ = 0;
  return cancelled;
}

inline void PeriodicTask::reschedule_at(Instant when) {
  assert(sim_ != nullptr && "reschedule_at on an empty task");
  sim_->task_reschedule(id_, when);
}

inline Instant PeriodicTask::next_fire() const {
  assert(sim_ != nullptr && "next_fire on an empty task");
  return sim_->task_next_fire(id_);
}

}  // namespace decos::sim
