// Small-buffer event callable for the simulation kernel.
//
// Every scheduled event carries a callable. The old kernel stored it in a
// std::function inside an unordered_map, which heap-allocates for any
// capture beyond two pointers and re-hashes on every schedule / dispatch /
// cancel. InlineAction instead constructs the callable directly inside the
// (pooled, address-stable) event node: captures up to kInlineBytes live
// inline, larger ones fall back to a heap block that the node retains and
// reuses across firings. In the steady periodic state nothing is
// allocated at all.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace decos::sim {

/// Type-erased move-in callable with inline storage. Not copyable, not
/// movable: it lives inside a pool node whose address never changes.
class InlineAction {
 public:
  /// Sized so a tt::Frame capture (the largest hot-path closure: ~96
  /// bytes for the bus delivery event) still fits inline.
  static constexpr std::size_t kInlineBytes = 128;

  InlineAction() = default;
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() {
    reset();
    ::operator delete(heap_);
  }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned event callables are not supported");
    reset();
    void* where;
    if constexpr (sizeof(Fn) <= kInlineBytes) {
      where = inline_;
    } else {
      if (heap_capacity_ < sizeof(Fn)) {
        ::operator delete(heap_);
        heap_ = ::operator new(sizeof(Fn));
        heap_capacity_ = sizeof(Fn);
      }
      where = heap_;
    }
    ::new (where) Fn(std::forward<F>(f));
    storage_ = where;
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
  }

  void operator()() { invoke_(storage_); }

  bool has_value() const { return invoke_ != nullptr; }

  /// Destroy the held callable (releasing its captures) but keep any heap
  /// block for the next emplace of this node.
  void reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    destroy_ = nullptr;
    storage_ = nullptr;
  }

 private:
  alignas(std::max_align_t) unsigned char inline_[kInlineBytes];
  void* heap_ = nullptr;
  std::size_t heap_capacity_ = 0;
  void* storage_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace decos::sim
