// Per-node local clocks with bounded drift, and the correction interface
// used by the fault-tolerant clock-synchronization service (core service
// C2 of the DECOS architecture, DESIGN.md S4).
//
// The model follows the standard sparse-time treatment: a node's local
// clock advances at rate (1 + rho) relative to true time, where |rho| is
// the drift rate in parts-per-million, plus an additive offset that the
// synchronization service adjusts at resynchronization instants.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace decos::sim {

/// A drifting local clock. Reads convert true (simulator) time to local
/// time; `correct()` applies a state correction as computed by the clock
/// synchronization service. Rate is fixed per clock (crystal model).
class DriftingClock {
 public:
  /// drift_ppm: signed drift in parts per million (e.g. +50 means the
  /// local clock gains 50us per true second). initial_offset: local-time
  /// offset at true time 0.
  explicit DriftingClock(double drift_ppm = 0.0, Duration initial_offset = Duration::zero())
      : rate_{1.0 + drift_ppm * 1e-6}, offset_{initial_offset} {}

  /// Local-clock reading at true time `true_now`.
  Instant read(Instant true_now) const {
    const double local_ns = static_cast<double>(true_now.ns()) * rate_;
    return Instant::from_ns(static_cast<std::int64_t>(local_ns) + offset_.ns());
  }

  /// Inverse mapping: the true time at which this clock will read
  /// `local_target`. Used to schedule simulator events off local time.
  Instant true_time_for(Instant local_target) const {
    const double true_ns = static_cast<double>((local_target - Instant::origin()).ns() - offset_.ns()) / rate_;
    return Instant::from_ns(static_cast<std::int64_t>(true_ns));
  }

  /// Apply a state correction (positive = advance local clock).
  void correct(Duration adjustment) { offset_ += adjustment; }

  /// Redefine this clock as the reference timeline: it reads exactly
  /// true time from now on. Used when a cold-start master's clock
  /// becomes the cluster time base -- since the simulation's "true" time
  /// is an arbitrary coordinate choice, electing the master's clock as
  /// that coordinate is without loss of generality.
  void become_reference() {
    rate_ = 1.0;
    offset_ = Duration::zero();
  }

  double drift_ppm() const { return (rate_ - 1.0) * 1e6; }
  Duration offset() const { return offset_; }

 private:
  double rate_;
  Duration offset_;
};

}  // namespace decos::sim
