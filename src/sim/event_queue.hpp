// Typed event storage for the simulation kernel: pooled intrusive event
// nodes ordered by a single-level timer wheel (calendar queue) with a
// binary-heap overflow for far-future one-shots.
//
// Design constraints, in order:
//   1. Bit-preserved determinism: events dispatch in strict (when, seq)
//      order -- seq is assigned at insertion, so same-instant events fire
//      FIFO exactly like the old priority_queue kernel.
//   2. Zero steady-state cost: a periodic firing re-files the same node
//      into a new bucket -- no allocation, no hashing, no tombstones.
//   3. O(1) cancel: ids are generation-tagged {slot, generation} pairs;
//      cancelling unlinks the node eagerly (buckets are doubly linked,
//      the overflow heap tracks per-node indices), so no stale entries
//      accumulate anywhere.
//
// The wheel covers kWheelSize ticks of `resolution` each. Ticks are
// absolute (when.ns / resolution), so a bucket never mixes laps: every
// node in bucket (tick & kMask) belongs to the one tick in the current
// horizon window that maps there. A bucket can still hold multiple
// distinct instants (sub-resolution spacing); the pop path scans the
// bucket for the (when, seq) minimum, which keeps ordering exact for any
// resolution. The resolution is therefore purely a performance knob --
// platform::Cluster derives it from the TDMA round granularity.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/action.hpp"
#include "util/time.hpp"

namespace decos::sim {

/// Handle to a scheduled event; can be used to cancel it. Value 0 is
/// never a live event (generations start at 1). Layout:
/// [generation:32][kernel:8][pool index:24] -- the kernel byte names the
/// event wheel that owns the node (0 = the global wheel, 1..N = the
/// partition wheels of a partitioned simulator), so handles stay valid
/// and routable across the kernel split.
using EventId = std::uint64_t;

enum class EventKind : std::uint8_t {
  kOneShot,   // fire once, release
  kPeriodic,  // kernel re-files at when + period before each firing
  kDriven,    // callback re-times itself via PeriodicTask::reschedule_at
};

enum class NodeState : std::uint8_t {
  kFree,      // on the free list
  kBucket,    // linked into a wheel bucket
  kOverflow,  // parked in the far-future heap
  kLimbo,     // popped for dispatch, not yet re-filed or released
};

struct EventNode {
  Instant when;
  std::uint64_t seq = 0;  // FIFO tie-breaker among same-instant events
  EventNode* prev = nullptr;
  EventNode* next = nullptr;
  Duration period;               // kPeriodic only
  std::uint32_t generation = 1;  // bumped on release; stale ids miss
  std::uint32_t index = 0;       // pool slot (stable for the node's life)
  std::uint32_t heap_index = 0;  // position while in the overflow heap
  std::uint8_t kernel = 0;       // owning wheel (0 = global)
  EventKind kind = EventKind::kOneShot;
  NodeState state = NodeState::kFree;
  bool cancelled = false;  // deferred release (set while the node fires)
  InlineAction action;

  bool before(const EventNode& o) const {
    if (when != o.when) return when < o.when;
    return seq < o.seq;
  }
};

/// Pool + wheel + overflow heap. Knows nothing about dispatch semantics;
/// the Simulator layers kinds, cancellation rules and metrics on top.
class EventQueue {
 public:
  static constexpr std::size_t kWheelSize = 4096;  // buckets (power of two)

  EventQueue() { buckets_.fill(nullptr); }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Events currently filed (wheel + overflow; excludes limbo).
  std::size_t live() const { return live_; }

  Duration resolution() const { return Duration::nanoseconds(resolution_ns_); }

  /// Reconfigure the wheel tick. Only legal while no event is filed;
  /// `now` re-anchors the cursor. Coarser ticks widen the horizon
  /// (kWheelSize * resolution) before one-shots spill into the heap.
  void set_resolution(Duration resolution, Instant now) {
    assert(live_ == 0 && "cannot re-tick a non-empty wheel");
    if (resolution.ns() < 1) resolution = Duration::nanoseconds(1);
    resolution_ns_ = static_cast<std::uint64_t>(resolution.ns());
    cursor_tick_ = tick_of(now);
  }

  /// Kernel byte stamped into the ids of this queue's nodes (0 = global
  /// wheel; a partitioned simulator numbers its wheels 1..N).
  void set_kernel(std::uint32_t kernel) {
    assert(kernel < 256 && "kernel byte overflow");
    kernel_id_ = static_cast<std::uint8_t>(kernel);
  }
  std::uint32_t kernel() const { return kernel_id_; }

  /// A node ready for emplacing an action; address-stable until released.
  EventNode* acquire() {
    if (free_ == nullptr) grow();
    EventNode* n = free_;
    free_ = n->next;
    n->next = nullptr;
    n->cancelled = false;
    n->kernel = kernel_id_;
    return n;
  }

  /// Destroy the action, invalidate outstanding ids, return to the pool.
  void release(EventNode* n) {
    assert(n->state != NodeState::kFree);
    n->action.reset();
    ++n->generation;
    n->state = NodeState::kFree;
    n->cancelled = false;
    n->next = free_;
    free_ = n;
  }

  /// File `n` to fire at `when` (which must be >= the last popped /
  /// advanced-to instant). Assigns the FIFO sequence number.
  void insert(EventNode* n, Instant when) {
    n->when = when;
    n->seq = next_seq_++;
    const std::uint64_t tick = tick_of(when);
    assert(tick >= cursor_tick_ && "insert behind the wheel cursor");
    if (tick - cursor_tick_ < kWheelSize) {
      file_into_wheel(n, tick);
    } else {
      heap_push(n);
      n->state = NodeState::kOverflow;
    }
    ++live_;
  }

  /// Unfile a node (cancel, or re-time). No-op for limbo nodes.
  void remove(EventNode* n) {
    switch (n->state) {
      case NodeState::kBucket:
        unlink(n);
        --live_;
        break;
      case NodeState::kOverflow:
        heap_erase(n);
        --live_;
        break;
      case NodeState::kLimbo:
        return;
      case NodeState::kFree:
        assert(false && "remove of a free node");
        return;
    }
    n->state = NodeState::kLimbo;
  }

  /// Pop the earliest event with when <= limit, or nullptr. The popped
  /// node is left in limbo: the caller re-files or releases it.
  EventNode* pop_next(Instant limit) {
    for (;;) {
      drain_overflow();
      if (wheel_live_ == 0) {
        if (overflow_.empty()) return nullptr;
        EventNode* top = overflow_.front();
        if (top->when > limit) return nullptr;
        // Empty wheel: jump the cursor straight to the next event's tick
        // instead of sweeping intermediate buckets.
        cursor_tick_ = tick_of(top->when);
        continue;  // drain refills the wheel at the new cursor
      }
      const std::size_t b = first_occupied_bucket();
      EventNode* best = buckets_[b];
      for (EventNode* n = best->next; n != nullptr; n = n->next) {
        if (n->before(*best)) best = n;
      }
      if (best->when > limit) return nullptr;
      cursor_tick_ = tick_of(best->when);
      unlink(best);
      --live_;
      best->state = NodeState::kLimbo;
      return best;
    }
  }

  /// Move the cursor to `t` (after run_until drained everything due).
  void advance_to(Instant t) {
    const std::uint64_t tick = tick_of(t);
    if (tick > cursor_tick_) cursor_tick_ = tick;
  }

  /// Earliest filed instant without popping, or Instant::max() when
  /// empty. The conservative lookahead horizon of the partitioned
  /// coordinator is the global wheel's earliest instant.
  Instant earliest_time() {
    if (live_ == 0) return Instant::max();
    drain_overflow();
    if (wheel_live_ == 0) return overflow_.front()->when;
    // Wheel entries all precede overflow entries (the heap holds ticks
    // beyond the wheel horizon), so the wheel minimum is the minimum.
    const std::size_t b = first_occupied_bucket();
    EventNode* best = buckets_[b];
    for (EventNode* n = best->next; n != nullptr; n = n->next) {
      if (n->before(*best)) best = n;
    }
    return best->when;
  }

  /// Generation-tagged id for a live node.
  static EventId id_of(const EventNode* n) {
    assert(n->index < (1u << 24) && "event pool exceeds the 24-bit id space");
    return (static_cast<EventId>(n->generation) << 32) |
           (static_cast<EventId>(n->kernel) << 24) | n->index;
  }

  /// Owning-wheel byte of an id (0 = global wheel).
  static std::uint32_t kernel_of(EventId id) {
    return static_cast<std::uint32_t>((id >> 24) & 0xffu);
  }

  /// Node behind `id`, or nullptr if it already fired / was cancelled.
  EventNode* resolve(EventId id) const {
    const std::uint32_t index = static_cast<std::uint32_t>(id & 0xffffffu);
    if (kernel_of(id) != kernel_id_) return nullptr;
    if (index >= slots_.size()) return nullptr;
    EventNode* n = slots_[index];
    if (n->state == NodeState::kFree) return nullptr;
    if (n->generation != static_cast<std::uint32_t>(id >> 32)) return nullptr;
    return n;
  }

 private:
  static constexpr std::size_t kMask = kWheelSize - 1;
  static constexpr std::size_t kWords = kWheelSize / 64;
  static constexpr std::size_t kChunk = 128;  // nodes per pool growth

  std::uint64_t tick_of(Instant t) const {
    assert(t.ns() >= 0 && "simulated instants are non-negative");
    return static_cast<std::uint64_t>(t.ns()) / resolution_ns_;
  }

  void grow() {
    auto chunk = std::make_unique<std::array<EventNode, kChunk>>();
    for (EventNode& n : *chunk) {
      n.index = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(&n);
      n.next = free_;
      free_ = &n;
    }
    chunks_.push_back(std::move(chunk));
  }

  void file_into_wheel(EventNode* n, std::uint64_t tick) {
    const std::size_t b = tick & kMask;
    n->prev = nullptr;
    n->next = buckets_[b];
    if (n->next != nullptr) n->next->prev = n;
    buckets_[b] = n;
    occupancy_[b >> 6] |= 1ull << (b & 63);
    n->state = NodeState::kBucket;
    ++wheel_live_;
  }

  void unlink(EventNode* n) {
    const std::size_t b = tick_of(n->when) & kMask;
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      buckets_[b] = n->next;
      if (n->next == nullptr) occupancy_[b >> 6] &= ~(1ull << (b & 63));
    }
    if (n->next != nullptr) n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
    --wheel_live_;
  }

  /// First occupied bucket in circular order from the cursor; by the
  /// wheel invariant (all filed ticks within [cursor, cursor+size)) this
  /// is the bucket of the earliest tick. Precondition: wheel_live_ > 0.
  std::size_t first_occupied_bucket() const {
    const std::size_t start = cursor_tick_ & kMask;
    const std::size_t word = start >> 6;
    std::uint64_t bits = occupancy_[word] & (~0ull << (start & 63));
    if (bits != 0) return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    for (std::size_t i = 1; i < kWords; ++i) {
      const std::size_t w = (word + i) & (kWords - 1);
      if (occupancy_[w] != 0)
        return (w << 6) + static_cast<std::size_t>(std::countr_zero(occupancy_[w]));
    }
    bits = occupancy_[word] & ~(~0ull << (start & 63));
    assert(bits != 0);
    return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
  }

  void drain_overflow() {
    while (!overflow_.empty()) {
      EventNode* top = overflow_.front();
      if (tick_of(top->when) - cursor_tick_ >= kWheelSize) break;
      heap_pop();
      file_into_wheel(top, tick_of(top->when));
    }
  }

  // -- indexed binary min-heap over (when, seq) for far-future events ------
  void heap_push(EventNode* n) {
    n->heap_index = static_cast<std::uint32_t>(overflow_.size());
    overflow_.push_back(n);
    heap_sift_up(n->heap_index);
  }

  void heap_pop() { heap_erase(overflow_.front()); }

  void heap_erase(EventNode* n) {
    const std::uint32_t i = n->heap_index;
    EventNode* last = overflow_.back();
    overflow_.pop_back();
    if (last != n) {
      overflow_[i] = last;
      last->heap_index = i;
      heap_sift_down(heap_sift_up(i));
    }
  }

  std::uint32_t heap_sift_up(std::uint32_t i) {
    EventNode* n = overflow_[i];
    while (i > 0) {
      const std::uint32_t parent = (i - 1) / 2;
      if (!n->before(*overflow_[parent])) break;
      overflow_[i] = overflow_[parent];
      overflow_[i]->heap_index = i;
      i = parent;
    }
    overflow_[i] = n;
    n->heap_index = i;
    return i;
  }

  void heap_sift_down(std::uint32_t i) {
    EventNode* n = overflow_[i];
    const auto size = static_cast<std::uint32_t>(overflow_.size());
    for (;;) {
      std::uint32_t child = 2 * i + 1;
      if (child >= size) break;
      if (child + 1 < size && overflow_[child + 1]->before(*overflow_[child])) ++child;
      if (!overflow_[child]->before(*n)) break;
      overflow_[i] = overflow_[child];
      overflow_[i]->heap_index = i;
      i = child;
    }
    overflow_[i] = n;
    n->heap_index = i;
  }

  std::uint64_t resolution_ns_ = 1000;  // 1 us default; Cluster re-derives
  std::uint8_t kernel_id_ = 0;
  std::uint64_t cursor_tick_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t wheel_live_ = 0;

  std::array<EventNode*, kWheelSize> buckets_;
  std::array<std::uint64_t, kWords> occupancy_{};
  std::vector<EventNode*> overflow_;

  EventNode* free_ = nullptr;
  std::vector<EventNode*> slots_;  // index -> node, for id resolution
  std::vector<std::unique_ptr<std::array<EventNode, kChunk>>> chunks_;
};

}  // namespace decos::sim
