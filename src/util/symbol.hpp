// Interned symbols: dense u32 ids for the design-time name universe.
//
// The paper fixes every name (messages, elements, fields, automata
// labels) at design time; at runtime nothing is ever *discovered* by
// name. A SymbolTable interns each distinct spelling once and hands out
// a dense 32-bit Symbol; all hot-path addressing (repository slots,
// transfer plans, automaton edge matching, span labels) then works on
// integer compares, and strings are only touched again at the edges --
// parsing a spec in, exporting a trace out.
//
// Ids are allocated sequentially per table, so a deterministic
// construction order yields deterministic ids. Symbol 0 is reserved as
// "invalid"/"no name".
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace decos {

/// An interned name. Trivially copyable, 4 bytes, compares in one
/// instruction. Default-constructed symbols are invalid (id 0) and never
/// equal any interned name.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(std::uint32_t id) : id_{id} {}

  constexpr std::uint32_t id() const { return id_; }
  constexpr bool valid() const { return id_ != 0; }
  constexpr explicit operator bool() const { return valid(); }

  friend constexpr bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  std::uint32_t id_ = 0;
};

struct SymbolHash {
  std::size_t operator()(Symbol s) const {
    // Fibonacci scrambling of the dense id; ids are small and sequential.
    return static_cast<std::size_t>(s.id()) * 0x9E3779B97F4A7C15ULL;
  }
};

/// Interns strings into Symbols. Append-only; resolved names have stable
/// addresses for the table's lifetime.
class SymbolTable {
 public:
  /// Intern `name` (idempotent). The empty string interns to the invalid
  /// Symbol, mirroring "no name".
  Symbol intern(std::string_view name);

  /// Id of `name` if already interned; nullopt otherwise. Never inserts,
  /// so probing with arbitrary runtime strings cannot grow the table.
  std::optional<Symbol> lookup(std::string_view name) const;

  /// Spelling of `s`; the invalid Symbol resolves to the empty string.
  /// Throws SpecError-free: unknown ids also yield the empty string (a
  /// Symbol from a different table is a programming error, not a
  /// recoverable condition).
  const std::string& name(Symbol s) const;

  /// Number of interned names (excluding the reserved invalid id).
  std::size_t size() const { return names_.size(); }

  /// The process-wide table. All specs/gateways in one process share one
  /// name universe; ids are deterministic given deterministic
  /// construction order (the simulation is single-threaded).
  static SymbolTable& global();

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
    std::size_t operator()(const std::string& s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>> index_;
  std::deque<std::string> names_;  // id-1 -> spelling; deque: stable refs
};

/// Convenience: intern into the global table.
inline Symbol intern_symbol(std::string_view name) { return SymbolTable::global().intern(name); }

/// Convenience: global spelling of `s`.
const std::string& symbol_name(Symbol s);

/// Symbols compare against plain strings by resolved spelling (test and
/// diagnostic convenience; not for hot paths).
bool operator==(Symbol s, std::string_view name);
inline bool operator==(std::string_view name, Symbol s) { return s == name; }
inline bool operator!=(Symbol s, std::string_view name) { return !(s == name); }
inline bool operator!=(std::string_view name, Symbol s) { return !(s == name); }

}  // namespace decos
