// Interned symbols: dense u32 ids for the design-time name universe.
//
// The paper fixes every name (messages, elements, fields, automata
// labels) at design time; at runtime nothing is ever *discovered* by
// name. A SymbolTable interns each distinct spelling once and hands out
// a dense 32-bit Symbol; all hot-path addressing (repository slots,
// transfer plans, automaton edge matching, span labels) then works on
// integer compares, and strings are only touched again at the edges --
// parsing a spec in, exporting a trace out.
//
// Ids are allocated sequentially per table, so a deterministic
// construction order yields deterministic ids. Symbol 0 is reserved as
// "invalid"/"no name".
//
// Memory model (S25, parallel sweep engine): one process-wide table is
// shared by every concurrently running experiment cell, so the table is
// append-only with lock-free reads.
//  - Spellings live in fixed-size chunks that are never reallocated, so
//    a published `const std::string&` stays valid (and immutable) for
//    the table's lifetime.
//  - A writer appends under `mutex_`, fully constructs the spelling,
//    release-publishes `count_`, and only then release-stores the id
//    into its open-addressing index slot. Readers acquire-load slots /
//    `count_`, which makes the string contents visible before the id
//    can be observed.
//  - Index slots transition 0 -> id exactly once. When the index fills
//    up, the writer builds a larger copy and release-publishes the new
//    table pointer; superseded tables are retired (kept alive) so
//    readers holding the old pointer stay safe.
// Net effect: `intern` of an already-interned name, `lookup`, and
// `name` never take the mutex; only the first intern of a new spelling
// does. Two lookups racing one intern may disagree on whether the name
// exists yet -- interleaving-dependent by nature -- but every resolved
// Symbol/name pair is stable and consistent.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace decos {

/// An interned name. Trivially copyable, 4 bytes, compares in one
/// instruction. Default-constructed symbols are invalid (id 0) and never
/// equal any interned name.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(std::uint32_t id) : id_{id} {}

  constexpr std::uint32_t id() const { return id_; }
  constexpr bool valid() const { return id_ != 0; }
  constexpr explicit operator bool() const { return valid(); }

  friend constexpr bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  std::uint32_t id_ = 0;
};

struct SymbolHash {
  std::size_t operator()(Symbol s) const {
    // Fibonacci scrambling of the dense id; ids are small and sequential.
    return static_cast<std::size_t>(s.id()) * 0x9E3779B97F4A7C15ULL;
  }
};

/// Publish-once cache slot for a lazily interned Symbol (the `sym()`
/// caches on spec structs). Copyable so the owning spec structs stay
/// aggregates/value types; a copy snapshots the cached value. Racing
/// writers are harmless: both intern the same spelling, get the same
/// dense id, and store the same 4 bytes.
class SymbolCache {
 public:
  SymbolCache() = default;
  SymbolCache(const SymbolCache& other)
      : id_{other.id_.load(std::memory_order_relaxed)} {}
  SymbolCache& operator=(const SymbolCache& other) {
    id_.store(other.id_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  /// Cached symbol; invalid when nothing was published yet. Relaxed is
  /// enough: the id itself is the entire payload, and resolving it goes
  /// through the table's own acquire fences.
  Symbol get() const { return Symbol{id_.load(std::memory_order_relaxed)}; }
  void set(Symbol s) const { id_.store(s.id(), std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::uint32_t> id_{0};
};

/// Interns strings into Symbols. Append-only; resolved names have stable
/// addresses for the table's lifetime. Safe for concurrent use by many
/// threads (see the memory-model note above).
class SymbolTable {
 public:
  SymbolTable();
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Intern `name` (idempotent). The empty string interns to the invalid
  /// Symbol, mirroring "no name". Lock-free unless `name` is new.
  Symbol intern(std::string_view name);

  /// Id of `name` if already interned; nullopt otherwise. Never inserts,
  /// so probing with arbitrary runtime strings cannot grow the table.
  std::optional<Symbol> lookup(std::string_view name) const;

  /// Spelling of `s`; the invalid Symbol resolves to the empty string.
  /// Throws SpecError-free: unknown ids also yield the empty string (a
  /// Symbol from a different table is a programming error, not a
  /// recoverable condition).
  const std::string& name(Symbol s) const;

  /// Number of interned names (excluding the reserved invalid id).
  std::size_t size() const { return count_.load(std::memory_order_acquire); }

  /// The process-wide table. All specs/gateways in one process share one
  /// name universe; ids are deterministic given deterministic
  /// construction order. Concurrent experiment cells may interleave
  /// their interns (ids then differ run-to-run), which is safe because
  /// nothing exports raw ids -- spellings are resolved at the edges.
  static SymbolTable& global();

 private:
  // Spelling storage: chunked, append-only, never moved.
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;  // strings per chunk
  static constexpr std::size_t kMaxChunks = 4096;  // 4M names; the design-time universe is small

  // Open-addressing index: slot holds the id (0 = empty); the key is the
  // spelling reached through the id. Grows by retiring the whole table.
  struct Index {
    explicit Index(std::size_t cap) : capacity{cap}, slots{new std::atomic<std::uint32_t>[cap]} {
      for (std::size_t i = 0; i < cap; ++i) slots[i].store(0, std::memory_order_relaxed);
    }
    const std::size_t capacity;  // power of two
    std::unique_ptr<std::atomic<std::uint32_t>[]> slots;
  };

  const std::string* slot(std::uint32_t id) const {
    // id is 1-based; the caller guarantees id <= a published count_.
    const std::size_t at = static_cast<std::size_t>(id) - 1;
    const std::string* chunk = chunks_[at >> kChunkShift].load(std::memory_order_relaxed);
    return chunk + (at & (kChunkSize - 1));
  }

  /// Probe `index` for `name`; 0 when absent at this snapshot.
  std::uint32_t probe(const Index& index, std::string_view name, std::size_t hash) const;

  std::atomic<std::uint32_t> count_{0};
  std::array<std::atomic<std::string*>, kMaxChunks> chunks_{};
  std::atomic<Index*> index_;
  std::mutex mutex_;                              // serializes writers only
  std::vector<std::unique_ptr<Index>> retired_;   // superseded tables, kept alive (guarded by mutex_)
};

/// Convenience: intern into the global table.
inline Symbol intern_symbol(std::string_view name) { return SymbolTable::global().intern(name); }

/// Convenience: global spelling of `s`.
const std::string& symbol_name(Symbol s);

/// Symbols compare against plain strings by resolved spelling (test and
/// diagnostic convenience; not for hot paths).
bool operator==(Symbol s, std::string_view name);
inline bool operator==(std::string_view name, Symbol s) { return s == name; }
inline bool operator!=(Symbol s, std::string_view name) { return !(s == name); }
inline bool operator!=(std::string_view name, Symbol s) { return !(s == name); }

}  // namespace decos
