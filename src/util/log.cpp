#include "util/log.hpp"

namespace decos::log {

Level& threshold() {
  static Level level = Level::kOff;
  return level;
}

void write(Level level, const std::string& component, const std::string& message) {
  static const char* const kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %s: %s\n", kNames[static_cast<int>(level)], component.c_str(),
               message.c_str());
}

}  // namespace decos::log
