#include "util/log.hpp"

#include <cstdio>

namespace decos::log {

namespace {

Sink& sink_slot() {
  static Sink sink;  // empty = default stderr sink
  return sink;
}

struct TimeProvider {
  const void* owner = nullptr;
  std::int64_t (*now_ns)(const void*) = nullptr;
};

TimeProvider& time_provider() {
  // thread_local: concurrently simulated cells (one Cluster per worker
  // thread, S25 parallel sweeps) each stamp their own thread's log lines
  // with their own simulated time, and registration never races.
  thread_local TimeProvider provider;
  return provider;
}

}  // namespace

Level& threshold() {
  static Level level = Level::kOff;
  return level;
}

void set_sink(Sink sink) { sink_slot() = std::move(sink); }

void set_time_provider(const void* owner, std::int64_t (*now_ns)(const void* owner)) {
  time_provider() = TimeProvider{owner, now_ns};
}

void clear_time_provider(const void* owner) {
  if (time_provider().owner == owner) time_provider() = TimeProvider{};
}

std::string format_line(Level level, const std::string& component, const std::string& message) {
  static const char* const kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::string line = "[";
  line += kNames[static_cast<int>(level)];
  const TimeProvider& provider = time_provider();
  if (provider.now_ns != nullptr) {
    char buf[48];
    const std::int64_t ns = provider.now_ns(provider.owner);
    std::snprintf(buf, sizeof buf, " t=%.6fms", static_cast<double>(ns) / 1e6);
    line += buf;
  }
  line += "] " + component + ": " + message;
  return line;
}

void write(Level level, const std::string& component, const std::string& message) {
  if (const Sink& sink = sink_slot(); sink) {
    sink(level, component, message);
    return;
  }
  std::fprintf(stderr, "%s\n", format_line(level, component, message).c_str());
}

}  // namespace decos::log
