// Deterministic pseudo-random number generation for workload synthesis.
//
// All experiments must be reproducible from a seed (DESIGN.md decision 1),
// so we ship our own small generator instead of depending on the
// implementation-defined std:: distributions: xoshiro256** seeded through
// SplitMix64, plus the handful of distributions the workload generators
// need (uniform, exponential interarrival, normal jitter, Poisson counts).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/time.hpp"

namespace decos {

/// xoshiro256** by Blackman & Vigna; state seeded via SplitMix64 so that
/// any 64-bit seed (including 0) yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = split_mix(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  bool bernoulli(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    double u;
    do { u = next_double(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Normally distributed value (Box–Muller, one value per call).
  double normal(double mean, double stddev) {
    double u1;
    do { u1 = next_double(); } while (u1 <= 0.0);
    const double u2 = next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Exponentially distributed Duration with the given mean (clamped >= 1ns).
  Duration exponential_duration(Duration mean) {
    const double ns = exponential(static_cast<double>(mean.ns()));
    return Duration::nanoseconds(ns < 1.0 ? 1 : static_cast<std::int64_t>(ns));
  }

  /// Duration ~ N(mean, stddev) clamped to be non-negative.
  Duration normal_duration(Duration mean, Duration stddev) {
    const double ns = normal(static_cast<double>(mean.ns()), static_cast<double>(stddev.ns()));
    return Duration::nanoseconds(ns < 0.0 ? 0 : static_cast<std::int64_t>(ns));
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork() { return Rng{next_u64()}; }

 private:
  static std::uint64_t split_mix(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  /// Debiased bounded draw (Lemire-style rejection).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return next_u64();
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace decos
