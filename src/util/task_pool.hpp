// Fixed worker-thread pool with a chunked work queue, built for the
// parallel sweep engine (S25): experiment cells are coarse, fully
// isolated simulations, so the pool optimizes for simplicity and
// deterministic error propagation, not for fine-grained task overhead.
//
//  - Workers are started once and joined in the destructor.
//  - submit() enqueues; workers drain the queue in FIFO chunks (one lock
//    round-trip can hand a worker several small tasks).
//  - Exceptions thrown by a task are captured; wait() rethrows the first
//    one after the queue has drained, so a failing cell fails the sweep
//    the same way it would have failed a serial run.
//  - A pool constructed with 0 or 1 workers runs every task inline in
//    submit(), in submission order: `--jobs 1` is genuinely serial, not
//    "parallel with one thread".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace decos::util {

class TaskPool {
 public:
  /// Start `workers` threads (0/1 = inline mode, no threads).
  explicit TaskPool(std::size_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueue one task. Inline mode runs it before returning (exceptions
  /// are still deferred to wait(), matching the threaded contract).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the
  /// first captured task exception, if any. The pool stays usable for
  /// further submit() rounds afterwards.
  ///
  /// Error scoping across repeated waves is pinned (and stress-tested):
  /// wait() reports the first exception recorded *since the previous
  /// wait()*, clears it, and never lets it leak into a later wave -- a
  /// wave that follows a throwing wave on the same pool starts clean.
  void wait();

  /// Phase-barrier primitive: run `count` tasks fn(0..count-1) as one
  /// wave and block until the whole wave finished (equivalent to `count`
  /// submits followed by wait(), with the same error scoping). Callable
  /// repeatedly on the same pool -- the partitioned simulation kernel
  /// (S28) runs one wave per conservative lookahead window. In inline
  /// mode the wave runs fn(0), fn(1), ... on the calling thread.
  void run_wave(std::size_t count, const std::function<void(std::size_t)>& fn);

  std::size_t workers() const { return threads_.size(); }

  /// Hardware concurrency clamped to [1, cap]; the default worker count
  /// for `--jobs` when the user does not choose.
  static std::size_t default_workers(std::size_t cap = 8);

 private:
  // Max tasks a worker claims per lock acquisition. Cells are coarse, so
  // this only matters when many tiny tasks are queued.
  static constexpr std::size_t kChunk = 4;

  void worker_loop();
  void record_exception(std::exception_ptr error);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable drained_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace decos::util
