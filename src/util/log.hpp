// Minimal leveled logger. Logging is off by default so benchmarks measure
// protocol work, not I/O; tests and examples raise the level explicitly.
//
// Output goes through a pluggable sink (default: stderr) so tests can
// capture log lines. Each line carries the current simulated timestamp
// when a time provider is installed (the Cluster installs one for its
// simulator's clock), making logs correlatable with traces.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

namespace decos::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded.
Level& threshold();

/// Receives every emitted line, already filtered by threshold.
using Sink = std::function<void(Level, const std::string& component, const std::string& message)>;

/// Install a sink; pass nullptr (default) to restore the stderr sink.
void set_sink(Sink sink);

/// Simulated-time source stamped onto every line (ns since simulation
/// start); nullptr (default) omits the timestamp. Installed by whoever
/// owns the simulation clock, removed when that owner dies.
using TimeNsProvider = std::int64_t (*)(const void* owner);
void set_time_provider(const void* owner, std::int64_t (*now_ns)(const void* owner));
/// Remove the provider iff `owner` installed the current one.
void clear_time_provider(const void* owner);

/// Render one line as the default sink would ("[LEVEL t=...] comp: msg").
std::string format_line(Level level, const std::string& component, const std::string& message);

void write(Level level, const std::string& component, const std::string& message);

inline bool enabled(Level level) { return level >= threshold(); }

inline void trace(const std::string& component, const std::string& message) {
  if (enabled(Level::kTrace)) write(Level::kTrace, component, message);
}
inline void debug(const std::string& component, const std::string& message) {
  if (enabled(Level::kDebug)) write(Level::kDebug, component, message);
}
inline void info(const std::string& component, const std::string& message) {
  if (enabled(Level::kInfo)) write(Level::kInfo, component, message);
}
inline void warn(const std::string& component, const std::string& message) {
  if (enabled(Level::kWarn)) write(Level::kWarn, component, message);
}
inline void error(const std::string& component, const std::string& message) {
  if (enabled(Level::kError)) write(Level::kError, component, message);
}

}  // namespace decos::log
