// Minimal leveled logger. Logging is off by default so benchmarks measure
// protocol work, not I/O; tests and examples raise the level explicitly.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace decos::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded.
Level& threshold();

void write(Level level, const std::string& component, const std::string& message);

inline bool enabled(Level level) { return level >= threshold(); }

inline void trace(const std::string& component, const std::string& message) {
  if (enabled(Level::kTrace)) write(Level::kTrace, component, message);
}
inline void debug(const std::string& component, const std::string& message) {
  if (enabled(Level::kDebug)) write(Level::kDebug, component, message);
}
inline void info(const std::string& component, const std::string& message) {
  if (enabled(Level::kInfo)) write(Level::kInfo, component, message);
}
inline void warn(const std::string& component, const std::string& message) {
  if (enabled(Level::kWarn)) write(Level::kWarn, component, message);
}
inline void error(const std::string& component, const std::string& message) {
  if (enabled(Level::kError)) write(Level::kError, component, message);
}

}  // namespace decos::log
