#include "util/symbol.hpp"

namespace decos {

namespace {
const std::string kEmpty;
}

Symbol SymbolTable::intern(std::string_view name) {
  if (name.empty()) return Symbol{};
  if (const auto it = index_.find(name); it != index_.end()) return Symbol{it->second};
  names_.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(names_.size());  // ids start at 1
  index_.emplace(names_.back(), id);
  return Symbol{id};
}

std::optional<Symbol> SymbolTable::lookup(std::string_view name) const {
  if (name.empty()) return Symbol{};
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return Symbol{it->second};
}

const std::string& SymbolTable::name(Symbol s) const {
  if (!s.valid() || s.id() > names_.size()) return kEmpty;
  return names_[s.id() - 1];
}

SymbolTable& SymbolTable::global() {
  static SymbolTable table;
  return table;
}

const std::string& symbol_name(Symbol s) { return SymbolTable::global().name(s); }

bool operator==(Symbol s, std::string_view name) { return symbol_name(s) == name; }

}  // namespace decos
