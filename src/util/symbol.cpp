#include "util/symbol.hpp"

#include <new>

namespace decos {

namespace {
const std::string kEmpty;

std::size_t hash_name(std::string_view name) { return std::hash<std::string_view>{}(name); }
}  // namespace

SymbolTable::SymbolTable() : index_{new Index{1024}} {}

SymbolTable::~SymbolTable() {
  const std::uint32_t count = count_.load(std::memory_order_acquire);
  for (std::size_t c = 0; c * kChunkSize < count; ++c)
    delete[] chunks_[c].load(std::memory_order_relaxed);
  delete index_.load(std::memory_order_relaxed);
}

std::uint32_t SymbolTable::probe(const Index& index, std::string_view name,
                                 std::size_t hash) const {
  const std::size_t mask = index.capacity - 1;
  for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
    const std::uint32_t id = index.slots[i].load(std::memory_order_acquire);
    if (id == 0) return 0;  // empty slot: absent at this snapshot
    if (*slot(id) == name) return id;
  }
}

Symbol SymbolTable::intern(std::string_view name) {
  if (name.empty()) return Symbol{};
  const std::size_t hash = hash_name(name);
  // Fast path: already interned -- no lock, acquire loads only.
  if (const std::uint32_t id = probe(*index_.load(std::memory_order_acquire), name, hash))
    return Symbol{id};

  std::lock_guard<std::mutex> lock{mutex_};
  // Re-probe the (possibly replaced) table: another writer may have won.
  Index* index = index_.load(std::memory_order_relaxed);
  if (const std::uint32_t id = probe(*index, name, hash)) return Symbol{id};

  // Append the spelling. The chunk entry is fully constructed before the
  // new count is release-published, so any reader that can see the id
  // also sees the string.
  const std::uint32_t count = count_.load(std::memory_order_relaxed);
  const std::size_t chunk_at = count >> kChunkShift;
  if (chunk_at >= kMaxChunks) throw std::bad_alloc{};  // 4M design-time names: not a real program
  std::string* chunk = chunks_[chunk_at].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new std::string[kChunkSize];
    chunks_[chunk_at].store(chunk, std::memory_order_release);
  }
  chunk[count & (kChunkSize - 1)] = std::string{name};
  const std::uint32_t id = count + 1;  // ids start at 1
  count_.store(id, std::memory_order_release);

  // Grow the index before it saturates (load factor ~0.7). The old table
  // is retired, not freed: lock-free readers may still hold it.
  if (static_cast<std::size_t>(id) * 10 >= index->capacity * 7) {
    auto grown = std::make_unique<Index>(index->capacity * 2);
    const std::size_t mask = grown->capacity - 1;
    for (std::size_t i = 0; i < index->capacity; ++i) {
      const std::uint32_t moved = index->slots[i].load(std::memory_order_relaxed);
      if (moved == 0) continue;
      std::size_t at = hash_name(*slot(moved)) & mask;
      while (grown->slots[at].load(std::memory_order_relaxed) != 0) at = (at + 1) & mask;
      grown->slots[at].store(moved, std::memory_order_relaxed);
    }
    retired_.emplace_back(index);
    index = grown.release();
    index_.store(index, std::memory_order_release);
  }

  // Claim the first free slot. Only id stores race with readers; the
  // release pairs with the reader's acquire in probe().
  const std::size_t mask = index->capacity - 1;
  std::size_t at = hash & mask;
  while (index->slots[at].load(std::memory_order_relaxed) != 0) at = (at + 1) & mask;
  index->slots[at].store(id, std::memory_order_release);
  return Symbol{id};
}

std::optional<Symbol> SymbolTable::lookup(std::string_view name) const {
  if (name.empty()) return Symbol{};
  const std::uint32_t id =
      probe(*index_.load(std::memory_order_acquire), name, hash_name(name));
  if (id == 0) return std::nullopt;
  return Symbol{id};
}

const std::string& SymbolTable::name(Symbol s) const {
  if (!s.valid() || s.id() > count_.load(std::memory_order_acquire)) return kEmpty;
  return *slot(s.id());
}

SymbolTable& SymbolTable::global() {
  static SymbolTable table;
  return table;
}

const std::string& symbol_name(Symbol s) { return SymbolTable::global().name(s); }

bool operator==(Symbol s, std::string_view name) { return symbol_name(s) == name; }

}  // namespace decos
