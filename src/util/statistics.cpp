#include "util/statistics.hpp"

#include <cstdio>

namespace decos {

std::string Histogram::render(int width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";

  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                                     static_cast<double>(width));
    std::snprintf(line, sizeof line, "%12.3f | %-*s %llu\n", bin_lo(i), width,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace decos
