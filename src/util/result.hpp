// Lightweight Result<T> for operations with expected failure modes
// (parsing, specification validation). Unexpected programming errors use
// exceptions / assertions instead, per the C++ Core Guidelines split
// between recoverable errors and contract violations.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace decos {

/// Error payload carried by Result<T>: a human-readable message plus an
/// optional source location (line/column, used by the XML and expression
/// parsers).
struct Error {
  std::string message;
  int line = 0;
  int column = 0;

  std::string to_string() const {
    if (line == 0) return message;
    return message + " (line " + std::to_string(line) + ", col " + std::to_string(column) + ")";
  }
};

/// Exception thrown when `value()` is called on a failed Result, and used
/// directly by components whose callers cannot sensibly continue (e.g. a
/// malformed gateway configuration).
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const Error& e) : std::runtime_error(e.to_string()) {}
  explicit SpecError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Either a value of type T or an Error. Monadic helpers are intentionally
/// minimal; call sites read better with early returns.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_{std::in_place_index<0>, std::move(value)} {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_{std::in_place_index<1>, std::move(error)} {}  // NOLINT(google-explicit-constructor)

  static Result failure(std::string message, int line = 0, int column = 0) {
    return Result{Error{std::move(message), line, column}};
  }

  bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok(). Throws SpecError otherwise so misuse is loud.
  const T& value() const& {
    if (!ok()) throw SpecError(error());
    return std::get<0>(data_);
  }
  T& value() & {
    if (!ok()) throw SpecError(error());
    return std::get<0>(data_);
  }
  T&& value() && {
    if (!ok()) throw SpecError(error());
    return std::get<0>(std::move(data_));
  }

  /// Precondition: !ok().
  const Error& error() const { return std::get<1>(data_); }

 private:
  std::variant<T, Error> data_;
};

/// Result specialisation for operations that produce no value.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_{std::move(error)}, failed_{true} {}  // NOLINT(google-explicit-constructor)

  static Status success() { return Status{}; }
  static Status failure(std::string message, int line = 0, int column = 0) {
    return Status{Error{std::move(message), line, column}};
  }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return error_; }

  /// Throws SpecError if the status is a failure.
  void check() const {
    if (failed_) throw SpecError(error_);
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace decos
