#include "util/task_pool.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace decos::util {

TaskPool::TaskPool(std::size_t workers) {
  if (workers <= 1) return;  // inline mode
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::record_exception(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (!first_error_) first_error_ = std::move(error);
}

void TaskPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    // Inline mode: run now, in submission order. Exceptions still surface
    // from wait() so callers handle serial and parallel runs identically.
    try {
      task();
    } catch (...) {
      record_exception(std::current_exception());
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock{mutex_};
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void TaskPool::wait() {
  std::unique_lock<std::mutex> lock{mutex_};
  drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TaskPool::run_wave(std::size_t count, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) submit([&fn, i] { fn(i); });
  wait();
}

void TaskPool::worker_loop() {
  std::array<std::function<void()>, kChunk> batch;
  for (;;) {
    std::size_t taken = 0;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      taken = std::min(kChunk, queue_.size());
      for (std::size_t i = 0; i < taken; ++i) {
        batch[i] = std::move(queue_.front());
        queue_.pop_front();
      }
      in_flight_ += taken;
    }
    for (std::size_t i = 0; i < taken; ++i) {
      try {
        batch[i]();
      } catch (...) {
        record_exception(std::current_exception());
      }
      batch[i] = nullptr;
    }
    {
      std::lock_guard<std::mutex> lock{mutex_};
      in_flight_ -= taken;
      if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
    }
  }
}

std::size_t TaskPool::default_workers(std::size_t cap) {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, cap);
}

}  // namespace decos::util
