// Measurement utilities shared by the benchmark harnesses: running
// mean/variance (Welford), order statistics over retained samples, and a
// fixed-bin histogram for latency distributions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace decos {

/// Numerically stable running mean / variance / extrema accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void add(Duration d) { add(static_cast<double>(d.ns())); }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples; provides exact percentiles. Use for the bench
/// harnesses where sample counts are modest (<= millions).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add(Duration d) { add(static_cast<double>(d.ns())); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Exact p-quantile with linear interpolation, p in [0, 1].
  double percentile(double p) {
    if (samples_.empty()) return 0.0;
    sort();
    if (p <= 0.0) return samples_.front();
    if (p >= 1.0) return samples_.back();
    const double idx = p * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const double frac = idx - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_[lo];
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }

  double min() { sort(); return samples_.empty() ? 0.0 : samples_.front(); }
  double max() { sort(); return samples_.empty() ? 0.0 : samples_.back(); }
  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }
  /// Peak-to-peak spread; the jitter measure used by E6/E7.
  double spread() { return max() - min(); }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
/// saturating edge bins so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_{lo}, hi_{hi}, counts_(bins == 0 ? 1 : bins, 0) {}

  void add(double x) {
    std::size_t idx;
    if (x < lo_) {
      idx = 0;
    } else if (x >= hi_) {
      idx = counts_.size() - 1;
    } else {
      idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
      if (idx >= counts_.size()) idx = counts_.size() - 1;
    }
    ++counts_[idx];
    ++total_;
  }

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
  }

  /// Render a compact ASCII bar chart (used by bench binaries).
  std::string render(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace decos
