// Strongly typed simulated-time primitives.
//
// All of the DECOS reproduction runs on a discrete global time base with
// nanosecond granularity (the paper's time-triggered base architecture
// assumes a sparse global time base; one nanosecond is far below the
// precision of any modelled clock, so the discretisation is invisible to
// the protocols built on top).
//
// `Duration` is a signed span of time, `Instant` a point on the global
// timeline. Mixing them up is a compile error.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace decos {

/// A signed span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors; prefer these to raw tick counts at call sites.
  static constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
  static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1000}; }
  static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double as_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  /// Integral division of two spans (e.g. how many whole periods fit).
  constexpr std::int64_t operator/(Duration o) const { return ns_ / o.ns_; }
  /// Remainder of `*this` modulo `o`, always in [0, o) for positive `o`.
  constexpr Duration mod(Duration o) const {
    std::int64_t r = ns_ % o.ns_;
    if (r < 0) r += o.ns_;
    return Duration{r};
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration abs() const { return ns_ < 0 ? Duration{-ns_} : *this; }

  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

/// A point on the global simulated timeline (ns since simulation start).
class Instant {
 public:
  constexpr Instant() = default;

  static constexpr Instant origin() { return Instant{}; }
  static constexpr Instant from_ns(std::int64_t ns) { return Instant{ns}; }
  static constexpr Instant max() { return Instant{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double as_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Instant operator+(Duration d) const { return Instant{ns_ + d.ns()}; }
  constexpr Instant operator-(Duration d) const { return Instant{ns_ - d.ns()}; }
  constexpr Duration operator-(Instant o) const { return Duration::nanoseconds(ns_ - o.ns_); }
  constexpr Instant& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  constexpr auto operator<=>(const Instant&) const = default;

  /// Phase of this instant within a cyclic schedule of length `period`.
  constexpr Duration phase_in(Duration period) const {
    return Duration::nanoseconds(ns_).mod(period);
  }

  std::string to_string() const;

 private:
  constexpr explicit Instant(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, Instant t);

namespace literals {
constexpr Duration operator""_ns(unsigned long long n) { return Duration::nanoseconds(static_cast<std::int64_t>(n)); }
constexpr Duration operator""_us(unsigned long long n) { return Duration::microseconds(static_cast<std::int64_t>(n)); }
constexpr Duration operator""_ms(unsigned long long n) { return Duration::milliseconds(static_cast<std::int64_t>(n)); }
constexpr Duration operator""_s(unsigned long long n) { return Duration::seconds(static_cast<std::int64_t>(n)); }
}  // namespace literals

}  // namespace decos
