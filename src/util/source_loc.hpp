// Source position of a spec construct in its XML document.
//
// Parsers stamp the start-tag position onto the spec objects they build;
// the lint layer copies it into diagnostics so a finding points at the
// offending <gatewayspec>/<linkspec> element rather than just a rule id.
// Objects built programmatically (benches, tests) keep the default
// invalid location and diagnostics fall back to the symbolic location
// string.
#pragma once

namespace decos {

struct SourceLoc {
  int line = 0;    // 1-based; 0 = unknown
  int column = 0;  // 1-based; 0 = unknown

  bool valid() const { return line > 0; }
};

}  // namespace decos
