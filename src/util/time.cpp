#include "util/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace decos {

std::string Duration::to_string() const {
  char buf[64];
  if (ns_ % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRId64 "s", ns_ / 1'000'000'000);
  } else if (ns_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRId64 "ms", ns_ / 1'000'000);
  } else if (ns_ % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRId64 "us", ns_ / 1'000);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 "ns", ns_);
  }
  return buf;
}

std::string Instant::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fms", as_ms());
  return buf;
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.to_string(); }
std::ostream& operator<<(std::ostream& os, Instant t) { return os << t.to_string(); }

}  // namespace decos
