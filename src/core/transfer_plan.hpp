// Compiled transfer plans: the design-time product of
// VirtualGateway::finalize() that de-strings the forwarding hot path.
//
// The paper fixes every name -- messages, convertible elements, fields,
// renaming-table entries -- in the link specifications at design time.
// Historically the gateway still *resolved* those names at runtime: each
// dissect hashed element names into the repository map, each construct
// re-ran rename lookups and field-name scans. A compiled plan performs
// all of that resolution once, in finalize():
//
//   DissectPlan    per (link, input message): for each convertible
//                  element, the interned element Symbol, the dense
//                  repository slot (ElementId) behind the renaming
//                  table, per-field Symbols, and a persistent scratch
//                  ElementInstance whose keys are prebuilt -- steady
//                  state only copies field *values* and issues
//                  Repository::store_copy on the resolved slot.
//
//   ConstructPlan  per (link, output message): the governing
//                  interpreter, output port, required ElementIds (for
//                  the m! availability guard, b_req requests and the
//                  horizon), per-element bindings from repository slot
//                  to output field index, and a persistent scratch
//                  MessageInstance (static fields prefilled) that is
//                  emitted by copy-assignment into the port.
//
// Renaming, semantics and slot resolution therefore cannot fail at
// runtime; a link-spec name that does not resolve while compiling plans
// is a finalize()-time SpecError. Field-level bindings stay dynamic by
// Symbol (a message may legitimately ask for a field the producing side
// never supplies -- that remains a counted construction failure), but
// the steady-state cost is a u32 scan, never a string compare.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/repository.hpp"
#include "spec/link_spec.hpp"
#include "spec/message.hpp"
#include "ta/interpreter.hpp"
#include "util/symbol.hpp"
#include "vn/port.hpp"

namespace decos::core {

/// One transfer-semantics rule bound to resolved slots. The rule's
/// *target* always resolves to a repository slot (finalize declares it);
/// the *source* need not be a declared slot -- rules may fire from
/// elements that exist only on the wire -- so rule plans are bound by
/// pointer into the dissect items of every message carrying the source.
struct RulePlan {
  const spec::TransferRule* rule = nullptr;
  const spec::LinkSpec* owner = nullptr;  // namespace for parameters
  ElementId target_id = kInvalidElementId;
  std::vector<Symbol> field_syms;  // parallel to rule->fields
  /// Persistent scratch for the derived element (reused per firing).
  ElementInstance scratch;
};

/// One convertible element of an incoming message: where its values go.
struct DissectItem {
  const spec::ElementSpec* element = nullptr;  // source element spec
  Symbol element_sym;                          // interned element name (link namespace)
  Symbol repo_sym;                             // interned repository (canonical) name
  ElementId repo_id = kInvalidElementId;       // resolved repository slot
  bool needed = false;                         // selective redirection: store at all?
  std::vector<RulePlan*> rules;                // transfer rules fired by this element
  /// Persistent scratch: keys interned at compile time, values
  /// overwritten per arrival, handed to Repository::store_copy.
  ElementInstance scratch;
};

/// Compiled dissect path of one input message on one link.
struct DissectPlan {
  const spec::MessageSpec* message = nullptr;
  Symbol message_sym;
  /// Value-domain filter predicate, resolved once (nullptr: no filter).
  const ta::ExprPtr* filter = nullptr;
  std::vector<DissectItem> items;
};

/// Field binding of one output element: repository field Symbol ->
/// dense index into the output element's field vector.
struct ConstructFieldBind {
  std::uint32_t field_index = 0;  // into ElementValue::fields of the output element
  Symbol field_sym;               // repository-side field name
};

/// One convertible element of an outgoing message: where its values come
/// from.
struct ConstructItem {
  const spec::ElementSpec* element = nullptr;
  Symbol element_sym;
  Symbol repo_sym;
  ElementId repo_id = kInvalidElementId;
  bool is_event = false;                        // repository semantics of the slot
  std::uint32_t instance_element_index = 0;     // into the scratch instance's elements
  std::vector<ConstructFieldBind> fields;       // dynamic fields only
};

/// Compiled construct path of one output message on one link.
struct ConstructPlan {
  const spec::PortSpec* port_spec = nullptr;
  const spec::MessageSpec* message = nullptr;
  Symbol message_sym;
  ta::Interpreter* interpreter = nullptr;  // governing send automaton
  vn::Port* port = nullptr;                // default emission target
  bool time_triggered = false;
  bool consumes_events = false;  // any required element has event semantics
  std::vector<ConstructItem> items;
  /// All required repository slots (m! guard, b_req, horizon).
  std::vector<ElementId> required;
  /// Freshness gate for event-triggered outputs of state-only messages:
  /// repository version sum at the last emission (0 = never emitted).
  std::uint64_t last_emitted_version_sum = 0;
  /// Version-sum cache (S29): the sum over `required` computed at
  /// repository store-epoch `cached_version_epoch`. Versions only move
  /// with the epoch, so an equal epoch proves the cached sum is current
  /// -- repeated output evaluations between stores skip the per-element
  /// walk. Pure caching; the emitted artifacts are unchanged.
  std::uint64_t cached_version_sum = 0;
  std::uint64_t cached_version_epoch = std::numeric_limits<std::uint64_t>::max();
  /// Resolved emission override (S29): points at this message's slot in
  /// the link's emitter table, pre-created at compile time so the hot
  /// path tests one function object instead of hashing into the map.
  /// An empty function means "no override": deposit into `port`.
  const std::function<void(const spec::MessageInstance&)>* emitter = nullptr;
  /// Persistent output scratch (static fields prefilled by
  /// make_instance); dynamic fields are overwritten per emission and the
  /// instance is deposited by copy.
  spec::MessageInstance scratch;
  /// Swap buffer for consuming event elements without allocation.
  ElementInstance event_scratch;
};

}  // namespace decos::core
