#include "core/gateway_lint.hpp"

namespace decos::core {

lint::GatewayModel make_lint_model(const VirtualGateway& gateway, const tt::TdmaSchedule* schedule,
                                   std::array<std::optional<tt::VnId>, 2> link_vn) {
  lint::GatewayModel model;
  model.name = gateway.name();
  model.dispatch_period = gateway.config().dispatch_period;
  model.default_d_acc = gateway.config().default_d_acc;
  model.default_queue_capacity = gateway.config().default_queue_capacity;
  model.links = {&gateway.link(0).spec(), &gateway.link(1).spec()};
  for (int side = 0; side < 2; ++side)
    model.rename_to_repo[static_cast<std::size_t>(side)] = gateway.link(side).renames_to_repo();
  for (const auto& [name, decl] : gateway.element_overrides())
    model.element_overrides[name] =
        lint::ElementMeta{decl.semantics, decl.d_acc, decl.queue_capacity};
  model.schedule = schedule;
  model.link_vn = link_vn;
  return model;
}

lint::GatewayModel make_lint_model(const GatewayDoc& doc) {
  lint::GatewayModel model;
  model.name = doc.name;
  model.dispatch_period = doc.config.dispatch_period;
  model.default_d_acc = doc.config.default_d_acc;
  model.default_queue_capacity = doc.config.default_queue_capacity;
  model.links = {&doc.links[0], &doc.links[1]};
  for (const GatewayRename& rename : doc.renames)
    model.rename_to_repo[static_cast<std::size_t>(rename.side)][rename.from] = rename.to;
  for (const GatewayElementOverride& element : doc.elements)
    model.element_overrides[element.name] =
        lint::ElementMeta{element.semantics, element.d_acc, element.queue_capacity};
  if (doc.schedule.has_value()) model.schedule = &*doc.schedule;
  model.link_vn = doc.link_vn;
  return model;
}

lint::Report lint_gateway_doc(const GatewayDoc& doc) {
  return lint::lint_gateway(make_lint_model(doc));
}

lint::Report VirtualGateway::lint() const {
  const tt::TdmaSchedule* schedule =
      lint_schedule_.has_value() ? &*lint_schedule_ : nullptr;
  return lint::lint_gateway(make_lint_model(*this, schedule, lint_vn_));
}

void VirtualGateway::set_lint_context(tt::TdmaSchedule schedule,
                                      std::array<std::optional<tt::VnId>, 2> link_vn) {
  lint_schedule_ = std::move(schedule);
  lint_vn_ = link_vn;
}

}  // namespace decos::core
