// Wiring a hidden virtual gateway into the cluster.
//
// The gateway is an architecture-level service: it runs on a component
// (in its own partition, see GatewayJob) and owns ports to the two
// virtual networks it couples. These helpers perform the mechanical
// binding of the gateway's link ports to a concrete VN instance:
//   * time-triggered VN: input ports become VN receivers; output ports
//     become slot-bound senders (the VN pulls the freshest constructed
//     instance at the slot instant);
//   * event-triggered VN: input ports become VN receivers; outputs are
//     emitted actively into the VN's priority queues.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/virtual_gateway.hpp"
#include "vn/et_vn.hpp"
#include "vn/tt_vn.hpp"

namespace decos::core {

/// Bind side `side` of `gateway` to the time-triggered VN `network` as
/// accessed through `controller` (the component hosting the gateway).
/// `sender_slots` maps each output message to the slots transmitting it.
void wire_tt_link(VirtualGateway& gateway, int side, vn::TtVirtualNetwork& network,
                  tt::Controller& controller,
                  const std::map<std::string, std::vector<std::size_t>>& sender_slots);

/// Bind side `side` of `gateway` to the event-triggered VN `network`.
/// `node_slots` is the hosting node's slot share of the VN (pass empty if
/// the node was already attached).
void wire_et_link(VirtualGateway& gateway, int side, vn::EtVirtualNetwork& network,
                  tt::Controller& controller, const std::vector<std::size_t>& node_slots);

}  // namespace decos::core
