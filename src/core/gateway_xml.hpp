// Whole-gateway XML configuration.
//
// The paper parameterizes the generic gateway service with "a message
// description based on timed automata" per link (Fig. 6). Deploying a
// gateway additionally needs the glue that Section IV describes in
// prose: the element renaming tables (Section III-A.1) and the
// repository meta data (d_acc, queue capacities; Section IV-A). This
// module bundles all of it into one deployable artifact:
//
//   <gatewayspec name="wheel-share">
//     <config dispatch="1ms" restart="50ms" dacc="50ms" queue="16"/>
//     <linkspec> ... side 0 (Fig. 6 format) ... </linkspec>
//     <linkspec> ... side 1 ... </linkspec>
//     <rename side="1" from="speedinfo" to="wheelspeed"/>
//     <element name="wheelspeed" semantics="state" dacc="40ms"/>
//   </gatewayspec>
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/virtual_gateway.hpp"
#include "util/result.hpp"

namespace decos::core {

/// Parse a <gatewayspec> document and build the (finalized) gateway.
Result<std::unique_ptr<VirtualGateway>> parse_gateway_xml(std::string_view xml_text);

/// Load a gateway from a file on disk.
Result<std::unique_ptr<VirtualGateway>> load_gateway_file(const std::string& path);

}  // namespace decos::core
