// Whole-gateway XML configuration.
//
// The paper parameterizes the generic gateway service with "a message
// description based on timed automata" per link (Fig. 6). Deploying a
// gateway additionally needs the glue that Section IV describes in
// prose: the element renaming tables (Section III-A.1) and the
// repository meta data (d_acc, queue capacities; Section IV-A). This
// module bundles all of it into one deployable artifact:
//
//   <gatewayspec name="wheel-share">
//     <config dispatch="1ms" restart="50ms" dacc="50ms" queue="16"
//             lint="strict"/>
//     <linkspec vn="1"> ... side 0 (Fig. 6 format) ... </linkspec>
//     <linkspec vn="2"> ... side 1 ... </linkspec>
//     <rename side="1" from="speedinfo" to="wheelspeed"/>
//     <element name="wheelspeed" semantics="state" dacc="40ms"/>
//     <schedule round="10ms">
//       <slot offset="0ms" duration="1ms" owner="1" vn="1" bytes="32"/>
//     </schedule>
//   </gatewayspec>
//
// The optional <schedule> element and the linkspec vn= attributes give
// the static analyzer (declint) its physical-network context: with them
// it checks the links' worst-case bandwidth against the TDMA slots of
// the core network (rule DL003). lint="strict" makes construction fail
// on any analyzer error.
//
// Parsing and building are split so tools can analyze a deployment
// without constructing runtime state: parse_gateway_doc() yields the
// plain GatewayDoc, build_gateway() turns it into a finalized gateway.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/virtual_gateway.hpp"
#include "util/result.hpp"
#include "util/source_loc.hpp"

namespace decos::core {

/// One <rename side=.. from=.. to=../> entry.
struct GatewayRename {
  int side = 0;
  std::string from;  // link-namespace element name
  std::string to;    // repository name
  SourceLoc loc{};
};

/// One <element name=.. semantics=.. dacc=.. queue=../> override.
struct GatewayElementOverride {
  std::string name;
  spec::InfoSemantics semantics = spec::InfoSemantics::kState;
  Duration d_acc = Duration::zero();
  std::size_t queue_capacity = 0;
  SourceLoc loc{};
};

/// Parsed but not yet constructed <gatewayspec> document.
struct GatewayDoc {
  std::string name = "gateway";
  GatewayConfig config;
  std::array<spec::LinkSpec, 2> links;
  std::vector<GatewayRename> renames;
  std::vector<GatewayElementOverride> elements;
  /// Physical-network context (optional): <schedule> and <linkspec vn=..>.
  std::optional<tt::TdmaSchedule> schedule;
  std::array<std::optional<tt::VnId>, 2> link_vn;
};

/// Parse a <gatewayspec> document into its deployment description.
Result<GatewayDoc> parse_gateway_doc(std::string_view xml_text);

/// Load a <gatewayspec> file into its deployment description.
Result<GatewayDoc> load_gateway_doc(const std::string& path);

/// Construct and finalize the gateway a document describes. With
/// config lint="strict" this fails (with the analyzer's report in the
/// error message) when the deployment violates any lint rule.
Result<std::unique_ptr<VirtualGateway>> build_gateway(const GatewayDoc& doc);

/// Parse a <gatewayspec> document and build the (finalized) gateway.
Result<std::unique_ptr<VirtualGateway>> parse_gateway_xml(std::string_view xml_text);

/// Load a gateway from a file on disk.
Result<std::unique_ptr<VirtualGateway>> load_gateway_file(const std::string& path);

}  // namespace decos::core
