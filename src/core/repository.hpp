// The gateway repository: a real-time database of convertible elements
// (paper Section IV-A, Fig. 5).
//
// Convertible elements with state semantics are stored in state variables
// (update in place) together with two meta attributes: the static
// temporal accuracy interval d_acc and the dynamic instant of the most
// recent update t_update. A stored real-time image is *temporally
// accurate* at t_now iff t_now < t_update + d_acc.
//
//   NOTE on Eq. (1): the paper's transcription prints the accuracy
//   condition as t_update + d_acc < t_now, which would make an image
//   accurate only after its interval elapsed -- contradicting both the
//   surrounding prose and Eq. (2) (horizon = min(t_update + d_acc -
//   t_now), positive while accurate). We implement the evidently intended
//   direction; see DESIGN.md "Faithfulness notes".
//
// Convertible elements with event semantics are stored in bounded queues
// and consumed exactly once, regardless of temporal accuracy, to keep
// sender/receiver state synchronization intact.
//
// Every element additionally carries the boolean request variable b_req
// by which one gateway side can request instances from the other
// (event-triggered interaction, Section IV-A).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "spec/port_spec.hpp"
#include "ta/value.hpp"
#include "util/time.hpp"

namespace decos::core {

/// One stored instance of a convertible element: field values by name
/// (name-addressed so the two links may order or subset fields
/// differently -- syntactic property transformation).
struct ElementInstance {
  std::vector<std::pair<std::string, ta::Value>> fields;
  Instant observed_at;
  // Causal trace identity inherited from the dissected message instance
  // (0 = untraced); span_id is the dissect span, so the repository-wait
  // span of a later construction can parent under it.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  const ta::Value* field(const std::string& name) const {
    for (const auto& [k, v] : fields)
      if (k == name) return &v;
    return nullptr;
  }
  void set_field(const std::string& name, ta::Value value) {
    for (auto& [k, v] : fields) {
      if (k == name) {
        v = std::move(value);
        return;
      }
    }
    fields.emplace_back(name, std::move(value));
  }
};

/// Declaration of one convertible element in the repository.
struct ElementDecl {
  std::string name;  // repository (canonical) name
  spec::InfoSemantics semantics = spec::InfoSemantics::kState;
  Duration d_acc = Duration::milliseconds(50);  // state elements only
  std::size_t queue_capacity = 16;              // event elements only
};

class Repository {
 public:
  /// Declare an element. Re-declaration with identical semantics is a
  /// no-op; conflicting semantics is a configuration error.
  void declare(const ElementDecl& decl);
  bool is_declared(const std::string& name) const { return entries_.count(name) != 0; }
  const ElementDecl& decl_of(const std::string& name) const;

  /// Store an instance. State: overwrite in place, t_update := now.
  /// Event: enqueue; a full queue drops the *new* instance and counts an
  /// overflow. Storing clears the element's request variable.
  /// Returns false on overflow.
  bool store(const std::string& name, ElementInstance instance, Instant now);

  /// Availability for message construction (the m! guard): state
  /// elements must hold a temporally accurate image; event elements a
  /// non-empty queue.
  bool available(const std::string& name, Instant now) const;

  /// Fetch for construction. State: non-consuming copy if accurate (or
  /// regardless of accuracy when `ignore_accuracy`). Event: pop the
  /// oldest instance (exactly-once).
  std::optional<ElementInstance> fetch(const std::string& name, Instant now,
                                       bool ignore_accuracy = false);

  /// Non-consuming read of the current state value / queue head.
  const ElementInstance* peek(const std::string& name) const;

  /// Eq. (1), corrected direction: t_now < t_update + d_acc.
  bool temporally_accurate(const std::string& name, Instant now) const;

  /// Eq. (2): remaining accuracy interval over a set of elements,
  ///   horizon = min over elements of (t_update + d_acc - t_now).
  /// Event elements do not constrain the horizon. Elements with state
  /// semantics but no stored image yield a negative horizon.
  Duration horizon(std::span<const std::string> elements, Instant now) const;

  // -- request variables ----------------------------------------------------
  void set_request(const std::string& name, bool requested = true);
  bool requested(const std::string& name) const;

  /// Monotone store counter per element (0 = never stored). Lets the
  /// gateway detect fresh information for event-triggered emission.
  std::uint64_t version(const std::string& name) const;

  std::size_t queue_depth(const std::string& name) const;

  // -- counters ---------------------------------------------------------
  std::uint64_t stores() const { return stores_; }
  std::uint64_t overflows() const { return overflows_; }
  std::uint64_t stale_fetches_refused() const { return stale_refused_; }
  std::size_t element_count() const { return entries_.size(); }
  std::vector<std::string> element_names() const;

 private:
  struct Entry {
    ElementDecl decl;
    std::optional<ElementInstance> state_value;
    Instant t_update = Instant::origin() - Duration::seconds(1000);  // "never"
    std::deque<ElementInstance> queue;
    bool b_req = false;
    std::uint64_t version = 0;
  };

  Entry& entry(const std::string& name);
  const Entry& entry(const std::string& name) const;

  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t stores_ = 0;
  std::uint64_t overflows_ = 0;
  mutable std::uint64_t stale_refused_ = 0;
};

}  // namespace decos::core
