// The gateway repository: a real-time database of convertible elements
// (paper Section IV-A, Fig. 5).
//
// Convertible elements with state semantics are stored in state variables
// (update in place) together with two meta attributes: the static
// temporal accuracy interval d_acc and the dynamic instant of the most
// recent update t_update. A stored real-time image is *temporally
// accurate* at t_now iff t_now < t_update + d_acc.
//
//   NOTE on Eq. (1): the paper's transcription prints the accuracy
//   condition as t_update + d_acc < t_now, which would make an image
//   accurate only after its interval elapsed -- contradicting both the
//   surrounding prose and Eq. (2) (horizon = min(t_update + d_acc -
//   t_now), positive while accurate). We implement the evidently intended
//   direction; see DESIGN.md "Faithfulness notes".
//
// Convertible elements with event semantics are stored in bounded ring
// buffers and consumed exactly once, regardless of temporal accuracy, to
// keep sender/receiver state synchronization intact.
//
// Every element additionally carries the boolean request variable b_req
// by which one gateway side can request instances from the other
// (event-triggered interaction, Section IV-A).
//
// Storage layout: entries live in a flat vector indexed by a dense
// ElementId handed out at declaration time; a Symbol-keyed side index
// resolves names to ids. The gateway's compiled transfer plans hold
// ElementIds, so the steady-state store/fetch path is a bounds-checked
// array access -- no hashing, no string compares. The name-keyed methods
// remain as resolve-then-forward wrappers for tests and cold paths.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "spec/port_spec.hpp"
#include "ta/value.hpp"
#include "util/symbol.hpp"
#include "util/time.hpp"

namespace decos::core {

/// Dense handle of a declared convertible element within one Repository.
using ElementId = std::uint32_t;
inline constexpr ElementId kInvalidElementId = std::numeric_limits<ElementId>::max();

/// One stored instance of a convertible element: field values keyed by
/// interned Symbol (name-addressed so the two links may order or subset
/// fields differently -- syntactic property transformation -- but the
/// per-lookup cost is a u32 scan, not a string compare).
struct ElementInstance {
  std::vector<std::pair<Symbol, ta::Value>> fields;
  Instant observed_at;
  // Causal trace identity inherited from the dissected message instance
  // (0 = untraced); span_id is the dissect span, so the repository-wait
  // span of a later construction can parent under it.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  const ta::Value* field(Symbol key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
  ta::Value* field(Symbol key) {
    for (auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
  /// Name-keyed read. Resolves through the global symbol table without
  /// inserting, so probing with arbitrary strings cannot grow it.
  const ta::Value* field(const std::string& name) const {
    const auto sym = SymbolTable::global().lookup(name);
    return sym ? field(*sym) : nullptr;
  }

  /// Insert-or-assign. The duplicate-key check compares interned ids
  /// (one integer each), not strings; assignment reuses the existing
  /// value's storage.
  void set_field(Symbol key, ta::Value value) {
    for (auto& [k, v] : fields) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    fields.emplace_back(key, std::move(value));
  }
  void set_field(const std::string& name, ta::Value value) {
    set_field(intern_symbol(name), std::move(value));
  }
};

/// Declaration of one convertible element in the repository.
struct ElementDecl {
  std::string name;  // repository (canonical) name
  spec::InfoSemantics semantics = spec::InfoSemantics::kState;
  Duration d_acc = Duration::milliseconds(50);  // state elements only
  std::size_t queue_capacity = 16;              // event elements only
};

class Repository {
 public:
  /// Declare an element and return its dense id. Re-declaration with
  /// identical semantics returns the existing id; conflicting semantics
  /// is a configuration error.
  ElementId declare(const ElementDecl& decl);

  /// Resolve a name to its id (nullopt if undeclared). Non-inserting.
  std::optional<ElementId> id_of(Symbol name) const;
  std::optional<ElementId> id_of(const std::string& name) const;

  bool is_declared(const std::string& name) const { return id_of(name).has_value(); }
  const ElementDecl& decl_of(ElementId id) const { return entry(id).decl; }
  const ElementDecl& decl_of(const std::string& name) const { return entry(resolve(name)).decl; }

  // -- store ------------------------------------------------------------
  /// Store an instance. State: overwrite in place, t_update := now.
  /// Event: enqueue; a full queue drops the *new* instance and counts an
  /// overflow. Storing clears the element's request variable.
  /// Returns false on overflow.
  bool store(ElementId id, ElementInstance&& instance, Instant now);
  /// Copy-assigning store for the compiled-plan hot path: the target
  /// slot's field storage is reused (vector and string capacities), so a
  /// warmed repository absorbs stores without heap allocation.
  bool store_copy(ElementId id, const ElementInstance& instance, Instant now);
  bool store(const std::string& name, ElementInstance instance, Instant now) {
    return store(resolve(name), std::move(instance), now);
  }

  // -- fetch ------------------------------------------------------------
  /// Availability for message construction (the m! guard): state
  /// elements must hold a temporally accurate image; event elements a
  /// non-empty queue.
  bool available(ElementId id, Instant now) const;
  bool available(const std::string& name, Instant now) const {
    return available(resolve(name), now);
  }

  /// Fetch for construction (copying compat form). State: non-consuming
  /// copy if accurate (or regardless of accuracy when `ignore_accuracy`).
  /// Event: pop the oldest instance (exactly-once).
  std::optional<ElementInstance> fetch(ElementId id, Instant now, bool ignore_accuracy = false);
  std::optional<ElementInstance> fetch(const std::string& name, Instant now,
                                       bool ignore_accuracy = false) {
    return fetch(resolve(name), now, ignore_accuracy);
  }

  /// Plan hot path, state elements: borrow the stored image without
  /// copying. nullptr when absent or (unless `ignore_accuracy`) stale;
  /// a stale refusal is counted exactly like a refused fetch().
  const ElementInstance* fetch_state(ElementId id, Instant now, bool ignore_accuracy = false);

  /// Plan hot path, event elements: consume the oldest instance by
  /// swapping it into `out` -- `out`'s previous storage is left in the
  /// ring slot and recycled by the next store_copy(), so the steady
  /// state allocates nothing. Returns false on an empty queue.
  bool consume_into(ElementId id, ElementInstance& out);

  /// Non-consuming read of the current state value / queue head.
  const ElementInstance* peek(ElementId id) const;
  const ElementInstance* peek(const std::string& name) const { return peek(resolve(name)); }

  /// Eq. (1), corrected direction: t_now < t_update + d_acc.
  bool temporally_accurate(ElementId id, Instant now) const;
  bool temporally_accurate(const std::string& name, Instant now) const {
    return temporally_accurate(resolve(name), now);
  }

  /// Eq. (2): remaining accuracy interval over a set of elements,
  ///   horizon = min over elements of (t_update + d_acc - t_now).
  /// Event elements do not constrain the horizon. Elements with state
  /// semantics but no stored image yield a negative horizon.
  Duration horizon(std::span<const ElementId> ids, Instant now) const;
  Duration horizon(std::span<const std::string> elements, Instant now) const;

  // -- request variables ------------------------------------------------
  void set_request(ElementId id, bool requested = true) { entry(id).b_req = requested; }
  void set_request(const std::string& name, bool requested = true) {
    set_request(resolve(name), requested);
  }
  bool requested(ElementId id) const { return entry(id).b_req; }
  bool requested(const std::string& name) const { return requested(resolve(name)); }

  /// Monotone store counter per element (0 = never stored). Lets the
  /// gateway detect fresh information for event-triggered emission.
  std::uint64_t version(ElementId id) const { return entry(id).version; }
  std::uint64_t version(const std::string& name) const { return version(resolve(name)); }

  std::size_t queue_depth(ElementId id) const { return entry(id).ring_count; }
  std::size_t queue_depth(const std::string& name) const { return queue_depth(resolve(name)); }

  // -- counters ---------------------------------------------------------
  std::uint64_t stores() const { return stores_; }
  /// Global freshness epoch (S29): per-element versions only advance
  /// together with this counter, so a plan whose cached version sum was
  /// computed at the current epoch can reuse it without touching the
  /// per-element entries. (Alias of stores(); spelled separately where
  /// the caller depends on the epoch property, not the statistic.)
  std::uint64_t store_epoch() const { return stores_; }
  std::uint64_t overflows() const { return overflows_; }
  std::uint64_t stale_fetches_refused() const { return stale_refused_; }
  std::size_t element_count() const { return entries_.size(); }
  std::vector<std::string> element_names() const;

 private:
  struct Entry {
    ElementDecl decl;
    Symbol name_sym;
    std::optional<ElementInstance> state_value;
    Instant t_update = Instant::origin() - Duration::seconds(1000);  // "never"
    // Event semantics: fixed ring of queue_capacity slots. Slots keep
    // their field storage across consume/store cycles.
    std::vector<ElementInstance> ring;
    std::size_t ring_head = 0;
    std::size_t ring_count = 0;
    bool b_req = false;
    std::uint64_t version = 0;
  };

  /// Name -> id or SpecError (undeclared elements are configuration
  /// faults, matching the historical name-keyed behaviour).
  ElementId resolve(const std::string& name) const;

  Entry& entry(ElementId id);
  const Entry& entry(ElementId id) const;

  std::vector<Entry> entries_;  // indexed by ElementId
  std::unordered_map<Symbol, ElementId, SymbolHash> index_;
  std::uint64_t stores_ = 0;
  std::uint64_t overflows_ = 0;
  mutable std::uint64_t stale_refused_ = 0;
};

}  // namespace decos::core
