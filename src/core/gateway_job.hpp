// Hosting a hidden gateway on the platform (paper Section IV intro +
// Section III: "A hidden gateway performs the interconnection of virtual
// networks at the architecture level").
//
// The gateway runs as an architecture-level activity inside a dedicated
// partition of a component -- transparent to application jobs, which see
// only the messages that appear on their own virtual network. GatewayJob
// adapts a VirtualGateway to the partition scheduler: every activation
// performs one dispatch() (pull-input drain, timeout polls, TT output
// construction).
#pragma once

#include "core/virtual_gateway.hpp"
#include "platform/job.hpp"

namespace decos::core {

class GatewayJob final : public platform::Job {
 public:
  /// The job is created in a dedicated architecture-level DAS so that no
  /// application partition can host it by accident.
  GatewayJob(VirtualGateway& gateway, std::string das = "architecture")
      : platform::Job{"gateway:" + gateway.name(), std::move(das)}, gateway_{gateway} {}

  void step(Instant now) override { gateway_.dispatch(now); }

  VirtualGateway& gateway() { return gateway_; }

 private:
  VirtualGateway& gateway_;
};

}  // namespace decos::core
