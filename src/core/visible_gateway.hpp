// Visible gateways (paper Section III): "A visible gateway performs the
// interconnection at the application level. A so-called gateway job
// possesses ports to two virtual networks. ... a visible gateway enables
// the designer to resolve mismatches that elude a generic architectural
// solution. Property mismatches at the semantic level will usually fall
// into this category."
//
// VisibleGatewayJob is a platform job holding one input port (towards
// VN A) and one output port (towards VN B) plus a user-supplied
// *semantic transform*: arbitrary application code that rewrites each
// instance -- unit conversions, coordinate changes, domain-specific
// plausibility logic -- before it is re-published. Unlike the hidden
// VirtualGateway it is developed and validated per application, which is
// exactly the trade-off the paper describes.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "platform/job.hpp"
#include "spec/message.hpp"

namespace decos::core {

class VisibleGatewayJob final : public platform::Job {
 public:
  /// The transform receives each admitted input instance and returns the
  /// instance to publish on the output side (or nullopt to drop it --
  /// application-level filtering).
  using Transform =
      std::function<std::optional<spec::MessageInstance>(const spec::MessageInstance&, Instant)>;

  /// The job belongs to the DAS of its *output* side: it acts as one of
  /// that DAS's producers, with an explicitly granted window into the
  /// other DAS (its input port).
  VisibleGatewayJob(std::string name, std::string das, spec::PortSpec input_spec,
                    spec::PortSpec output_spec, Transform transform)
      : platform::Job{std::move(name), std::move(das)},
        transform_{std::move(transform)},
        input_{add_port(std::move(input_spec))},
        output_{add_port(std::move(output_spec))} {}

  vn::Port& input() { return input_; }
  vn::Port& output() { return output_; }

  void step(Instant now) override {
    // Drain everything pending (event ports) / the freshest image (state
    // ports) and re-publish through the transform.
    while (auto instance = input_.read()) {
      if (auto transformed = transform_(*instance, now)) {
        transformed->set_send_time(now);
        output_.deposit(std::move(*transformed), now);
        ++forwarded_;
      } else {
        ++dropped_;
      }
      if (input_.spec().semantics == spec::InfoSemantics::kState) break;
    }
  }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  Transform transform_;
  vn::Port& input_;
  vn::Port& output_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace decos::core
