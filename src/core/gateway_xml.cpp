#include "core/gateway_xml.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "spec/linkspec_xml.hpp"
#include "ta/expr.hpp"
#include "xml/xml.hpp"

namespace decos::core {
namespace {


Result<std::size_t> parse_size_attr(const std::string& text, const char* what) {
  if (text.empty())
    return Result<std::size_t>::failure(std::string{"empty "} + what + " attribute");
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0)
    return Result<std::size_t>::failure(std::string{"bad "} + what + " attribute '" + text + "'");
  return static_cast<std::size_t>(value);
}

Result<Duration> parse_duration(const std::string& text) {
  auto expr = ta::parse_expression(text);
  if (!expr.ok()) return expr.error();
  // Literal-only: evaluate against an environment that rejects names.
  class NoEnv final : public ta::Environment {
   public:
    ta::Value get(const std::string& name) const override {
      throw SpecError("identifier '" + name + "' not allowed here");
    }
    void set(const std::string&, const ta::Value&) override { throw SpecError("no assignment"); }
    ta::Value call(const std::string& name, const std::vector<ta::Value>&) override {
      throw SpecError("no call of '" + name + "'");
    }
  } env;
  try {
    return expr.value()->evaluate(env).as_duration();
  } catch (const SpecError& e) {
    return Result<Duration>::failure(std::string{"bad duration '"} + text + "': " + e.what());
  }
}

}  // namespace

Result<std::unique_ptr<VirtualGateway>> parse_gateway_xml(std::string_view xml_text) {
  using R = Result<std::unique_ptr<VirtualGateway>>;
  auto doc = xml::parse(xml_text);
  if (!doc.ok()) return doc.error();
  const xml::Element& root = *doc.value().root;
  if (root.name() != "gatewayspec")
    return R::failure("expected <gatewayspec> root, got <" + root.name() + ">");

  const std::string name = root.attribute_or("name", "gateway");

  GatewayConfig config;
  if (const xml::Element* ce = root.child("config"); ce != nullptr) {
    if (ce->has_attribute("dispatch")) {
      auto d = parse_duration(ce->attribute("dispatch"));
      if (!d.ok()) return d.error();
      config.dispatch_period = d.value();
    }
    if (ce->has_attribute("restart")) {
      auto d = parse_duration(ce->attribute("restart"));
      if (!d.ok()) return d.error();
      config.restart_delay = d.value();
    }
    if (ce->has_attribute("dacc")) {
      auto d = parse_duration(ce->attribute("dacc"));
      if (!d.ok()) return d.error();
      config.default_d_acc = d.value();
    }
    if (ce->has_attribute("queue")) {
      auto parsed = parse_size_attr(ce->attribute("queue"), "queue");
      if (!parsed.ok()) return parsed.error();
      config.default_queue_capacity = parsed.value();
    }
    if (ce->has_attribute("filtering"))
      config.temporal_filtering = ce->attribute("filtering") != "off";
    if (ce->has_attribute("pull"))
      config.pull_only_on_request = ce->attribute("pull") == "on-request";
  }

  const auto link_elements = root.children_named("linkspec");
  if (link_elements.size() != 2)
    return R::failure("a <gatewayspec> needs exactly 2 <linkspec> children, found " +
                      std::to_string(link_elements.size()));

  // Re-serialize each child so the linkspec parser sees a standalone doc.
  auto link_a = spec::parse_link_spec_xml(xml::write(*link_elements[0]));
  if (!link_a.ok()) return Error{"link 0: " + link_a.error().message};
  auto link_b = spec::parse_link_spec_xml(xml::write(*link_elements[1]));
  if (!link_b.ok()) return Error{"link 1: " + link_b.error().message};

  auto gateway = std::make_unique<VirtualGateway>(name, std::move(link_a.value()),
                                                  std::move(link_b.value()), config);

  for (const xml::Element* re : root.children_named("rename")) {
    const std::string side = re->attribute("side");
    if (side != "0" && side != "1")
      return R::failure("<rename> needs side=\"0\" or \"1\"");
    const std::string from = re->attribute("from");
    const std::string to = re->attribute("to");
    if (from.empty() || to.empty()) return R::failure("<rename> needs from= and to=");
    gateway->link(side == "0" ? 0 : 1).add_rename(from, to);
  }

  for (const xml::Element* ee : root.children_named("element")) {
    const std::string element_name = ee->attribute("name");
    if (element_name.empty()) return R::failure("<element> needs a name");
    const std::string semantics_text = ee->attribute_or("semantics", "state");
    spec::InfoSemantics semantics;
    if (semantics_text == "state") semantics = spec::InfoSemantics::kState;
    else if (semantics_text == "event") semantics = spec::InfoSemantics::kEvent;
    else return R::failure("<element name=\"" + element_name + "\">: bad semantics");
    Duration d_acc = config.default_d_acc;
    if (ee->has_attribute("dacc")) {
      auto d = parse_duration(ee->attribute("dacc"));
      if (!d.ok()) return d.error();
      d_acc = d.value();
    }
    std::size_t queue = config.default_queue_capacity;
    if (ee->has_attribute("queue")) {
      auto parsed = parse_size_attr(ee->attribute("queue"), "queue");
      if (!parsed.ok()) return parsed.error();
      queue = parsed.value();
    }
    gateway->set_element_config(element_name, semantics, d_acc, queue);
  }

  try {
    gateway->finalize();
  } catch (const SpecError& e) {
    return R::failure(std::string{"gateway '"} + name + "' rejected: " + e.what());
  }
  return gateway;
}

Result<std::unique_ptr<VirtualGateway>> load_gateway_file(const std::string& path) {
  std::ifstream in{path};
  if (!in)
    return Result<std::unique_ptr<VirtualGateway>>::failure("cannot open gateway spec '" + path +
                                                            "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_gateway_xml(buffer.str());
}

}  // namespace decos::core
