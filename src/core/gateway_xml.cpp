#include "core/gateway_xml.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "spec/linkspec_xml.hpp"
#include "ta/expr.hpp"
#include "xml/xml.hpp"

namespace decos::core {
namespace {

Result<std::size_t> parse_size_attr(const std::string& text, const char* what) {
  if (text.empty())
    return Result<std::size_t>::failure(std::string{"empty "} + what + " attribute");
  char* end = nullptr;
  errno = 0;  // strtol reports overflow via ERANGE, not the return value
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0 || errno == ERANGE)
    return Result<std::size_t>::failure(std::string{"bad "} + what + " attribute '" + text + "'");
  return static_cast<std::size_t>(value);
}

Result<Duration> parse_duration(const std::string& text) {
  auto expr = ta::parse_expression(text);
  if (!expr.ok()) return expr.error();
  // Literal-only: evaluate against an environment that rejects names.
  class NoEnv final : public ta::Environment {
   public:
    ta::Value get(const std::string& name) const override {
      throw SpecError("identifier '" + name + "' not allowed here");
    }
    void set(const std::string&, const ta::Value&) override { throw SpecError("no assignment"); }
    ta::Value call(const std::string& name, const std::vector<ta::Value>&) override {
      throw SpecError("no call of '" + name + "'");
    }
  } env;
  try {
    return expr.value()->evaluate(env).as_duration();
  } catch (const SpecError& e) {
    return Result<Duration>::failure(std::string{"bad duration '"} + text + "': " + e.what());
  }
}

Result<Duration> parse_duration_attr(const xml::Element& e, const char* key) {
  return parse_duration(e.attribute(std::string{key}));
}

Result<tt::TdmaSchedule> parse_schedule(const xml::Element& se) {
  using R = Result<tt::TdmaSchedule>;
  if (!se.has_attribute("round")) return R::failure("<schedule> needs a round attribute");
  auto round = parse_duration_attr(se, "round");
  if (!round.ok()) return round.error();
  tt::TdmaSchedule schedule{round.value()};
  for (const xml::Element* sl : se.children_named("slot")) {
    tt::SlotSpec slot;
    if (sl->has_attribute("offset")) {
      auto d = parse_duration_attr(*sl, "offset");
      if (!d.ok()) return d.error();
      slot.offset = d.value();
    }
    if (!sl->has_attribute("duration")) return R::failure("<slot> needs a duration attribute");
    auto d = parse_duration_attr(*sl, "duration");
    if (!d.ok()) return d.error();
    slot.duration = d.value();
    if (sl->has_attribute("owner")) {
      auto owner = parse_size_attr(sl->attribute("owner"), "owner");
      if (!owner.ok()) return owner.error();
      slot.owner = static_cast<tt::NodeId>(owner.value());
    }
    if (sl->has_attribute("vn")) {
      auto vn = parse_size_attr(sl->attribute("vn"), "vn");
      if (!vn.ok()) return vn.error();
      slot.vn = static_cast<tt::VnId>(vn.value());
    }
    if (sl->has_attribute("bytes")) {
      auto bytes = parse_size_attr(sl->attribute("bytes"), "bytes");
      if (!bytes.ok()) return bytes.error();
      slot.payload_bytes = bytes.value();
    }
    schedule.add_slot(slot);
  }
  return schedule;
}

}  // namespace

Result<GatewayDoc> parse_gateway_doc(std::string_view xml_text) {
  using R = Result<GatewayDoc>;
  auto parsed = xml::parse(xml_text);
  if (!parsed.ok()) return parsed.error();
  const xml::Element& root = *parsed.value().root;
  if (root.name() != "gatewayspec")
    return R::failure("expected <gatewayspec> root, got <" + root.name() + ">");

  GatewayDoc doc;
  doc.name = root.attribute_or("name", "gateway");

  if (const xml::Element* ce = root.child("config"); ce != nullptr) {
    if (ce->has_attribute("dispatch")) {
      auto d = parse_duration_attr(*ce, "dispatch");
      if (!d.ok()) return d.error();
      doc.config.dispatch_period = d.value();
    }
    if (ce->has_attribute("restart")) {
      auto d = parse_duration_attr(*ce, "restart");
      if (!d.ok()) return d.error();
      doc.config.restart_delay = d.value();
    }
    if (ce->has_attribute("dacc")) {
      auto d = parse_duration_attr(*ce, "dacc");
      if (!d.ok()) return d.error();
      doc.config.default_d_acc = d.value();
    }
    if (ce->has_attribute("queue")) {
      auto q = parse_size_attr(ce->attribute("queue"), "queue");
      if (!q.ok()) return q.error();
      doc.config.default_queue_capacity = q.value();
    }
    if (ce->has_attribute("filtering"))
      doc.config.temporal_filtering = ce->attribute("filtering") != "off";
    if (ce->has_attribute("pull"))
      doc.config.pull_only_on_request = ce->attribute("pull") == "on-request";
    if (ce->has_attribute("lint")) {
      const std::string mode = ce->attribute("lint");
      if (mode != "strict" && mode != "off")
        return R::failure("<config lint=\"" + mode + "\">: expected \"strict\" or \"off\"");
      doc.config.strict_lint = mode == "strict";
    }
  }

  const auto link_elements = root.children_named("linkspec");
  if (link_elements.size() != 2)
    return R::failure("a <gatewayspec> needs exactly 2 <linkspec> children, found " +
                      std::to_string(link_elements.size()));
  for (std::size_t side = 0; side < 2; ++side) {
    // Parse the child element in place so source positions of the
    // enclosing document survive into the spec (for lint diagnostics).
    auto link = spec::parse_link_spec_element(*link_elements[side]);
    if (!link.ok())
      return Error{"link " + std::to_string(side) + ": " + link.error().message};
    doc.links[side] = std::move(link.value());
    if (link_elements[side]->has_attribute("vn")) {
      auto vn = parse_size_attr(link_elements[side]->attribute("vn"), "vn");
      if (!vn.ok()) return vn.error();
      doc.link_vn[side] = static_cast<tt::VnId>(vn.value());
    }
  }

  for (const xml::Element* re : root.children_named("rename")) {
    const std::string side = re->attribute("side");
    if (side != "0" && side != "1") return R::failure("<rename> needs side=\"0\" or \"1\"");
    GatewayRename rename;
    rename.side = side == "0" ? 0 : 1;
    rename.from = re->attribute("from");
    rename.to = re->attribute("to");
    rename.loc = SourceLoc{re->line(), re->column()};
    if (rename.from.empty() || rename.to.empty())
      return R::failure("<rename> needs from= and to=");
    doc.renames.push_back(std::move(rename));
  }

  for (const xml::Element* ee : root.children_named("element")) {
    GatewayElementOverride element;
    element.name = ee->attribute("name");
    element.loc = SourceLoc{ee->line(), ee->column()};
    if (element.name.empty()) return R::failure("<element> needs a name");
    const std::string semantics_text = ee->attribute_or("semantics", "state");
    if (semantics_text == "state") element.semantics = spec::InfoSemantics::kState;
    else if (semantics_text == "event") element.semantics = spec::InfoSemantics::kEvent;
    else return R::failure("<element name=\"" + element.name + "\">: bad semantics");
    element.d_acc = doc.config.default_d_acc;
    if (ee->has_attribute("dacc")) {
      auto d = parse_duration_attr(*ee, "dacc");
      if (!d.ok()) return d.error();
      element.d_acc = d.value();
    }
    element.queue_capacity = doc.config.default_queue_capacity;
    if (ee->has_attribute("queue")) {
      auto q = parse_size_attr(ee->attribute("queue"), "queue");
      if (!q.ok()) return q.error();
      element.queue_capacity = q.value();
    }
    doc.elements.push_back(std::move(element));
  }

  if (const xml::Element* se = root.child("schedule"); se != nullptr) {
    auto schedule = parse_schedule(*se);
    if (!schedule.ok()) return schedule.error();
    doc.schedule = std::move(schedule.value());
  }

  return doc;
}

Result<GatewayDoc> load_gateway_doc(const std::string& path) {
  std::ifstream in{path};
  if (!in) return Result<GatewayDoc>::failure("cannot open gateway spec '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_gateway_doc(buffer.str());
}

Result<std::unique_ptr<VirtualGateway>> build_gateway(const GatewayDoc& doc) {
  using R = Result<std::unique_ptr<VirtualGateway>>;
  auto gateway =
      std::make_unique<VirtualGateway>(doc.name, doc.links[0], doc.links[1], doc.config);
  for (const GatewayRename& rename : doc.renames)
    gateway->link(rename.side).add_rename(rename.from, rename.to);
  for (const GatewayElementOverride& element : doc.elements)
    gateway->set_element_config(element.name, element.semantics, element.d_acc,
                                element.queue_capacity);
  if (doc.schedule.has_value()) gateway->set_lint_context(*doc.schedule, doc.link_vn);
  try {
    gateway->finalize();
  } catch (const SpecError& e) {
    return R::failure(std::string{"gateway '"} + doc.name + "' rejected: " + e.what());
  }
  return gateway;
}

Result<std::unique_ptr<VirtualGateway>> parse_gateway_xml(std::string_view xml_text) {
  auto doc = parse_gateway_doc(xml_text);
  if (!doc.ok()) return doc.error();
  return build_gateway(doc.value());
}

Result<std::unique_ptr<VirtualGateway>> load_gateway_file(const std::string& path) {
  std::ifstream in{path};
  if (!in)
    return Result<std::unique_ptr<VirtualGateway>>::failure("cannot open gateway spec '" + path +
                                                            "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_gateway_xml(buffer.str());
}

}  // namespace decos::core
