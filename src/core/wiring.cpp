#include "core/wiring.hpp"

namespace decos::core {

void wire_tt_link(VirtualGateway& gateway, int side, vn::TtVirtualNetwork& network,
                  tt::Controller& controller,
                  const std::map<std::string, std::vector<std::size_t>>& sender_slots) {
  if (!gateway.finalized()) gateway.finalize();
  gateway.bind_observability(controller.simulator());
  GatewayLink& link = gateway.link(side);
  for (const spec::PortSpec& port_spec : link.spec().ports()) {
    // The VN needs the message registered in its namespace.
    if (network.message_spec(port_spec.message) == nullptr)
      network.register_message(*link.spec().message(port_spec.message));
    vn::Port* port = link.port(port_spec.message);
    if (port_spec.direction == spec::DataDirection::kInput) {
      network.attach_receiver(controller, *port);
    } else {
      const auto it = sender_slots.find(port_spec.message);
      if (it == sender_slots.end())
        throw SpecError("wire_tt_link: no slots given for output message '" + port_spec.message +
                        "'");
      network.attach_sender(controller, *port, it->second);
    }
  }
}

void wire_et_link(VirtualGateway& gateway, int side, vn::EtVirtualNetwork& network,
                  tt::Controller& controller, const std::vector<std::size_t>& node_slots) {
  if (!gateway.finalized()) gateway.finalize();
  gateway.bind_observability(controller.simulator());
  GatewayLink& link = gateway.link(side);
  if (!node_slots.empty()) network.attach_node(controller, node_slots);
  for (const spec::PortSpec& port_spec : link.spec().ports()) {
    if (network.message_spec(port_spec.message) == nullptr)
      network.register_message(*link.spec().message(port_spec.message));
    vn::Port* port = link.port(port_spec.message);
    if (port_spec.direction == spec::DataDirection::kInput) {
      network.attach_receiver(controller, *port);
    } else {
      link.set_emitter(port_spec.message,
                       [&network, &controller](const spec::MessageInstance& instance) {
                         network.send(controller, instance);
                       });
    }
  }
}

}  // namespace decos::core
