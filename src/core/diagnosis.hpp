// Cluster-level diagnosis: the consistent-diagnosis core service (C4)
// tells *which components* failed; the gateways' timed automata tell
// *which DASes* violate their temporal specifications (paper Section IV:
// the error state "gives the gateway the ability to perform error
// handling"). This service aggregates both into one queryable health
// report -- the hook an integrated system's maintenance function (or a
// degradation-aware application) consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/virtual_gateway.hpp"
#include "services/membership.hpp"

namespace decos::core {

/// Health report over the whole cluster at one instant.
struct ClusterHealth {
  std::vector<tt::NodeId> failed_nodes;          // per membership (C4)
  std::vector<std::string> misbehaving_dases;    // per gateway automata
  std::uint64_t contained_messages = 0;          // blocked at gateways so far

  bool all_green() const { return failed_nodes.empty() && misbehaving_dases.empty(); }
  std::string summary() const;
};

/// Aggregates one membership view plus any number of gateways.
class DiagnosisService {
 public:
  /// `membership`: the local membership instance whose view this service
  /// trusts (all correct nodes agree, so any one will do).
  explicit DiagnosisService(const services::Membership& membership) : membership_{&membership} {}

  /// Register a gateway; the DAS names are taken from its link specs.
  void watch(const VirtualGateway& gateway) { gateways_.push_back(&gateway); }

  ClusterHealth report() const;

 private:
  const services::Membership* membership_;
  std::vector<const VirtualGateway*> gateways_;
};

}  // namespace decos::core
