#include "core/repository.hpp"

#include "util/result.hpp"

namespace decos::core {

void Repository::declare(const ElementDecl& decl) {
  const auto it = entries_.find(decl.name);
  if (it != entries_.end()) {
    if (it->second.decl.semantics != decl.semantics)
      throw SpecError("convertible element '" + decl.name +
                      "' declared with conflicting semantics");
    return;
  }
  Entry e;
  e.decl = decl;
  entries_.emplace(decl.name, std::move(e));
}

Repository::Entry& Repository::entry(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw SpecError("convertible element '" + name + "' is not declared in the repository");
  return it->second;
}

const Repository::Entry& Repository::entry(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw SpecError("convertible element '" + name + "' is not declared in the repository");
  return it->second;
}

const ElementDecl& Repository::decl_of(const std::string& name) const { return entry(name).decl; }

bool Repository::store(const std::string& name, ElementInstance instance, Instant now) {
  Entry& e = entry(name);
  e.b_req = false;  // the request has been satisfied
  ++e.version;
  ++stores_;
  if (e.decl.semantics == spec::InfoSemantics::kState) {
    instance.observed_at = now;
    e.state_value = std::move(instance);
    e.t_update = now;
    return true;
  }
  if (e.queue.size() >= e.decl.queue_capacity) {
    ++overflows_;
    return false;
  }
  instance.observed_at = now;
  e.queue.push_back(std::move(instance));
  return true;
}

bool Repository::temporally_accurate(const std::string& name, Instant now) const {
  const Entry& e = entry(name);
  if (e.decl.semantics != spec::InfoSemantics::kState) return true;
  if (!e.state_value) return false;
  return now < e.t_update + e.decl.d_acc;
}

bool Repository::available(const std::string& name, Instant now) const {
  const Entry& e = entry(name);
  if (e.decl.semantics == spec::InfoSemantics::kState)
    return e.state_value.has_value() && temporally_accurate(name, now);
  return !e.queue.empty();
}

std::optional<ElementInstance> Repository::fetch(const std::string& name, Instant now,
                                                 bool ignore_accuracy) {
  Entry& e = entry(name);
  if (e.decl.semantics == spec::InfoSemantics::kState) {
    if (!e.state_value) return std::nullopt;
    if (!ignore_accuracy && !temporally_accurate(name, now)) {
      ++stale_refused_;
      return std::nullopt;
    }
    return e.state_value;  // non-consuming copy
  }
  if (e.queue.empty()) return std::nullopt;
  ElementInstance instance = std::move(e.queue.front());
  e.queue.pop_front();
  return instance;
}

const ElementInstance* Repository::peek(const std::string& name) const {
  const Entry& e = entry(name);
  if (e.decl.semantics == spec::InfoSemantics::kState)
    return e.state_value ? &*e.state_value : nullptr;
  return e.queue.empty() ? nullptr : &e.queue.front();
}

Duration Repository::horizon(std::span<const std::string> elements, Instant now) const {
  Duration h = Duration::max();
  for (const auto& name : elements) {
    const Entry& e = entry(name);
    if (e.decl.semantics != spec::InfoSemantics::kState) continue;
    const Duration remaining = (e.t_update + e.decl.d_acc) - now;
    if (remaining < h) h = remaining;
  }
  return h;
}

void Repository::set_request(const std::string& name, bool requested) {
  entry(name).b_req = requested;
}

bool Repository::requested(const std::string& name) const { return entry(name).b_req; }

std::uint64_t Repository::version(const std::string& name) const { return entry(name).version; }

std::size_t Repository::queue_depth(const std::string& name) const {
  return entry(name).queue.size();
}

std::vector<std::string> Repository::element_names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(name);
  return out;
}

}  // namespace decos::core
