#include "core/repository.hpp"

#include <utility>

#include "util/result.hpp"

namespace decos::core {

ElementId Repository::declare(const ElementDecl& decl) {
  const Symbol sym = intern_symbol(decl.name);
  if (const auto it = index_.find(sym); it != index_.end()) {
    if (entries_[it->second].decl.semantics != decl.semantics)
      throw SpecError("convertible element '" + decl.name +
                      "' declared with conflicting semantics");
    return it->second;
  }
  Entry e;
  e.decl = decl;
  e.name_sym = sym;
  if (decl.semantics == spec::InfoSemantics::kEvent) {
    e.ring.resize(decl.queue_capacity == 0 ? 1 : decl.queue_capacity);
  }
  const auto id = static_cast<ElementId>(entries_.size());
  entries_.push_back(std::move(e));
  index_.emplace(sym, id);
  return id;
}

std::optional<ElementId> Repository::id_of(Symbol name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<ElementId> Repository::id_of(const std::string& name) const {
  const auto sym = SymbolTable::global().lookup(name);
  if (!sym) return std::nullopt;
  return id_of(*sym);
}

ElementId Repository::resolve(const std::string& name) const {
  if (const auto id = id_of(name)) return *id;
  throw SpecError("convertible element '" + name + "' is not declared in the repository");
}

Repository::Entry& Repository::entry(ElementId id) {
  if (id >= entries_.size())
    throw SpecError("element id " + std::to_string(id) + " is not declared in the repository");
  return entries_[id];
}

const Repository::Entry& Repository::entry(ElementId id) const {
  if (id >= entries_.size())
    throw SpecError("element id " + std::to_string(id) + " is not declared in the repository");
  return entries_[id];
}

bool Repository::store(ElementId id, ElementInstance&& instance, Instant now) {
  Entry& e = entry(id);
  e.b_req = false;  // the request has been satisfied
  ++e.version;
  ++stores_;
  instance.observed_at = now;
  if (e.decl.semantics == spec::InfoSemantics::kState) {
    e.state_value = std::move(instance);
    e.t_update = now;
    return true;
  }
  if (e.ring_count >= e.ring.size()) {
    ++overflows_;
    return false;
  }
  e.ring[(e.ring_head + e.ring_count) % e.ring.size()] = std::move(instance);
  ++e.ring_count;
  return true;
}

bool Repository::store_copy(ElementId id, const ElementInstance& instance, Instant now) {
  Entry& e = entry(id);
  e.b_req = false;
  ++e.version;
  ++stores_;
  if (e.decl.semantics == spec::InfoSemantics::kState) {
    if (e.state_value) {
      // Copy-assign into the engaged optional: field vector and string
      // capacities of the previous image are reused.
      *e.state_value = instance;
    } else {
      e.state_value = instance;
    }
    e.state_value->observed_at = now;
    e.t_update = now;
    return true;
  }
  if (e.ring_count >= e.ring.size()) {
    ++overflows_;
    return false;
  }
  ElementInstance& slot = e.ring[(e.ring_head + e.ring_count) % e.ring.size()];
  slot = instance;  // slot storage (left by consume_into) is reused
  slot.observed_at = now;
  ++e.ring_count;
  return true;
}

bool Repository::temporally_accurate(ElementId id, Instant now) const {
  const Entry& e = entry(id);
  if (e.decl.semantics != spec::InfoSemantics::kState) return true;
  if (!e.state_value) return false;
  return now < e.t_update + e.decl.d_acc;
}

bool Repository::available(ElementId id, Instant now) const {
  const Entry& e = entry(id);
  if (e.decl.semantics == spec::InfoSemantics::kState)
    return e.state_value.has_value() && temporally_accurate(id, now);
  return e.ring_count != 0;
}

std::optional<ElementInstance> Repository::fetch(ElementId id, Instant now,
                                                 bool ignore_accuracy) {
  Entry& e = entry(id);
  if (e.decl.semantics == spec::InfoSemantics::kState) {
    if (!e.state_value) return std::nullopt;
    if (!ignore_accuracy && !temporally_accurate(id, now)) {
      ++stale_refused_;
      return std::nullopt;
    }
    return e.state_value;  // non-consuming copy
  }
  if (e.ring_count == 0) return std::nullopt;
  ElementInstance instance = std::move(e.ring[e.ring_head]);
  e.ring_head = (e.ring_head + 1) % e.ring.size();
  --e.ring_count;
  return instance;
}

const ElementInstance* Repository::fetch_state(ElementId id, Instant now, bool ignore_accuracy) {
  Entry& e = entry(id);
  if (!e.state_value) return nullptr;
  if (!ignore_accuracy && !temporally_accurate(id, now)) {
    ++stale_refused_;
    return nullptr;
  }
  return &*e.state_value;
}

bool Repository::consume_into(ElementId id, ElementInstance& out) {
  Entry& e = entry(id);
  if (e.ring_count == 0) return false;
  // Swap instead of move: `out`'s previous field storage ends up in the
  // ring slot, ready for the next store_copy to fill without allocating.
  std::swap(out, e.ring[e.ring_head]);
  e.ring_head = (e.ring_head + 1) % e.ring.size();
  --e.ring_count;
  return true;
}

const ElementInstance* Repository::peek(ElementId id) const {
  const Entry& e = entry(id);
  if (e.decl.semantics == spec::InfoSemantics::kState)
    return e.state_value ? &*e.state_value : nullptr;
  return e.ring_count == 0 ? nullptr : &e.ring[e.ring_head];
}

Duration Repository::horizon(std::span<const ElementId> ids, Instant now) const {
  Duration h = Duration::max();
  for (const ElementId id : ids) {
    const Entry& e = entry(id);
    if (e.decl.semantics != spec::InfoSemantics::kState) continue;
    const Duration remaining = (e.t_update + e.decl.d_acc) - now;
    if (remaining < h) h = remaining;
  }
  return h;
}

Duration Repository::horizon(std::span<const std::string> elements, Instant now) const {
  Duration h = Duration::max();
  for (const auto& name : elements) {
    const Entry& e = entry(resolve(name));
    if (e.decl.semantics != spec::InfoSemantics::kState) continue;
    const Duration remaining = (e.t_update + e.decl.d_acc) - now;
    if (remaining < h) h = remaining;
  }
  return h;
}

std::vector<std::string> Repository::element_names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.decl.name);
  return out;
}

}  // namespace decos::core
