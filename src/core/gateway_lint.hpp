// Bridge between the runtime gateway (core/) and the static deployment
// analyzer (lint/): mirrors a VirtualGateway's configuration -- link
// specs, renaming tables, repository overrides, dispatch parameters and
// the optional TDMA-schedule context -- into the analyzer's plain-data
// GatewayModel. The lint library stays free of core dependencies; core
// uses it for strict construction (GatewayConfig::strict_lint).
#pragma once

#include "core/gateway_xml.hpp"
#include "core/virtual_gateway.hpp"
#include "lint/lint.hpp"

namespace decos::core {

/// Analyzer view of `gateway`'s configuration. The model borrows the
/// gateway's link specs; it must not outlive the gateway (or the
/// schedule, when one is passed explicitly).
lint::GatewayModel make_lint_model(const VirtualGateway& gateway,
                                   const tt::TdmaSchedule* schedule = nullptr,
                                   std::array<std::optional<tt::VnId>, 2> link_vn = {});

/// Analyzer view of a parsed-but-not-constructed deployment document
/// (what `declint` runs on: analysis must not require building runtime
/// state). The model borrows the document's links and schedule.
lint::GatewayModel make_lint_model(const GatewayDoc& doc);

/// Convenience: full deployment analysis of a document.
lint::Report lint_gateway_doc(const GatewayDoc& doc);

}  // namespace decos::core
