// One side of a virtual gateway (paper Fig. 4, left/right halves).
//
// A GatewayLink owns the runtime ports towards one virtual network, the
// timed-automaton interpreters animating the link specification's
// temporal part, the element renaming table that resolves incoherent
// naming between the link's namespace and the gateway repository, and
// the compiled transfer plans finalize() derives from all of the above.
//
// Runtime lookups (port/interpreter/emitter by message) are keyed by
// interned Symbol; the string-taking accessors resolve through the
// global symbol table without inserting, so they cannot be tricked into
// growing it with unknown runtime names.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/transfer_plan.hpp"
#include "spec/link_spec.hpp"
#include "spec/message.hpp"
#include "ta/interpreter.hpp"
#include "util/symbol.hpp"
#include "vn/port.hpp"

namespace decos::core {

class VirtualGateway;

class GatewayLink {
 public:
  /// `side` is 0 (link A) or 1 (link B); used in diagnostics.
  GatewayLink(int side, spec::LinkSpec link_spec);

  GatewayLink(const GatewayLink&) = delete;
  GatewayLink& operator=(const GatewayLink&) = delete;

  int side() const { return side_; }
  const spec::LinkSpec& spec() const { return link_spec_; }

  // -- element renaming (Section III-A.1) ----------------------------------
  /// Map a link-namespace element name to its repository (canonical)
  /// name. Unmapped names pass through unchanged.
  void add_rename(const std::string& link_element, const std::string& repo_element);
  const std::string& repo_name(const std::string& link_element) const;
  /// Inverse lookup used at construction time.
  const std::string& link_name(const std::string& repo_element) const;
  /// Full renaming table (link-namespace name -> repository name); the
  /// static analyzer mirrors it into its deployment model.
  const std::map<std::string, std::string>& renames_to_repo() const { return rename_to_repo_; }

  // -- runtime ports ---------------------------------------------------
  /// Created by VirtualGateway::finalize() from the link spec's port
  /// specifications. Input ports receive from the VN; output ports hold
  /// constructed messages for the VN to transmit.
  vn::Port* port(Symbol message);
  vn::Port* port(const std::string& message_name);
  const std::vector<std::unique_ptr<vn::Port>>& ports() const { return ports_; }

  /// Per-message emit override: used when the VN side needs an active
  /// push (event-triggered VNs). Default: deposit into the output port.
  void set_emitter(const std::string& message_name,
                   std::function<void(const spec::MessageInstance&)> emitter);

  // -- interpreters ------------------------------------------------------
  /// Interpreter animating the automaton that governs receptions /
  /// transmissions of `message_name`, or nullptr if none.
  ta::Interpreter* recv_interpreter(Symbol message);
  ta::Interpreter* recv_interpreter(const std::string& message_name);
  ta::Interpreter* send_interpreter(Symbol message);
  ta::Interpreter* send_interpreter(const std::string& message_name);
  /// All interpreters, keyed by automaton name.
  const std::map<std::string, std::unique_ptr<ta::Interpreter>>& interpreters() const {
    return interpreters_;
  }

  // -- compiled plans ----------------------------------------------------
  /// Built by VirtualGateway::finalize(); empty before. Exposed read-only
  /// for tests/diagnostics (declint's DL007 re-derives the same binding).
  const std::unordered_map<Symbol, DissectPlan, SymbolHash>& dissect_plans() const {
    return dissect_plans_;
  }
  const std::vector<std::unique_ptr<ConstructPlan>>& construct_plans() const {
    return construct_plans_;
  }

  /// One input port bound to its compiled dissect resources (S29). The
  /// batched dispatch drain and the push-notify closures process an
  /// instance through these pointers instead of re-hashing the message
  /// Symbol into the plan and interpreter maps on every arrival.
  struct InputBinding {
    vn::Port* port = nullptr;
    const spec::PortSpec* port_spec = nullptr;
    DissectPlan* plan = nullptr;              // dissect plan of the port's message
    ta::Interpreter* recv_interpreter = nullptr;  // nullptr: no receive automaton
    Symbol message_sym;
    bool is_pull = false;
    bool is_state = false;
    /// Repository slots whose request variable makes a pull drain
    /// "wanted" under pull_only_on_request (resolved from the plan).
    std::vector<ElementId> pull_request_ids;
  };
  const std::vector<InputBinding>& input_bindings() const { return input_bindings_; }

 private:
  friend class VirtualGateway;

  int side_;
  spec::LinkSpec link_spec_;
  std::map<std::string, std::string> rename_to_repo_;
  std::map<std::string, std::string> rename_to_link_;
  std::vector<std::unique_ptr<vn::Port>> ports_;
  std::unordered_map<Symbol, vn::Port*, SymbolHash> port_by_message_;
  // Automata synthesized from port specs when the link spec supplies no
  // hand-written automaton for a message (unique_ptr: pointer stability).
  std::vector<std::unique_ptr<ta::AutomatonSpec>> synthesized_;
  std::map<std::string, std::unique_ptr<ta::Interpreter>> interpreters_;  // by automaton
  std::unordered_map<Symbol, ta::Interpreter*, SymbolHash> recv_by_message_;
  std::unordered_map<Symbol, ta::Interpreter*, SymbolHash> send_by_message_;
  std::unordered_map<Symbol, std::function<void(const spec::MessageInstance&)>, SymbolHash>
      emitters_;
  // Error-state bookkeeping for auto-restart, keyed by automaton name.
  std::map<std::string, Instant> error_since_;
  // Compiled transfer plans (finalize()). Construct plans live behind
  // unique_ptr for pointer stability (the by-message index and the
  // interpreter hooks hold raw pointers).
  std::unordered_map<Symbol, DissectPlan, SymbolHash> dissect_plans_;
  std::vector<std::unique_ptr<ConstructPlan>> construct_plans_;
  std::unordered_map<Symbol, ConstructPlan*, SymbolHash> construct_by_message_;
  // Input-port bindings in ports_ order (VirtualGateway::bind_inputs()).
  // Fully built before any notify closure captures into it, and never
  // resized afterwards, so element addresses are stable.
  std::vector<InputBinding> input_bindings_;
};

}  // namespace decos::core
