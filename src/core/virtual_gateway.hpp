// The virtual gateway: the paper's primary contribution (Sections III-IV).
//
// A (hidden) virtual gateway interconnects the virtual networks of two
// DASes. Per direction it (Fig. 4):
//   1. receives message instances at the input ports of one link,
//      guarded by that link's deterministic timed automata -- arrivals
//      violating the temporal specification drive the automaton into its
//      error state and the instance is discarded (error containment);
//   2. dissects admitted instances into convertible elements and stores
//      them in the gateway repository (selective redirection: elements
//      not flagged convertible are discarded here);
//   3. applies the transfer-semantics rules (event<->state conversion);
//   4. constructs outgoing messages from repository elements for the
//      other link -- the m! edge fires only when every constituting
//      element is available (state images temporally accurate, event
//      queues non-empty), otherwise the missing elements' request
//      variables are set;
//   5. resolves incoherent naming through per-link renaming tables.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gateway_link.hpp"
#include "core/repository.hpp"
#include "core/transfer_plan.hpp"
#include "lint/diagnostic.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "tt/schedule.hpp"

namespace decos::core {

/// Tuning and ablation knobs (DESIGN.md section 5).
struct GatewayConfig {
  /// Standalone dispatch period (TT output evaluation + timeout polls).
  Duration dispatch_period = Duration::milliseconds(1);
  /// If positive, an automaton that entered its error state is restarted
  /// this long after the violation; if zero it stays in error (all
  /// further traffic of that message is blocked).
  Duration restart_delay = Duration::zero();
  /// Ablation (E1): when false, incoming instances bypass the timed
  /// automata entirely -- the gateway forwards without temporal checks.
  bool temporal_filtering = true;
  /// Ablation (E4, design decision 4): when true, the temporal-accuracy
  /// check also runs at store time instead of only at construction time.
  bool accuracy_check_at_store = false;
  /// Pull-mode input ports are only drained when one of their convertible
  /// elements has been requested via b_req (Section IV-A).
  bool pull_only_on_request = false;
  /// Defaults for convertible-element meta data; override per element
  /// via set_element_config().
  Duration default_d_acc = Duration::milliseconds(50);
  std::size_t default_queue_capacity = 16;
  /// Strict construction: finalize() runs the static deployment analyzer
  /// (declint, src/lint/) over the configured gateway and throws
  /// SpecError with the full report when any rule reports an error.
  bool strict_lint = false;
  /// S29: dispatch() and the push-notify closures process arrivals
  /// through the precompiled input bindings (plan and interpreter bound
  /// per port, pull-request slots resolved, version sums cached on the
  /// repository store epoch). When false, every arrival walks the
  /// reference per-instance path through on_input()'s map lookups. The
  /// two paths produce byte-identical artifacts by construction
  /// (batched_dispatch_lockstep_test pins this); the knob exists for
  /// that test and for A/B measurement, not as a semantic ablation.
  bool batched_dispatch = true;
};

/// Forwarding statistics (inputs to E1/E2/E4/E10/E12).
struct GatewayStats {
  /// One-line human-readable summary (examples, operator diagnostics).
  std::string summary() const;

  std::uint64_t messages_in = 0;          // instances offered to the gateway
  std::uint64_t messages_admitted = 0;    // passed the temporal automata
  std::uint64_t blocked_temporal = 0;     // rejected by an automaton (incl. while in error)
  std::uint64_t blocked_value = 0;        // rejected by a value-domain filter
  std::uint64_t blocked_unknown = 0;      // message not in the link spec
  std::uint64_t elements_stored = 0;
  std::uint64_t element_overflows = 0;
  std::uint64_t conversions = 0;          // transfer-rule applications
  std::uint64_t messages_constructed = 0; // emitted towards the other VN
  std::uint64_t construction_held = 0;    // m! guard true but elements missing
  std::uint64_t construction_failed = 0;  // field mismatch between the two links
  std::uint64_t automaton_errors = 0;
  std::uint64_t restarts = 0;
};

class VirtualGateway {
 public:
  VirtualGateway(std::string name, spec::LinkSpec link_a, spec::LinkSpec link_b,
                 GatewayConfig config = {});

  const std::string& name() const { return name_; }
  GatewayLink& link(int side) { return side == 0 ? link_a_ : link_b_; }
  const GatewayLink& link(int side) const { return side == 0 ? link_a_ : link_b_; }
  GatewayLink& link_a() { return link_a_; }
  GatewayLink& link_b() { return link_b_; }
  const GatewayLink& link_a() const { return link_a_; }
  const GatewayLink& link_b() const { return link_b_; }
  Repository& repository() { return repository_; }
  const GatewayConfig& config() const { return config_; }
  GatewayStats& stats() { return stats_; }
  const GatewayStats& stats() const { return stats_; }
  sim::TraceRecorder& trace() { return trace_; }

  /// Hook the gateway into a system-wide observability host (normally the
  /// simulator's registry/collector; wired automatically by the wiring
  /// helpers and start()). Registers the gw.<name>.* instruments; further
  /// calls with the same registry are no-ops. The gateway stays fully
  /// functional unbound (standalone unit tests).
  void bind_observability(obs::MetricsRegistry& metrics, obs::TraceCollector& spans);

  /// Simulator form: binds the registry/collector as above and hooks
  /// the gateway's flow deadlines into the simulator's telemetry
  /// aggregator (immediately if telemetry is enabled, otherwise when
  /// the harness enables it).
  void bind_observability(sim::Simulator& sim);

  /// Register every gateway-crossing flow ("msgIn->msgOut", keyed like
  /// phase_breakdown) with the aggregator, carrying the tightest d_acc
  /// of the constructed message's required state elements as the flow's
  /// live deadline. Requires finalize(); plans are empty before it.
  void register_flows(obs::WindowAggregator& aggregator) const;

  /// Override repository meta data for one element (by repository name).
  /// Must be called before finalize().
  void set_element_config(const std::string& repo_element, spec::InfoSemantics semantics,
                          Duration d_acc, std::size_t queue_capacity = 16);
  const std::map<std::string, ElementDecl>& element_overrides() const {
    return element_overrides_;
  }

  /// Physical-network context for the static analyzer's bandwidth rules
  /// (DL003): the TDMA schedule of the core network and the VnId each
  /// link's virtual network rides on. Optional; set before finalize()
  /// so a strict gateway is checked against its schedule.
  void set_lint_context(tt::TdmaSchedule schedule,
                        std::array<std::optional<tt::VnId>, 2> link_vn);
  const std::optional<tt::TdmaSchedule>& lint_schedule() const { return lint_schedule_; }
  const std::array<std::optional<tt::VnId>, 2>& lint_vn() const { return lint_vn_; }

  /// Run the static deployment analyzer (declint) over this gateway's
  /// configuration. Usable before or after finalize(); strict mode calls
  /// it from finalize() and rejects deployments with errors.
  lint::Report lint() const;

  /// Build ports, repository declarations and interpreters from the two
  /// link specs. Call once, after renames/element configs, before use.
  void finalize();
  bool finalized() const { return finalized_; }

  // -- runtime entry points ----------------------------------------------
  /// Offer an incoming instance on `side`. Wired automatically to the
  /// link's push input ports by finalize(); call directly in tests.
  void on_input(int side, const spec::MessageInstance& instance, Instant now);

  /// Periodic service: drain pull inputs, poll automata (timeout
  /// detection), auto-restart, and attempt TT output constructions.
  void dispatch(Instant now);

  /// Schedule dispatch() every config.dispatch_period on `simulator`.
  void start(sim::Simulator& simulator);

  /// The remaining temporal-accuracy horizon of outgoing message
  /// `message_name` on `side` (Eq. (2)); exposed for guards/tests.
  Duration horizon(int side, const std::string& message_name, Instant now) const;

  /// Diagnosis hook: health of the traffic on `side` as judged by the
  /// temporal automata. kHealthy = all automata in non-error locations;
  /// kError = at least one automaton of the side sits in its error state
  /// (the producing DAS violated its temporal specification).
  enum class LinkHealth { kHealthy, kError };
  LinkHealth link_health(int side) const;
  /// Automaton names currently in their error state on `side`.
  std::vector<std::string> failed_automata(int side) const;

 private:
  class ConversionEnv;

  /// Repository names of the convertible elements constituting `message`
  /// as seen from `side`'s namespace (cold paths: lint, fallbacks).
  std::vector<std::string> required_elements(const GatewayLink& link,
                                             const spec::MessageSpec& message) const;

  /// finalize() stage 2: resolve every link-spec name (renames, elements,
  /// fields, rule targets) into compiled dissect/rule/construct plans.
  /// A name that does not resolve is a SpecError here, not at runtime.
  void compile_plans();

  /// finalize() stage 3: build the per-port input bindings and install
  /// the push-notify closures (which route through the bindings when
  /// config_.batched_dispatch and fall back to on_input otherwise).
  void bind_inputs();

  /// Shared admission body of on_input(): temporal automaton, value
  /// filter, dissect-and-store. Returns true iff the instance was
  /// admitted (callers then run the event-triggered output pass).
  bool process_input(GatewayLink& link, DissectPlan& plan, ta::Interpreter* recv_interpreter,
                     const spec::MessageInstance& instance, Instant now);

  /// Batched-path arrival: process `instance` through its precompiled
  /// binding; falls back to on_input() when the deposited instance is
  /// not the port's bound message (deposits are not type-checked).
  void drain_input(GatewayLink& link, const GatewayLink::InputBinding& binding,
                   const spec::MessageInstance& instance, Instant now);

  void dissect_and_store(GatewayLink& link, DissectPlan& plan,
                         const spec::MessageInstance& instance, Instant now);
  void apply_rule(RulePlan& plan, const ElementInstance& source, Instant now);
  bool can_construct(const ConstructPlan& plan, Instant now) const;
  bool can_construct(const GatewayLink& link, Symbol message, Instant now) const;
  void request_missing(GatewayLink& link, Symbol message, Instant now);
  void try_outputs(GatewayLink& link, Instant now, bool tt_outputs, bool et_outputs);
  bool construct_and_emit(GatewayLink& link, ConstructPlan& plan, Instant now);
  void note_error(GatewayLink& link, const std::string& message_name, Instant now);
  void maybe_restart(GatewayLink& link, Instant now);
  void start_tick(sim::Simulator& simulator);

  std::string name_;
  GatewayConfig config_;
  sim::PeriodicTask tick_task_;  // standalone dispatch tick (start())
  GatewayLink link_a_;
  GatewayLink link_b_;
  Repository repository_;
  GatewayStats stats_;
  sim::TraceRecorder trace_;
  std::map<std::string, ElementDecl> element_overrides_;
  // Compiled transfer-rule plans, owned here and bound by pointer into
  // the dissect items of every message carrying the rule's source
  // element (the source need not be a declared repository slot).
  std::unordered_map<Symbol, std::vector<std::unique_ptr<RulePlan>>, SymbolHash> rule_plans_;
  // Interned span-track label "gw:<name>" (hot-path span emission).
  Symbol track_sym_;
  // Current operation instant, visible to the interpreter hooks (the
  // gateway is single-threaded on the simulation loop).
  Instant now_;
  // Observability host (null until bind_observability); instruments are
  // raw pointers into the registry-owned deque, stable for its lifetime.
  obs::TraceCollector* spans_ = nullptr;
  obs::Histogram* dissect_ns_ = nullptr;       // gw.<name>.dissect_ns (host time)
  obs::Histogram* construct_ns_ = nullptr;     // gw.<name>.construct_ns (host time)
  obs::Histogram* staleness_ns_ = nullptr;     // gw.<name>.staleness_ns (sim time)
  obs::Counter* forwarded_metric_ = nullptr;   // gw.<name>.forwarded
  obs::Counter* suppressed_temporal_ = nullptr;
  obs::Counter* suppressed_value_ = nullptr;
  obs::Counter* suppressed_unknown_ = nullptr;
  obs::Counter* suppressed_construction_ = nullptr;
  // Optional physical-network context for lint() (see set_lint_context).
  std::optional<tt::TdmaSchedule> lint_schedule_;
  std::array<std::optional<tt::VnId>, 2> lint_vn_{};
  bool finalized_ = false;
};

}  // namespace decos::core
