#include "core/virtual_gateway.hpp"

#include <algorithm>
#include <set>

namespace decos::core {

namespace {

// Interned spellings of the implicit time identifier (shared with the
// automaton interpreter's environment).
Symbol t_now_sym() {
  static const Symbol sym = intern_symbol("t_now");
  return sym;
}
Symbol tnow_sym() {
  static const Symbol sym = intern_symbol("tnow");
  return sym;
}

}  // namespace

// ---------------------------------------------------------------------------
// Transfer-semantics evaluation environment: identifiers resolve first to
// the derived element's current fields, then to the source instance's
// fields, then to the link parameters. Expression identifiers arrive
// pre-interned, so the Symbol overloads never compare strings.
// ---------------------------------------------------------------------------
class VirtualGateway::ConversionEnv final : public ta::Environment {
 public:
  ConversionEnv(ElementInstance& target, const ElementInstance& source,
                const spec::LinkSpec& link_spec, Instant now)
      : target_{target}, source_{source}, link_spec_{link_spec}, now_{now} {}

  ta::Value get(Symbol sym, const std::string& name) const override {
    if (sym == t_now_sym() || sym == tnow_sym()) return ta::Value{now_};
    if (const ta::Value* v = target_.field(sym); v != nullptr) return *v;
    if (const ta::Value* v = source_.field(sym); v != nullptr) return *v;
    if (link_spec_.has_parameter(name)) return link_spec_.parameter(name);
    throw SpecError("transfer semantics: unknown identifier '" + name + "'");
  }

  ta::Value get(const std::string& name) const override {
    return get(intern_symbol(name), name);
  }

  void set(Symbol sym, const std::string&, const ta::Value& value) override {
    target_.set_field(sym, value);
  }

  void set(const std::string& name, const ta::Value& value) override {
    target_.set_field(name, value);
  }

  ta::Value call(const std::string& fn, const std::vector<ta::Value>& args) override {
    if (fn == "min" && args.size() == 2)
      return args[0].as_real() <= args[1].as_real() ? args[0] : args[1];
    if (fn == "max" && args.size() == 2)
      return args[0].as_real() >= args[1].as_real() ? args[0] : args[1];
    if (fn == "abs" && args.size() == 1) {
      if (args[0].is_real())
        return ta::Value{args[0].as_real() < 0 ? -args[0].as_real() : args[0].as_real()};
      return ta::Value{args[0].as_int() < 0 ? -args[0].as_int() : args[0].as_int()};
    }
    throw SpecError("transfer semantics: unknown function '" + fn + "'");
  }

 private:
  ElementInstance& target_;
  const ElementInstance& source_;
  const spec::LinkSpec& link_spec_;
  Instant now_;
};

// ---------------------------------------------------------------------------
// Value-domain filter environment: identifiers resolve to the fields of
// the arriving instance (searched across its elements, declaration
// order), then to the link parameters.
// ---------------------------------------------------------------------------
namespace {
class FilterEnv final : public ta::Environment {
 public:
  FilterEnv(const spec::MessageSpec& message_spec, const spec::MessageInstance& instance,
            const spec::LinkSpec& link_spec, Instant now)
      : message_spec_{message_spec}, instance_{instance}, link_spec_{link_spec}, now_{now} {}

  ta::Value get(Symbol sym, const std::string& name) const override {
    if (sym == t_now_sym() || sym == tnow_sym()) return ta::Value{now_};
    for (std::size_t ei = 0; ei < message_spec_.elements().size(); ++ei) {
      const spec::ElementSpec& es = message_spec_.elements()[ei];
      for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
        if (es.fields[fi].sym() != sym) continue;
        if (ei < instance_.elements().size() && fi < instance_.elements()[ei].fields.size())
          return instance_.elements()[ei].fields[fi];
      }
    }
    if (link_spec_.has_parameter(name)) return link_spec_.parameter(name);
    throw SpecError("value filter: unknown identifier '" + name + "'");
  }

  ta::Value get(const std::string& name) const override {
    return get(intern_symbol(name), name);
  }

  void set(const std::string&, const ta::Value&) override {
    throw SpecError("value filters cannot assign");
  }
  ta::Value call(const std::string& fn, const std::vector<ta::Value>& args) override {
    if (fn == "abs" && args.size() == 1) {
      if (args[0].is_real())
        return ta::Value{args[0].as_real() < 0 ? -args[0].as_real() : args[0].as_real()};
      return ta::Value{args[0].as_int() < 0 ? -args[0].as_int() : args[0].as_int()};
    }
    throw SpecError("value filter: unknown function '" + fn + "'");
  }

 private:
  const spec::MessageSpec& message_spec_;
  const spec::MessageInstance& instance_;
  const spec::LinkSpec& link_spec_;
  Instant now_;
};
}  // namespace

// ---------------------------------------------------------------------------

std::string GatewayStats::summary() const {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "in=%llu admitted=%llu forwarded=%llu blocked(temporal=%llu value=%llu "
                "unknown=%llu) stored=%llu overflows=%llu conversions=%llu held=%llu "
                "failed=%llu errors=%llu restarts=%llu",
                static_cast<unsigned long long>(messages_in),
                static_cast<unsigned long long>(messages_admitted),
                static_cast<unsigned long long>(messages_constructed),
                static_cast<unsigned long long>(blocked_temporal),
                static_cast<unsigned long long>(blocked_value),
                static_cast<unsigned long long>(blocked_unknown),
                static_cast<unsigned long long>(elements_stored),
                static_cast<unsigned long long>(element_overflows),
                static_cast<unsigned long long>(conversions),
                static_cast<unsigned long long>(construction_held),
                static_cast<unsigned long long>(construction_failed),
                static_cast<unsigned long long>(automaton_errors),
                static_cast<unsigned long long>(restarts));
  return buf;
}

VirtualGateway::VirtualGateway(std::string name, spec::LinkSpec link_a, spec::LinkSpec link_b,
                               GatewayConfig config)
    : name_{std::move(name)},
      config_{config},
      link_a_{0, std::move(link_a)},
      link_b_{1, std::move(link_b)},
      track_sym_{intern_symbol("gw:" + name_)} {}

void VirtualGateway::bind_observability(obs::MetricsRegistry& metrics, obs::TraceCollector& spans) {
  spans_ = &spans;
  if (forwarded_metric_ != nullptr) return;  // instruments already registered
  const std::string prefix = "gw." + name_ + ".";
  dissect_ns_ = &metrics.histogram(prefix + "dissect_ns", obs::Determinism::kHostTime);
  construct_ns_ = &metrics.histogram(prefix + "construct_ns", obs::Determinism::kHostTime);
  staleness_ns_ = &metrics.histogram(prefix + "staleness_ns");
  forwarded_metric_ = &metrics.counter(prefix + "forwarded");
  suppressed_temporal_ = &metrics.counter(prefix + "suppressed.temporal");
  suppressed_value_ = &metrics.counter(prefix + "suppressed.value");
  suppressed_unknown_ = &metrics.counter(prefix + "suppressed.unknown");
  suppressed_construction_ = &metrics.counter(prefix + "suppressed.construction");
}

void VirtualGateway::bind_observability(sim::Simulator& sim) {
  bind_observability(sim.metrics(), sim.spans());
  sim.on_telemetry([this](obs::WindowAggregator& aggregator) { register_flows(aggregator); });
}

void VirtualGateway::register_flows(obs::WindowAggregator& aggregator) const {
  const GatewayLink* sides[2][2] = {{&link_a_, &link_b_}, {&link_b_, &link_a_}};
  for (const auto& [out_link, in_link] : sides) {
    for (const auto& plan : out_link->construct_plans()) {
      // Tightest temporal-accuracy interval over the message's required
      // state elements: the end-to-end deadline of every flow feeding
      // this construction.
      Duration d_acc = Duration::max();
      bool has_state = false;
      for (const ElementId id : plan->required) {
        const ElementDecl& decl = repository_.decl_of(id);
        if (decl.semantics != spec::InfoSemantics::kState) continue;
        has_state = true;
        if (decl.d_acc < d_acc) d_acc = decl.d_acc;
      }
      if (!has_state) continue;  // pure event flows have no d_acc deadline
      const std::string out_name = symbol_name(plan->message_sym);
      // Every incoming message on the opposite link that feeds one of
      // the required slots (directly or through a transfer rule) roots
      // a flow into this construction.
      for (const auto& [sym, dissect] : in_link->dissect_plans()) {
        bool feeds = false;
        for (const DissectItem& item : dissect.items) {
          if (item.needed &&
              std::find(plan->required.begin(), plan->required.end(), item.repo_id) !=
                  plan->required.end()) {
            feeds = true;
            break;
          }
          for (const RulePlan* rule : item.rules) {
            if (std::find(plan->required.begin(), plan->required.end(), rule->target_id) !=
                plan->required.end()) {
              feeds = true;
              break;
            }
          }
          if (feeds) break;
        }
        if (!feeds) continue;
        const std::string& in_name = symbol_name(dissect.message_sym);
        const std::string key = in_name == out_name ? in_name : in_name + "->" + out_name;
        aggregator.set_deadline(key, d_acc);
      }
    }
  }
}

void VirtualGateway::set_element_config(const std::string& repo_element,
                                        spec::InfoSemantics semantics, Duration d_acc,
                                        std::size_t queue_capacity) {
  if (finalized_) throw SpecError("set_element_config after finalize()");
  element_overrides_[repo_element] =
      ElementDecl{repo_element, semantics, d_acc, queue_capacity};
}

std::vector<std::string> VirtualGateway::required_elements(
    const GatewayLink& link, const spec::MessageSpec& message) const {
  std::vector<std::string> out;
  for (const auto* es : message.convertible_elements()) out.push_back(link.repo_name(es->name));
  return out;
}

void VirtualGateway::finalize() {
  if (finalized_) throw SpecError("gateway '" + name_ + "' finalized twice");
  if (config_.strict_lint) {
    const lint::Report report = lint();
    if (!report.clean())
      throw SpecError("gateway '" + name_ + "' rejected by strict lint (" +
                      std::to_string(report.error_count()) + " error(s)):\n" + report.format());
  }
  finalized_ = true;

  const auto declare_element = [this](const std::string& repo_element,
                                      spec::InfoSemantics semantics) {
    const auto it = element_overrides_.find(repo_element);
    if (it != element_overrides_.end()) {
      repository_.declare(it->second);
      return;
    }
    ElementDecl decl;
    decl.name = repo_element;
    decl.semantics = semantics;
    decl.d_acc = config_.default_d_acc;
    decl.queue_capacity = config_.default_queue_capacity;
    repository_.declare(decl);
  };

  // An element's information semantics are set by the side that
  // *produces* it (input ports and transfer rules); output ports only
  // contribute a fallback declaration when nobody produces the element.
  std::vector<std::pair<std::string, spec::InfoSemantics>> output_fallbacks;

  for (GatewayLink* link : {&link_a_, &link_b_}) {
    // 1. Ports + repository declarations for incoming convertible elements.
    for (const spec::PortSpec& port_spec : link->spec().ports()) {
      const spec::MessageSpec* ms = link->spec().message(port_spec.message);
      link->ports_.push_back(std::make_unique<vn::Port>(port_spec));
      vn::Port* port = link->ports_.back().get();
      link->port_by_message_[intern_symbol(port_spec.message)] = port;

      for (const auto* es : ms->convertible_elements()) {
        if (port_spec.direction == spec::DataDirection::kInput) {
          declare_element(link->repo_name(es->name), port_spec.semantics);
        } else {
          output_fallbacks.emplace_back(link->repo_name(es->name), port_spec.semantics);
        }
      }

      // Push-notify closures are installed by bind_inputs() once the
      // compiled plans (and thus the input bindings) exist.
    }

    // 2. Transfer-rule targets.
    for (const spec::TransferRule& rule : link->spec().transfer_rules()) {
      spec::InfoSemantics semantics = spec::InfoSemantics::kState;
      for (const auto& f : rule.fields)
        if (f.semantics == "event") semantics = spec::InfoSemantics::kEvent;
      declare_element(link->repo_name(rule.target), semantics);
    }
  }
  for (const auto& [name, semantics] : output_fallbacks) {
    if (!repository_.is_declared(name)) declare_element(name, semantics);
  }

  // 3. Interpreters: hand-written automata from the link specs first...
  for (GatewayLink* link : {&link_a_, &link_b_}) {
    GatewayLink& l = *link;
    const auto hook_up = [this, &l](const ta::AutomatonSpec& automaton) {
      ta::InterpreterHooks hooks;
      hooks.can_send = [this, &l](Symbol msg) { return can_construct(l, msg, now_); };
      hooks.request_missing = [this, &l](Symbol msg) { request_missing(l, msg, now_); };
      hooks.resolve = [&l](const std::string& id) -> ta::Value {
        if (l.spec().has_parameter(id)) return l.spec().parameter(id);
        throw SpecError("automaton identifier '" + id + "' is not a link parameter");
      };
      hooks.invoke = [this, &l](const std::string& fn,
                                const std::vector<ta::Value>& args) -> ta::Value {
        if (fn == "horizon" && args.size() == 1)
          return ta::Value{horizon(l.side(), args[0].as_string(), now_)};
        if (fn == "requ" && args.size() == 1) {
          const spec::MessageSpec* ms = l.spec().message(args[0].as_string());
          if (ms == nullptr) return ta::Value{false};
          for (const auto& name : required_elements(l, *ms)) {
            const auto id = repository_.id_of(name);
            if (id && repository_.requested(*id)) return ta::Value{true};
          }
          return ta::Value{false};
        }
        throw SpecError("unknown automaton function '" + fn + "'");
      };
      auto interpreter = std::make_unique<ta::Interpreter>(automaton, std::move(hooks));
      ta::Interpreter* raw = interpreter.get();
      l.interpreters_[automaton.name()] = std::move(interpreter);
      for (const auto& edge : automaton.edges()) {
        if (edge.action == ta::ActionKind::kReceive) l.recv_by_message_[edge.message_sym] = raw;
        if (edge.action == ta::ActionKind::kSend) l.send_by_message_[edge.message_sym] = raw;
      }
    };

    for (const ta::AutomatonSpec& automaton : l.spec().automata()) hook_up(automaton);

    // ...then synthesized automata from the port specifications for
    // messages the spec's temporal part does not cover.
    for (const spec::PortSpec& port_spec : l.spec().ports()) {
      if (port_spec.direction == spec::DataDirection::kInput) {
        if (l.recv_by_message_.count(intern_symbol(port_spec.message)) != 0) continue;
        // Interarrival bounds: explicit tmin/tmax for ET ports; for TT
        // ports the period is a-priori knowledge, so receptions faster
        // than period/2 or silences beyond 2*period violate the spec.
        Duration tmin = port_spec.min_interarrival;
        Duration tmax = port_spec.max_interarrival;
        if (port_spec.is_time_triggered()) {
          if (tmin.is_zero()) tmin = port_spec.period / 2;
          if (tmax == Duration::max()) tmax = port_spec.period * 2;
        }
        const bool bounded = tmin > Duration::zero() || tmax < Duration::max();
        auto automaton = std::make_unique<ta::AutomatonSpec>(
            bounded ? ta::make_interarrival_receive("auto_recv_" + port_spec.message,
                                                    port_spec.message, tmin, tmax)
                    : ta::make_unconstrained_receive("auto_recv_" + port_spec.message,
                                                     port_spec.message));
        hook_up(*automaton);
        l.synthesized_.push_back(std::move(automaton));
      } else {
        if (l.send_by_message_.count(intern_symbol(port_spec.message)) != 0) continue;
        auto automaton = std::make_unique<ta::AutomatonSpec>(
            port_spec.is_time_triggered()
                ? ta::make_periodic_send("auto_send_" + port_spec.message, port_spec.message,
                                         port_spec.period)
                : ta::make_unconstrained_send("auto_send_" + port_spec.message,
                                              port_spec.message));
        hook_up(*automaton);
        l.synthesized_.push_back(std::move(automaton));
      }
    }
  }

  // 4. Resolve every remaining name into the compiled transfer plans,
  //    then bind the input ports to them.
  compile_plans();
  bind_inputs();
}

void VirtualGateway::compile_plans() {
  // Selective redirection (paper Section III-B.1): the repository only
  // retains elements that some outgoing message is constructed from.
  // Elements consumed solely by transfer rules are converted in flight;
  // everything else is discarded at dissection.
  std::set<std::string> needed;
  for (GatewayLink* link : {&link_a_, &link_b_}) {
    for (const spec::PortSpec& port_spec : link->spec().ports()) {
      if (port_spec.direction != spec::DataDirection::kOutput) continue;
      const spec::MessageSpec* ms = link->spec().message(port_spec.message);
      for (const auto& name : required_elements(*link, *ms)) needed.insert(name);
    }
  }

  // Rule plans: one per transfer rule, owned by the gateway and indexed
  // by the interned *repository* name of the rule's source element.
  for (GatewayLink* link : {&link_a_, &link_b_}) {
    for (const spec::TransferRule& rule : link->spec().transfer_rules()) {
      auto plan = std::make_unique<RulePlan>();
      plan->rule = &rule;
      plan->owner = &link->spec();
      const std::string& target_repo = link->repo_name(rule.target);
      const auto target_id = repository_.id_of(target_repo);
      if (!target_id)
        throw SpecError("transfer rule target '" + target_repo +
                        "' did not resolve to a repository slot");
      plan->target_id = *target_id;
      plan->field_syms.reserve(rule.fields.size());
      for (const auto& f : rule.fields) plan->field_syms.push_back(intern_symbol(f.name));
      rule_plans_[intern_symbol(link->repo_name(rule.source))].push_back(std::move(plan));
    }
  }

  for (GatewayLink* link : {&link_a_, &link_b_}) {
    GatewayLink& l = *link;

    // Dissect plans: one per message of the link spec (any of them may
    // arrive at on_input; ports are not a precondition for dissection).
    for (const spec::MessageSpec& ms : l.spec().messages()) {
      DissectPlan plan;
      plan.message = &ms;
      plan.message_sym = ms.name_sym();
      plan.filter = l.spec().filter_for(ms.name());
      for (const spec::ElementSpec* es : ms.convertible_elements()) {
        DissectItem item;
        item.element = es;
        item.element_sym = es->sym();
        const std::string& repo = l.repo_name(es->name);
        item.repo_sym = intern_symbol(repo);
        item.needed = needed.count(repo) != 0;
        if (const auto id = repository_.id_of(item.repo_sym)) item.repo_id = *id;
        if (item.needed && item.repo_id == kInvalidElementId)
          throw SpecError("convertible element '" + repo +
                          "' is needed but did not resolve to a repository slot");
        if (const auto rit = rule_plans_.find(item.repo_sym); rit != rule_plans_.end())
          for (const auto& rp : rit->second) item.rules.push_back(rp.get());
        item.scratch.fields.reserve(es->fields.size());
        for (const spec::FieldSpec& fs : es->fields)
          item.scratch.fields.emplace_back(fs.sym(), ta::Value{});
        plan.items.push_back(std::move(item));
      }
      l.dissect_plans_.emplace(plan.message_sym, std::move(plan));
    }

    // Construct plans: one per output port.
    for (const spec::PortSpec& port_spec : l.spec().ports()) {
      if (port_spec.direction != spec::DataDirection::kOutput) continue;
      const spec::MessageSpec* ms = l.spec().message(port_spec.message);
      auto plan = std::make_unique<ConstructPlan>();
      plan->port_spec = &port_spec;
      plan->message = ms;
      plan->message_sym = ms->name_sym();
      plan->interpreter = l.send_interpreter(plan->message_sym);
      plan->port = l.port(plan->message_sym);
      plan->time_triggered = port_spec.is_time_triggered();
      plan->scratch = spec::make_instance(*ms);

      for (std::size_t ei = 0; ei < ms->elements().size(); ++ei) {
        const spec::ElementSpec& es = ms->elements()[ei];
        if (!es.convertible) continue;
        ConstructItem item;
        item.element = &es;
        item.element_sym = es.sym();
        const std::string& repo = l.repo_name(es.name);
        item.repo_sym = intern_symbol(repo);
        const auto id = repository_.id_of(item.repo_sym);
        if (!id)
          throw SpecError("output element '" + repo +
                          "' of message '" + ms->name() +
                          "' did not resolve to a repository slot");
        item.repo_id = *id;
        item.is_event = repository_.decl_of(*id).semantics == spec::InfoSemantics::kEvent;
        if (item.is_event) plan->consumes_events = true;
        item.instance_element_index = static_cast<std::uint32_t>(ei);
        for (std::size_t fi = 0; fi < es.fields.size(); ++fi) {
          const spec::FieldSpec& fs = es.fields[fi];
          if (fs.is_static()) continue;
          item.fields.push_back(
              ConstructFieldBind{static_cast<std::uint32_t>(fi), fs.sym()});
        }
        plan->required.push_back(item.repo_id);
        plan->items.push_back(std::move(item));
      }

      ConstructPlan* raw = plan.get();
      l.construct_plans_.push_back(std::move(plan));
      l.construct_by_message_[raw->message_sym] = raw;
      // Pre-create this message's emitter slot so emission tests one
      // function object instead of hashing into the map. set_emitter()
      // assigns into the same node, so the pointer observes later
      // overrides; unordered_map values are address-stable.
      raw->emitter = &l.emitters_[raw->message_sym];
    }
  }
}

void VirtualGateway::bind_inputs() {
  for (GatewayLink* link : {&link_a_, &link_b_}) {
    GatewayLink& l = *link;
    l.input_bindings_.clear();
    for (const auto& port_ptr : l.ports_) {
      GatewayLink::InputBinding binding;
      binding.port = port_ptr.get();
      binding.port_spec = &port_ptr->spec();
      binding.message_sym = intern_symbol(binding.port_spec->message);
      binding.is_pull = binding.port_spec->direction == spec::DataDirection::kInput &&
                        binding.port_spec->interaction == spec::Interaction::kPull;
      binding.is_state = binding.port_spec->semantics == spec::InfoSemantics::kState;
      if (const auto it = l.dissect_plans_.find(binding.message_sym);
          it != l.dissect_plans_.end()) {
        binding.plan = &it->second;
        binding.recv_interpreter = l.recv_interpreter(binding.message_sym);
        for (const DissectItem& item : binding.plan->items)
          if (item.repo_id != kInvalidElementId)
            binding.pull_request_ids.push_back(item.repo_id);
      }
      l.input_bindings_.push_back(std::move(binding));
    }
    // Install the push-notify closures only after the binding vector is
    // complete: the closures capture element addresses.
    for (GatewayLink::InputBinding& binding : l.input_bindings_) {
      if (binding.port_spec->direction != spec::DataDirection::kInput ||
          binding.port_spec->interaction != spec::Interaction::kPush)
        continue;
      const int side = l.side();
      binding.port->set_notify([this, side, &l, &binding](vn::Port& p) {
        // Deposit just happened; its instant is the port's last update.
        const Instant now = p.last_update().value_or(Instant::origin());
        if (p.spec().semantics == spec::InfoSemantics::kState) {
          // Borrow the freshest image; the gateway copies what it keeps.
          if (const spec::MessageInstance* m = p.peek()) {
            if (config_.batched_dispatch)
              drain_input(l, binding, *m, now);
            else
              on_input(side, *m, now);
          }
        } else if (const spec::MessageInstance* m = p.peek()) {
          // Consume before processing (as the old read() did); the
          // dropped slot's contents stay intact until the ring wraps.
          p.drop_front();
          if (config_.batched_dispatch)
            drain_input(l, binding, *m, now);
          else
            on_input(side, *m, now);
        }
      });
    }
  }
}

void VirtualGateway::on_input(int side, const spec::MessageInstance& instance, Instant now) {
  if (!finalized_) throw SpecError("gateway '" + name_ + "' used before finalize()");
  now_ = now;
  GatewayLink& link = this->link(side);
  ++stats_.messages_in;

  const auto plan_it = link.dissect_plans_.find(instance.message_sym());
  if (plan_it == link.dissect_plans_.end()) {
    ++stats_.blocked_unknown;
    if (suppressed_unknown_ != nullptr) suppressed_unknown_->add();
    DECOS_TRACE(trace_, now, sim::TraceKind::kGatewayBlocked, instance.message(),
                "unknown message");
    return;
  }
  DissectPlan& plan = plan_it->second;
  if (!process_input(link, plan, link.recv_interpreter(plan.message_sym), instance, now)) return;

  // Event-driven forwarding: freshly stored elements may enable
  // event-triggered outputs on either side immediately.
  try_outputs(link_a_, now, /*tt_outputs=*/false, /*et_outputs=*/true);
  try_outputs(link_b_, now, /*tt_outputs=*/false, /*et_outputs=*/true);
}

bool VirtualGateway::process_input(GatewayLink& link, DissectPlan& plan,
                                   ta::Interpreter* recv_interpreter,
                                   const spec::MessageInstance& instance, Instant now) {
  if (config_.temporal_filtering && recv_interpreter != nullptr) {
    ta::Interpreter* interpreter = recv_interpreter;
    maybe_restart(link, now);
    // Run due time-triggered edges (e.g. tmax timeouts) before the
    // arrival so the automaton judges it from the correct location.
    if (!interpreter->in_error() && interpreter->poll(now) > 0 && interpreter->in_error())
      note_error(link, interpreter->spec().name(), now);
    const ta::FireResult result = interpreter->on_receive(plan.message_sym, now);
    if (result != ta::FireResult::kFired) {
      ++stats_.blocked_temporal;
      if (suppressed_temporal_ != nullptr) suppressed_temporal_->add();
      if (interpreter->in_error()) note_error(link, interpreter->spec().name(), now);
      DECOS_TRACE(trace_, now, sim::TraceKind::kGatewayBlocked, instance.message(),
                  "temporal violation (side " + std::to_string(link.side()) + ")");
      return false;
    }
  }

  // Value-domain filtering (Section III-B.1): the filter predicate is
  // evaluated on the interface state -- the instance's field values.
  if (plan.filter != nullptr) {
    FilterEnv env{*plan.message, instance, link.spec(), now};
    if (!(*plan.filter)->evaluate(env).as_bool()) {
      ++stats_.blocked_value;
      if (suppressed_value_ != nullptr) suppressed_value_->add();
      DECOS_TRACE(trace_, now, sim::TraceKind::kGatewayBlocked, instance.message(),
                  "value filter (side " + std::to_string(link.side()) + ")");
      return false;
    }
  }

  ++stats_.messages_admitted;
  dissect_and_store(link, plan, instance, now);
  return true;
}

void VirtualGateway::drain_input(GatewayLink& link, const GatewayLink::InputBinding& binding,
                                 const spec::MessageInstance& instance, Instant now) {
  if (binding.plan == nullptr || instance.message_sym() != binding.plan->message_sym) {
    // The deposited instance is not the port's bound message (deposits
    // are not type-checked): resolve it the reference way.
    on_input(link.side(), instance, now);
    return;
  }
  now_ = now;
  ++stats_.messages_in;
  if (!process_input(link, *binding.plan, binding.recv_interpreter, instance, now)) return;
  try_outputs(link_a_, now, /*tt_outputs=*/false, /*et_outputs=*/true);
  try_outputs(link_b_, now, /*tt_outputs=*/false, /*et_outputs=*/true);
}

void VirtualGateway::dissect_and_store(GatewayLink& link, DissectPlan& plan,
                                       const spec::MessageInstance& instance, Instant now) {
  (void)link;
  obs::ScopedTimer timer{dissect_ns_};
  std::uint64_t dissect_span = 0;
  if (spans_ != nullptr && spans_->enabled() && instance.trace_id() != 0) {
    dissect_span = spans_->emit(instance.trace_id(), instance.span_id(), obs::Phase::kDissect,
                                track_sym_, plan.message_sym, now, now);
  }
  for (DissectItem& item : plan.items) {
    // Selective redirection: elements nothing consumes are dropped here.
    if (!item.needed && item.rules.empty()) continue;
    const spec::ElementValue* ev = instance.element(item.element_sym);
    if (ev == nullptr) continue;  // structurally absent; decode would have supplied it

    ElementInstance& scratch = item.scratch;
    if (ev->fields.size() < scratch.fields.size()) {
      // Malformed short instance: store only the supplied fields so a
      // later construction fails loudly instead of reusing stale values
      // silently (cold path; may allocate).
      ElementInstance partial;
      partial.observed_at = now;
      if (dissect_span != 0) {
        partial.trace_id = instance.trace_id();
        partial.span_id = dissect_span;
      }
      for (std::size_t i = 0; i < ev->fields.size(); ++i)
        partial.fields.emplace_back(scratch.fields[i].first, ev->fields[i]);
      if (item.needed) {
        if (repository_.store_copy(item.repo_id, partial, now))
          ++stats_.elements_stored;
        else
          ++stats_.element_overflows;
      }
      for (RulePlan* rp : item.rules) apply_rule(*rp, partial, now);
      continue;
    }

    for (std::size_t i = 0; i < scratch.fields.size(); ++i)
      scratch.fields[i].second = ev->fields[i];  // copy-assign: reuse storage
    scratch.observed_at = now;
    scratch.trace_id = dissect_span != 0 ? instance.trace_id() : 0;
    scratch.span_id = dissect_span;
    if (item.needed) {
      if (repository_.store_copy(item.repo_id, scratch, now))
        ++stats_.elements_stored;
      else
        ++stats_.element_overflows;
    }
    for (RulePlan* rp : item.rules) apply_rule(*rp, scratch, now);
  }
}

void VirtualGateway::apply_rule(RulePlan& plan, const ElementInstance& source, Instant now) {
  const spec::TransferRule& rule = *plan.rule;
  ElementInstance& target = plan.scratch;

  // Start from the current derived state (or the rule's initial values).
  if (const ElementInstance* current = repository_.peek(plan.target_id); current != nullptr) {
    target = *current;  // copy-assign: reuse the scratch's storage
  } else {
    target.fields.clear();
    for (std::size_t i = 0; i < rule.fields.size(); ++i)
      target.set_field(plan.field_syms[i], rule.fields[i].init);
  }
  // The conversion is caused by (and as fresh as) the source update.
  target.observed_at = now;
  target.trace_id = source.trace_id;
  target.span_id = source.span_id;

  ConversionEnv env{target, source, *plan.owner, now};
  for (std::size_t i = 0; i < rule.fields.size(); ++i)
    target.set_field(plan.field_syms[i], rule.fields[i].update->evaluate(env));

  repository_.store_copy(plan.target_id, target, now);
  ++stats_.conversions;
}

bool VirtualGateway::can_construct(const ConstructPlan& plan, Instant now) const {
  for (const ElementId id : plan.required) {
    if (config_.accuracy_check_at_store) {
      // Ablation: construction does not re-check temporal accuracy.
      if (repository_.peek(id) == nullptr) return false;
    } else if (!repository_.available(id, now)) {
      return false;
    }
  }
  return true;
}

bool VirtualGateway::can_construct(const GatewayLink& link, Symbol message, Instant now) const {
  const auto it = link.construct_by_message_.find(message);
  if (it != link.construct_by_message_.end()) return can_construct(*it->second, now);
  // No compiled plan: a hand-written automaton may guard a message that
  // has no output port. Resolve by name (cold path).
  const spec::MessageSpec* ms = link.spec().message(symbol_name(message));
  if (ms == nullptr) return false;
  for (const auto& name : required_elements(link, *ms)) {
    const auto id = repository_.id_of(name);
    if (!id) return false;
    if (config_.accuracy_check_at_store) {
      if (repository_.peek(*id) == nullptr) return false;
    } else if (!repository_.available(*id, now)) {
      return false;
    }
  }
  return true;
}

void VirtualGateway::request_missing(GatewayLink& link, Symbol message, Instant now) {
  const auto it = link.construct_by_message_.find(message);
  if (it != link.construct_by_message_.end()) {
    for (const ElementId id : it->second->required)
      if (!repository_.available(id, now)) repository_.set_request(id);
  } else {
    const spec::MessageSpec* ms = link.spec().message(symbol_name(message));
    if (ms == nullptr) return;
    for (const auto& name : required_elements(link, *ms)) {
      const auto id = repository_.id_of(name);
      if (id && !repository_.available(*id, now)) repository_.set_request(*id);
    }
  }
  ++stats_.construction_held;
  // A due emission held back because its elements are missing or stale is
  // a construction-time suppression, same as a mid-build fetch failure.
  if (suppressed_construction_ != nullptr) suppressed_construction_->add();
}

void VirtualGateway::try_outputs(GatewayLink& link, Instant now, bool tt_outputs,
                                 bool et_outputs) {
  now_ = now;
  for (const auto& plan_ptr : link.construct_plans_) {
    ConstructPlan& plan = *plan_ptr;
    if (plan.time_triggered && !tt_outputs) continue;
    if (!plan.time_triggered && !et_outputs) continue;
    if (plan.interpreter == nullptr || plan.interpreter->in_error()) continue;

    // Event-triggered outputs of state-only messages emit once per fresh
    // repository update; without this gate an always-enabled m! edge
    // would re-send the same image on every dispatch. The sum is cached
    // on the repository store epoch: versions cannot move between equal
    // epochs, so re-evaluations between stores skip the element walk.
    std::uint64_t version_sum = 0;
    if (!plan.time_triggered && !plan.consumes_events) {
      if (const std::uint64_t epoch = repository_.store_epoch();
          plan.cached_version_epoch == epoch) {
        version_sum = plan.cached_version_sum;
      } else {
        for (const ElementId id : plan.required) version_sum += repository_.version(id);
        plan.cached_version_sum = version_sum;
        plan.cached_version_epoch = epoch;
      }
      if (version_sum == plan.last_emitted_version_sum) continue;
      if (version_sum == 0) continue;  // nothing produced yet
    }

    // Emit as many instances as the automaton allows (event queues may
    // hold several pending instances); state-only messages emit once.
    for (int guard = 0; guard < 64; ++guard) {
      const ta::FireResult result = plan.interpreter->try_send(plan.message_sym, now);
      if (result != ta::FireResult::kFired) break;
      if (!construct_and_emit(link, plan, now)) break;
      if (!plan.consumes_events) {
        if (!plan.time_triggered) plan.last_emitted_version_sum = version_sum;
        break;
      }
    }
  }
}

bool VirtualGateway::construct_and_emit(GatewayLink& link, ConstructPlan& plan, Instant now) {
  obs::ScopedTimer timer{construct_ns_};
  spec::MessageInstance& instance = plan.scratch;
  instance.set_send_time(now);
  instance.set_trace(0, 0);

  // The constructed message continues the trace of the first traced
  // element it is built from; its span parents under that element's
  // repository-wait span.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  for (const ConstructItem& item : plan.items) {
    const ElementInstance* stored = nullptr;
    if (item.is_event) {
      // Exactly-once consumption regardless of temporal accuracy; the
      // swap leaves the scratch's old storage in the ring for reuse.
      if (repository_.consume_into(item.repo_id, plan.event_scratch))
        stored = &plan.event_scratch;
    } else {
      stored = repository_.fetch_state(item.repo_id, now,
                                       /*ignore_accuracy=*/config_.accuracy_check_at_store);
    }
    if (stored == nullptr) {
      ++stats_.construction_failed;
      if (suppressed_construction_ != nullptr) suppressed_construction_->add();
      DECOS_TRACE(trace_, now, sim::TraceKind::kGatewayBlocked, plan.message->name(),
                  "element '" + symbol_name(item.repo_sym) + "' unavailable at construction");
      return false;
    }
    if (staleness_ns_ != nullptr) staleness_ns_->observe((now - stored->observed_at).ns());
    if (spans_ != nullptr && spans_->enabled() && stored->trace_id != 0) {
      const std::uint64_t wait =
          spans_->emit(stored->trace_id, stored->span_id, obs::Phase::kRepoWait, track_sym_,
                       item.repo_sym, stored->observed_at, now);
      if (trace_id == 0) {
        trace_id = stored->trace_id;
        parent_span = wait;
      }
    }
    spec::ElementValue& ev = instance.elements()[item.instance_element_index];
    for (const ConstructFieldBind& bind : item.fields) {
      const ta::Value* v = stored->field(bind.field_sym);
      if (v == nullptr) {
        ++stats_.construction_failed;
        if (suppressed_construction_ != nullptr) suppressed_construction_->add();
        DECOS_TRACE(trace_, now, sim::TraceKind::kGatewayBlocked, plan.message->name(),
                    "field '" + symbol_name(bind.field_sym) + "' missing in element '" +
                        symbol_name(item.repo_sym) + "'");
        return false;
      }
      ev.fields[bind.field_index] = *v;  // copy-assign: reuse storage
    }
  }

  ++stats_.messages_constructed;
  if (forwarded_metric_ != nullptr) forwarded_metric_->add();
  DECOS_TRACE(trace_, now, sim::TraceKind::kGatewayForwarded, plan.message->name(),
              "side " + std::to_string(link.side()));
  if (trace_id != 0) {
    const std::uint64_t construct_span = spans_->emit(
        trace_id, parent_span, obs::Phase::kConstruct, track_sym_, plan.message_sym, now, now);
    instance.set_trace(trace_id, construct_span);
  }

  // plan.emitter points at this message's pre-created slot in the
  // link's emitter table; an empty function object means "no override".
  if (plan.emitter != nullptr && *plan.emitter) {
    (*plan.emitter)(instance);
  } else if (plan.port != nullptr) {
    plan.port->deposit(instance, now);  // copy-assign into the port's storage
  }
  return true;
}

void VirtualGateway::note_error(GatewayLink& link, const std::string& automaton_name,
                                Instant now) {
  if (link.error_since_.count(automaton_name) != 0) return;
  link.error_since_[automaton_name] = now;
  ++stats_.automaton_errors;
  DECOS_TRACE(trace_, now, sim::TraceKind::kAutomatonError, automaton_name,
              "side " + std::to_string(link.side()));
}

void VirtualGateway::maybe_restart(GatewayLink& link, Instant now) {
  if (config_.restart_delay <= Duration::zero()) return;
  for (auto it = link.error_since_.begin(); it != link.error_since_.end();) {
    if (now - it->second >= config_.restart_delay) {
      link.interpreters_.at(it->first)->restart(now);
      ++stats_.restarts;
      it = link.error_since_.erase(it);
    } else {
      ++it;
    }
  }
}

void VirtualGateway::dispatch(Instant now) {
  if (!finalized_) throw SpecError("gateway '" + name_ + "' used before finalize()");
  now_ = now;
  for (GatewayLink* link : {&link_a_, &link_b_}) {
    maybe_restart(*link, now);

    // Drain pull-mode input ports. Batched: each port's pending backlog
    // runs through its precompiled binding -- one plan/interpreter
    // resolution and one pull-request scan per port per dispatch, not
    // per instance. The per-instance admission sequence (and with it
    // every artifact) is preserved; only the lookups are amortized.
    if (config_.batched_dispatch) {
      for (const GatewayLink::InputBinding& binding : link->input_bindings_) {
        if (!binding.is_pull) continue;
        if (config_.pull_only_on_request) {
          bool wanted = false;
          for (const ElementId id : binding.pull_request_ids)
            if (repository_.requested(id)) {
              wanted = true;
              break;
            }
          if (!wanted) continue;
        }
        vn::Port& port = *binding.port;
        while (port.has_data()) {
          if (binding.is_state) {
            // State: borrow the one current image, no consumption.
            if (const spec::MessageInstance* m = port.peek()) drain_input(*link, binding, *m, now);
            break;
          }
          const spec::MessageInstance* m = port.peek();
          if (m == nullptr) break;
          port.drop_front();  // consume first; the slot stays intact until the ring wraps
          drain_input(*link, binding, *m, now);
        }
      }
    } else {
      // Reference per-instance path (batched_dispatch_lockstep_test pins
      // the batched drain against it).
      for (const auto& port_ptr : link->ports_) {
        vn::Port& port = *port_ptr;
        const spec::PortSpec& port_spec = port.spec();
        if (port_spec.direction != spec::DataDirection::kInput ||
            port_spec.interaction != spec::Interaction::kPull)
          continue;
        if (config_.pull_only_on_request) {
          bool wanted = false;
          if (const auto sym = SymbolTable::global().lookup(port_spec.message)) {
            const auto pit = link->dissect_plans_.find(*sym);
            if (pit != link->dissect_plans_.end())
              for (const DissectItem& item : pit->second.items)
                if (item.repo_id != kInvalidElementId && repository_.requested(item.repo_id))
                  wanted = true;
          }
          if (!wanted) continue;
        }
        while (port.has_data()) {
          if (port_spec.semantics == spec::InfoSemantics::kState) {
            // State: borrow the one current image, no consumption.
            if (const spec::MessageInstance* m = port.peek()) on_input(link->side(), *m, now);
            break;
          }
          const spec::MessageInstance* m = port.peek();
          if (m == nullptr) break;
          port.drop_front();  // consume first; the slot stays intact until the ring wraps
          on_input(link->side(), *m, now);
        }
      }
    }

    // Time-triggered edges (timeout detection) of all automata.
    for (auto& [automaton_name, interpreter] : link->interpreters_) {
      if (interpreter->in_error()) continue;
      if (interpreter->poll(now) > 0 && interpreter->in_error())
        note_error(*link, automaton_name, now);
    }
  }

  try_outputs(link_a_, now, /*tt_outputs=*/true, /*et_outputs=*/true);
  try_outputs(link_b_, now, /*tt_outputs=*/true, /*et_outputs=*/true);
}

void VirtualGateway::start(sim::Simulator& simulator) {
  if (!finalized_) finalize();
  bind_observability(simulator);
  start_tick(simulator);
}

void VirtualGateway::start_tick(sim::Simulator& simulator) {
  // Fixed-period kernel task: one pooled event node re-filed in place
  // every dispatch_period for the lifetime of the gateway.
  tick_task_ = simulator.schedule_periodic(simulator.now() + config_.dispatch_period,
                                           config_.dispatch_period,
                                           [this, &simulator] { dispatch(simulator.now()); });
}

VirtualGateway::LinkHealth VirtualGateway::link_health(int side) const {
  const GatewayLink& link = side == 0 ? link_a_ : link_b_;
  for (const auto& [automaton_name, interpreter] : link.interpreters_) {
    if (interpreter->in_error()) return LinkHealth::kError;
  }
  return LinkHealth::kHealthy;
}

std::vector<std::string> VirtualGateway::failed_automata(int side) const {
  const GatewayLink& link = side == 0 ? link_a_ : link_b_;
  std::vector<std::string> out;
  for (const auto& [automaton_name, interpreter] : link.interpreters_) {
    if (interpreter->in_error()) out.push_back(automaton_name);
  }
  return out;
}

Duration VirtualGateway::horizon(int side, const std::string& message_name, Instant now) const {
  const GatewayLink& link = side == 0 ? link_a_ : link_b_;
  if (const auto sym = SymbolTable::global().lookup(message_name)) {
    const auto it = link.construct_by_message_.find(*sym);
    if (it != link.construct_by_message_.end())
      return repository_.horizon(it->second->required, now);
  }
  const spec::MessageSpec* ms = link.spec().message(message_name);
  if (ms == nullptr)
    throw SpecError("horizon(): unknown message '" + message_name + "' on side " +
                    std::to_string(side));
  const auto elements = required_elements(link, *ms);
  return repository_.horizon(elements, now);
}

}  // namespace decos::core
