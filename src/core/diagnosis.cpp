#include "core/diagnosis.hpp"

#include <algorithm>

namespace decos::core {

std::string ClusterHealth::summary() const {
  if (all_green()) return "all green";
  std::string out;
  if (!failed_nodes.empty()) {
    out += "failed nodes:";
    for (const tt::NodeId node : failed_nodes) out += " " + std::to_string(node);
  }
  if (!misbehaving_dases.empty()) {
    if (!out.empty()) out += "; ";
    out += "temporal violations from:";
    for (const auto& das : misbehaving_dases) out += " " + das;
  }
  out += " (" + std::to_string(contained_messages) + " messages contained)";
  return out;
}

ClusterHealth DiagnosisService::report() const {
  ClusterHealth health;
  const std::vector<bool>& alive = membership_->vector();
  for (tt::NodeId node = 0; node < alive.size(); ++node) {
    if (!alive[node]) health.failed_nodes.push_back(node);
  }
  for (const VirtualGateway* gateway : gateways_) {
    for (const int side : {0, 1}) {
      if (gateway->link_health(side) == VirtualGateway::LinkHealth::kError) {
        const std::string& das = gateway->link(side).spec().das();
        if (std::find(health.misbehaving_dases.begin(), health.misbehaving_dases.end(), das) ==
            health.misbehaving_dases.end())
          health.misbehaving_dases.push_back(das);
      }
    }
    const auto& stats = gateway->stats();
    health.contained_messages +=
        stats.blocked_temporal + stats.blocked_value + stats.blocked_unknown;
  }
  return health;
}

}  // namespace decos::core
