#include "core/gateway_link.hpp"

namespace decos::core {

GatewayLink::GatewayLink(int side, spec::LinkSpec link_spec)
    : side_{side}, link_spec_{std::move(link_spec)} {
  link_spec_.validate().check();
}

void GatewayLink::add_rename(const std::string& link_element, const std::string& repo_element) {
  rename_to_repo_[link_element] = repo_element;
  rename_to_link_[repo_element] = link_element;
}

const std::string& GatewayLink::repo_name(const std::string& link_element) const {
  const auto it = rename_to_repo_.find(link_element);
  return it == rename_to_repo_.end() ? link_element : it->second;
}

const std::string& GatewayLink::link_name(const std::string& repo_element) const {
  const auto it = rename_to_link_.find(repo_element);
  return it == rename_to_link_.end() ? repo_element : it->second;
}

vn::Port* GatewayLink::port(const std::string& message_name) {
  const auto it = port_by_message_.find(message_name);
  return it == port_by_message_.end() ? nullptr : it->second;
}

void GatewayLink::set_emitter(const std::string& message_name,
                              std::function<void(const spec::MessageInstance&)> emitter) {
  emitters_[message_name] = std::move(emitter);
}

ta::Interpreter* GatewayLink::recv_interpreter(const std::string& message_name) {
  const auto it = recv_by_message_.find(message_name);
  return it == recv_by_message_.end() ? nullptr : it->second;
}

ta::Interpreter* GatewayLink::send_interpreter(const std::string& message_name) {
  const auto it = send_by_message_.find(message_name);
  return it == send_by_message_.end() ? nullptr : it->second;
}

}  // namespace decos::core
