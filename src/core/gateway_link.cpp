#include "core/gateway_link.hpp"

namespace decos::core {

namespace {
/// Resolve a runtime-supplied name without growing the symbol table;
/// names never interned cannot match anything.
Symbol lookup_symbol(const std::string& name) {
  const auto sym = SymbolTable::global().lookup(name);
  return sym ? *sym : Symbol{};
}
}  // namespace

GatewayLink::GatewayLink(int side, spec::LinkSpec link_spec)
    : side_{side}, link_spec_{std::move(link_spec)} {
  link_spec_.validate().check();
}

void GatewayLink::add_rename(const std::string& link_element, const std::string& repo_element) {
  rename_to_repo_[link_element] = repo_element;
  rename_to_link_[repo_element] = link_element;
}

const std::string& GatewayLink::repo_name(const std::string& link_element) const {
  const auto it = rename_to_repo_.find(link_element);
  return it == rename_to_repo_.end() ? link_element : it->second;
}

const std::string& GatewayLink::link_name(const std::string& repo_element) const {
  const auto it = rename_to_link_.find(repo_element);
  return it == rename_to_link_.end() ? repo_element : it->second;
}

vn::Port* GatewayLink::port(Symbol message) {
  const auto it = port_by_message_.find(message);
  return it == port_by_message_.end() ? nullptr : it->second;
}

vn::Port* GatewayLink::port(const std::string& message_name) {
  return port(lookup_symbol(message_name));
}

void GatewayLink::set_emitter(const std::string& message_name,
                              std::function<void(const spec::MessageInstance&)> emitter) {
  emitters_[intern_symbol(message_name)] = std::move(emitter);
}

ta::Interpreter* GatewayLink::recv_interpreter(Symbol message) {
  const auto it = recv_by_message_.find(message);
  return it == recv_by_message_.end() ? nullptr : it->second;
}

ta::Interpreter* GatewayLink::recv_interpreter(const std::string& message_name) {
  return recv_interpreter(lookup_symbol(message_name));
}

ta::Interpreter* GatewayLink::send_interpreter(Symbol message) {
  const auto it = send_by_message_.find(message);
  return it == send_by_message_.end() ? nullptr : it->second;
}

ta::Interpreter* GatewayLink::send_interpreter(const std::string& message_name) {
  return send_interpreter(lookup_symbol(message_name));
}

}  // namespace decos::core
